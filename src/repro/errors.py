"""Exception hierarchy for the Delirium reproduction.

Every failure surfaced by the language front end, the Pythia compiler, the
coordination-graph IR, the runtime, or the machine simulator derives from
:class:`DeliriumError`, so callers can catch one type at the API boundary.
The subtypes mirror the stages of the system:

* :class:`LexError` / :class:`ParseError` / :class:`PreprocessorError` —
  front-end failures, carrying source positions.
* :class:`CompileError` (and its refinements :class:`UnboundNameError`,
  :class:`SingleAssignmentError`, :class:`ArityError`) — semantic analysis
  and lowering failures.
* :class:`GraphError` — ill-formed coordination graphs (these indicate bugs
  in the compiler or hand-built graphs, not user programs).
* :class:`RuntimeFailure` (and :class:`OperatorError`,
  :class:`UnknownOperatorError`, :class:`PoolIrrecoverableError`) —
  failures while executing a graph.
* :class:`MachineError` — misconfigured machine models or simulator misuse.
"""

from __future__ import annotations


class DeliriumError(Exception):
    """Base class for every error raised by this package."""


class SourceError(DeliriumError):
    """An error attributable to a position in Delirium source text.

    Parameters
    ----------
    message:
        Human-readable description of the problem.
    line, column:
        1-based source position, when known. ``0`` means "unknown".
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.line = line
        self.column = column
        if line:
            message = f"{line}:{column}: {message}"
        super().__init__(message)


class LexError(SourceError):
    """The scanner met a character sequence that is not a Delirium token."""


class ParseError(SourceError):
    """The token stream does not match the Delirium grammar."""


class PreprocessorError(SourceError):
    """Bad symbolic-constant definitions or substitution cycles."""


class CompileError(SourceError):
    """Semantic error discovered by the Pythia compiler."""


class UnboundNameError(CompileError):
    """A variable or function name is used but never bound."""


class SingleAssignmentError(CompileError):
    """A name is bound more than once in the same scope.

    Delirium is a single-assignment language (section 3 of the paper); the
    compiler rejects any rebinding rather than silently shadowing.
    """


class ArityError(CompileError):
    """A function or operator is applied to the wrong number of arguments."""


class GraphError(DeliriumError):
    """A coordination graph violates a structural invariant."""


class RuntimeFailure(DeliriumError):
    """An error occurred while the runtime executed a coordination graph."""


class OperatorError(RuntimeFailure):
    """A registered operator raised an exception while executing.

    The original exception is preserved as ``__cause__`` and the operator
    name is recorded so node-timing reports can point at the culprit.
    When the fire ran under a supervised executor the error additionally
    carries where and how it failed:

    ``node_id``
        Coordination-graph node id of the firing (``-1`` when unknown).
    ``attempts``
        One entry per execution attempt, oldest first — ``(attempt,
        worker_pid, outcome)`` where ``outcome`` is a short string such as
        ``"raised: ValueError('boom')"``, ``"worker crashed"``, or
        ``"timed out after 2.0s"``.  Empty for unsupervised failures.
    ``worker_pid``
        Pid of the worker that executed the final attempt (``None`` for
        in-process execution).
    """

    def __init__(
        self,
        operator: str,
        cause: BaseException,
        *,
        node_id: int = -1,
        attempts: tuple[tuple[int, int | None, str], ...] = (),
        worker_pid: int | None = None,
    ) -> None:
        self.operator = operator
        self.node_id = node_id
        self.attempts = attempts
        self.worker_pid = worker_pid
        message = f"operator {operator!r} failed: {cause!r}"
        if node_id >= 0:
            message += f" (node {node_id})"
        if attempts:
            history = "; ".join(
                f"attempt {n}" + (f" [pid {pid}]" if pid else "") + f": {out}"
                for n, pid, out in attempts
            )
            message += f" after {len(attempts)} attempt(s): {history}"
        super().__init__(message)
        self.__cause__ = cause


class UnknownOperatorError(RuntimeFailure):
    """A graph names an operator that is not in the registry."""

    def __init__(self, operator: str) -> None:
        self.operator = operator
        super().__init__(
            f"unknown operator {operator!r}: not registered and not a "
            "Delirium function in the compiled program"
        )


class PoolIrrecoverableError(RuntimeFailure):
    """The process worker pool cannot be kept alive.

    Raised (or caught by the degradation ladder) when worker respawns
    exceed :attr:`~repro.runtime.supervise.FaultPolicy.max_respawns`, or
    the pool cannot be constructed at all.
    """

    def __init__(self, reason: str, respawns: int = 0) -> None:
        self.reason = reason
        self.respawns = respawns
        message = f"worker pool irrecoverable: {reason}"
        if respawns:
            message += f" (after {respawns} respawn(s))"
        super().__init__(message)


class MachineError(DeliriumError):
    """Invalid machine-model parameters or simulator state."""
