"""Workload generator for the parallel-compilation case study.

The paper compiles the 5500-line Pythia compiler with itself.  We generate
a large Delirium program with a realistically *skewed* function-size
distribution — a few big functions and a long tail of small ones, like any
real compiler — because that skew is what limits per-pass speedup to the
2-3x range Table 1 reports (a perfectly uniform workload would pack
perfectly and overshoot).

Generated functions use only builtin operators and their own parameters,
so every pass of the pipeline (including optimization, which needs purity
facts) does real work on them.  Top-level functions start in column 0 —
the textual convention ``chunk_source`` relies on to divide the source for
parallel parsing.
"""

from __future__ import annotations

import random

_PURE_OPS = [
    ("incr", 1), ("decr", 1), ("neg", 1),
    ("add", 2), ("sub", 2), ("mul", 2), ("min2", 2), ("max2", 2),
    ("is_less", 2), ("is_equal", 2),
]


def _body(rng: random.Random, params: list[str], target_bindings: int) -> str:
    """A let chain of ``target_bindings`` bindings over builtins."""
    names = list(params)
    lines: list[str] = []
    for i in range(target_bindings):
        op, arity = rng.choice(_PURE_OPS)
        args = ", ".join(
            rng.choice(names) if rng.random() < 0.8 else str(rng.randint(0, 9))
            for _ in range(arity)
        )
        name = f"t{i}"
        if rng.random() < 0.15 and len(names) >= 2:
            a, b = rng.sample(names, 2)
            rhs = f"if is_less({a}, {b}) then {op}({args}) else {name}_alt"
            lines.append(f"{name}_alt = incr({rng.choice(names)})")
            lines.append(f"{name} = {rhs}")
        else:
            lines.append(f"{name} = {op}({args})")
        names.append(name)
    combine = names[-1]
    for extra in rng.sample(names, min(3, len(names))):
        combine = f"add({combine}, {extra})"
    bindings = "\n      ".join(lines)
    return f"  let {bindings}\n  in {combine}"


def generate_workload(
    n_functions: int = 48, seed: int = 1990
) -> str:
    """A big Delirium program with skewed function sizes.

    Sizes (in let-bindings): a handful of heavyweights (45, 30, 24, 18)
    followed by a tail drawn uniformly from [3, 12].
    """
    rng = random.Random(seed)
    sizes = [45, 30, 24, 18]
    while len(sizes) < n_functions:
        sizes.append(rng.randint(3, 12))
    functions = []
    for i, size in enumerate(sizes[:n_functions]):
        params = [f"p{j}" for j in range(rng.randint(1, 3))]
        header = f"fn{i}({', '.join(params)})"
        functions.append(header + "\n" + _body(rng, params, size))
    return "\n\n".join(functions) + "\n"
