"""The Delirium coordination framework for the parallel compiler.

Section 6.4: "To switch to the parallel version, we remove a 100 line main
module and replace it with 100 lines of Delirium and a 400 line auxiliary
module that defines the operators."  This is that Delirium: lexing is
sequential (Table 1 shows 91 msec both ways), parsing splits the source at
function boundaries, and every tree pass is a three-way fork-join over
weight-packed groups of function trees.  The three-way width is hardwired
in the source, exactly the limitation section 9.2 owns up to ("the number
of pieces into which a data structure is divided is chosen explicitly by
the Delirium programmer").
"""

from __future__ import annotations

from ...compiler import CompiledProgram, compile_source
from .operators import make_registry

PARALLEL_COMPILER = """
main(src)
  let n_toks  = lex_pass(src)
      chunks  = chunk_source(src, n_toks)
      parsed  = do_parse(chunks)
      lowered = do_macro(parsed)
      checked = do_env(lowered)
      opted   = do_opt(checked)
      graphs  = do_graph(opted)
  in finish(graphs)

do_parse(chunks)
  let <s1,s2,s3> = split_chunks(chunks)
      p1 = parse_bite(s1)
      p2 = parse_bite(s2)
      p3 = parse_bite(s3)
  in parse_merge(p1,p2,p3)

do_macro(functions)
  let <g1,g2,g3> = macro_split(functions)
      r1 = macro_bite(g1)
      r2 = macro_bite(g2)
      r3 = macro_bite(g3)
  in macro_merge(r1,r2,r3)

do_env(functions)
  let <g1,g2,g3> = env_split(functions)
      r1 = env_bite(g1)
      r2 = env_bite(g2)
      r3 = env_bite(g3)
  in env_merge(r1,r2,r3)

do_opt(functions)
  let <g1,g2,g3> = opt_split(functions)
      r1 = opt_bite(g1)
      r2 = opt_bite(g2)
      r3 = opt_bite(g3)
  in opt_merge(r1,r2,r3)

do_graph(functions)
  let <g1,g2,g3> = graph_split(functions)
      r1 = graph_bite(g1)
      r2 = graph_bite(g2)
      r3 = graph_bite(g3)
  in graph_merge(r1,r2,r3)
"""

#: Labels belonging to each Table 1 pass, for span extraction from traces.
PASS_LABELS: dict[str, set[str]] = {
    "Lexing": {"lex_pass"},
    "Parsing": {"chunk_source", "split_chunks", "parse_bite", "parse_merge"},
    "Macro Expansion": {"macro_split", "macro_bite", "macro_merge"},
    "Env Analysis": {"env_split", "env_bite", "env_merge"},
    "Optimization": {"opt_split", "opt_bite", "opt_merge"},
    "Graph Conversion": {"graph_split", "graph_bite", "graph_merge"},
}


def compile_parallel_compiler(workload_source: str) -> CompiledProgram:
    """Compile the coordination framework against operators calibrated for
    ``workload_source`` (the program the compiler will compile)."""
    return compile_source(
        PARALLEL_COMPILER, registry=make_registry(workload_source)
    )
