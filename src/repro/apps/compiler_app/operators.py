"""Operators for the parallel compilation of Delirium by Delirium.

Section 6: the compiler's passes are cast as parallel tree walks — clipped
subtree sets processed independently and merged by pointer.  Here the
"subtrees" are top-level function definitions (the natural clip points of
a program tree), packed into three weight-balanced groups exactly like the
paper's Sequent run (n=3).

Every ``*_bite`` operator runs the *real* pass code from
:mod:`repro.compiler` on its group: parsing parses, "macro expansion"
performs the tree-rewriting lowering of ``iterate`` (plus symbolic
constants, already textual), env analysis analyzes, optimization runs the
four passes, graph conversion emits templates.  Merges reassemble by
reference — "the merge simply returns a pointer."

Simulated costs are calibrated so that the **sequential** pass totals land
on Table 1's left column (91 / 200 / 117 / 300 / 350 / 380, read as
kiloticks for msec); the parallel column is then *emergent* from the
coordination structure, the skewed workload, and greedy packing.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ...compiler.analysis import analyze_program
from ...compiler.graphgen import generate_graphs
from ...compiler.lowering import lower_program
from ...compiler.passes.pipeline import optimize
from ...compiler.symtab import analyze
from ...lang import ast
from ...lang.parser import parse_program
from ...runtime.operators import (
    OperatorRegistry,
    builtin_registry,
    default_registry,
)
from ..tree.partition import pack

#: Table 1 sequential targets, in ticks (paper msec x 1000).
TABLE1_TARGETS = {
    "Lexing": 91_000.0,
    "Parsing": 200_000.0,
    "Macro Expansion": 117_000.0,
    "Env Analysis": 300_000.0,
    "Optimization": 350_000.0,
    "Graph Conversion": 380_000.0,
}

_FUNCTION_START = re.compile(r"^[A-Za-z_]\w*\s*\(", re.MULTILINE)


@dataclass(frozen=True)
class Calibration:
    """Per-pass tick rates derived from the workload's measured weight."""

    per_char: float       # parsing (includes chunk lexing)
    per_node: dict[str, float]  # macro/env/opt/graph rates

    #: Fraction of each pass spent in the *sequential* tree division (the
    #: paper's section 6.3 bottleneck, after their fix).
    SPLIT_FRACTION = 0.08
    #: Graph conversion runs after optimization has shrunk the trees by
    #: roughly this factor; its rate compensates so the sequential total
    #: still lands on Table 1's 380.
    OPT_SHRINK = 0.60

    @classmethod
    def for_source(cls, source: str) -> "Calibration":
        program = parse_program(source)
        total_nodes = sum(f.body.size() for f in program.functions)
        total_chars = max(len(source), 1)
        bite_share = 1.0 - cls.SPLIT_FRACTION

        def node_rate(pass_name: str, shrink: float = 1.0) -> float:
            return (
                TABLE1_TARGETS[pass_name] * bite_share / (total_nodes * shrink)
            )

        return cls(
            per_char=TABLE1_TARGETS["Parsing"] * bite_share / total_chars,
            per_node={
                "macro": node_rate("Macro Expansion"),
                "env": node_rate("Env Analysis"),
                "opt": node_rate("Optimization"),
                "graph": node_rate("Graph Conversion", cls.OPT_SHRINK),
            },
        )

    def split_cost(self, pass_name: str) -> float:
        return TABLE1_TARGETS[pass_name] * self.SPLIT_FRACTION


def split_source_chunks(source: str) -> list[str]:
    """Divide source text at top-level function starts (column 0)."""
    starts = [m.start() for m in _FUNCTION_START.finditer(source)]
    starts = [s for s in starts if s == 0 or source[s - 1] == "\n"]
    if not starts:
        return [source]
    starts.append(len(source))
    return [
        source[starts[i] : starts[i + 1]] for i in range(len(starts) - 1)
    ]


def _group_nodes(group: list[tuple[int, ast.FunDef]]) -> float:
    return float(sum(f.body.size() for _, f in group))


def make_registry(source: str, n_groups: int = 3) -> OperatorRegistry:
    """Operators for compiling ``source`` with ``n_groups``-way passes."""
    calibration = Calibration.for_source(source)
    per_node = calibration.per_node
    reg = default_registry()
    local = OperatorRegistry()
    opt_registry = builtin_registry()  # purity facts for the workload's ops

    # -- front end --------------------------------------------------------
    @local.register(name="lex_pass", cost=TABLE1_TARGETS["Lexing"])
    def lex_pass(src: str):
        from ...lang.lexer import tokenize

        return len(tokenize(src))  # the token count; parsing re-lexes chunks

    @local.register(
        name="chunk_source", cost=calibration.split_cost("Parsing")
    )
    def chunk_source(src: str, n_tokens: int):
        # n_tokens is a data dependency: chunking follows lexing, as in
        # the paper's pipeline.
        chunks = split_source_chunks(src)
        return [(i, c) for i, c in enumerate(chunks)]

    @local.register(name="split_chunks", cost=4_000.0)
    def split_chunks(indexed_chunks):
        groups = pack(
            [((i, c), len(c)) for i, c in indexed_chunks], n_groups
        )
        return tuple(groups)

    @local.register(
        name="parse_bite",
        cost=lambda group: sum(len(c) for _, c in group)
        * calibration.per_char,
    )
    def parse_bite(group):
        out = []
        for index, chunk in group:
            program = parse_program(chunk)
            for f in program.functions:
                out.append((index, f))
        return out

    @local.register(name="parse_merge", cost=2_000.0)
    def parse_merge(*parts):
        functions = [f for part in parts for f in part]
        functions.sort(key=lambda p: p[0])
        return functions  # list of (index, FunDef)

    # -- tree passes --------------------------------------------------------
    _TABLE1_KEY = {
        "macro": "Macro Expansion",
        "env": "Env Analysis",
        "opt": "Optimization",
        "graph": "Graph Conversion",
    }

    def _register_tree_pass(pass_name: str, bite):
        rate = per_node[pass_name]
        split_ticks = calibration.split_cost(_TABLE1_KEY[pass_name])

        @local.register(name=f"{pass_name}_split", cost=split_ticks)
        def _split(indexed_functions):
            groups = pack(
                [((i, f), f.body.size()) for i, f in indexed_functions],
                n_groups,
            )
            return tuple(groups)

        # The tree-rewriting bites mutate their group's FunDefs in place
        # (lowering and optimization rewrite bodies), so they declare it;
        # groups have a single consumer each, so this stays in-place.
        local.register(
            name=f"{pass_name}_bite",
            modifies=(0,),
            cost=lambda group: _group_nodes(group) * rate,
        )(bite)

        @local.register(name=f"{pass_name}_merge", cost=2_000.0)
        def _merge(*parts):
            functions = [f for part in parts for f in part]
            functions.sort(key=lambda p: p[0])
            return functions

    def macro_bite(group):
        """Macro expansion / lowering: the iterate -> tail-recursion tree
        rewrite (symbolic constants were substituted textually)."""
        program = ast.Program(functions=[f for _, f in group])
        lower_program(program)
        return [(i, f) for (i, _), f in zip(group, program.functions)]

    def env_bite(group):
        program = ast.Program(functions=[f for _, f in group])
        analyze(program, known_operators=None, strict=False)
        return list(group)

    def opt_bite(group):
        program = ast.Program(functions=[f for _, f in group])
        optimize(program, opt_registry)
        return [(i, f) for (i, _), f in zip(group, program.functions)]

    def graph_bite(group):
        program = ast.Program(functions=[f for _, f in group])
        env = analyze(program, known_operators=None, strict=False)
        analysis = analyze_program(env, pure_operators=None)
        graph = generate_graphs(program, env, analysis, registry=None)
        first_index = group[0][0] if group else 0
        return [(first_index, graph)]

    _register_tree_pass("macro", macro_bite)
    _register_tree_pass("env", env_bite)
    _register_tree_pass("opt", opt_bite)
    _register_tree_pass("graph", graph_bite)

    @local.register(name="finish", cost=1_000.0)
    def finish(indexed_graphs):
        total_templates = 0
        total_nodes = 0
        for _, graph in indexed_graphs:
            total_templates += len(graph.templates)
            total_nodes += graph.total_nodes()
        return {"templates": total_templates, "nodes": total_nodes}

    return reg.merged_with(local)
