"""Driver: ``python -m repro.apps.compiler_app`` — prints Table 1."""

from ...tools import pass_table
from .table1 import run_table1


def main() -> int:
    result = run_table1()
    print(pass_table(result.sequential, result.parallel, result.n_processors))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
