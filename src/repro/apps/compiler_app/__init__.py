"""The parallel-compilation case study (section 6 of the paper)."""

from .operators import TABLE1_TARGETS, make_registry, split_source_chunks
from .program import PARALLEL_COMPILER, PASS_LABELS, compile_parallel_compiler
from .table1 import Table1Result, pass_spans, run_table1
from .workload import generate_workload

__all__ = [
    "PARALLEL_COMPILER",
    "PASS_LABELS",
    "TABLE1_TARGETS",
    "Table1Result",
    "compile_parallel_compiler",
    "generate_workload",
    "make_registry",
    "pass_spans",
    "run_table1",
    "split_source_chunks",
]
