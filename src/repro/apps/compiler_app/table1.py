"""Table 1 driver: per-pass compile times, sequential vs parallel (n=3).

Runs the parallel-compiler Delirium program on the simulated Sequent
Symmetry with one and with three processors, extracts per-pass elapsed
spans from the node-timing trace, and renders the paper's table.  The
sequential column is calibrated to Table 1's absolute numbers (that is
the cost model's anchor); the parallel column is *measured* from the
simulated schedule — packing imbalance, the sequential splits, and the
merges all take their toll exactly as they did on the Sequent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...machine import SimulatedExecutor, sequent
from ...runtime.tracing import Tracer
from .program import PASS_LABELS, compile_parallel_compiler
from .workload import generate_workload


def pass_spans(tracer: Tracer) -> dict[str, float]:
    """Elapsed (wall-tick) span of each compiler pass in a traced run."""
    spans: dict[str, float] = {}
    for pass_name, labels in PASS_LABELS.items():
        records = [r for r in tracer.op_records() if r.label in labels]
        if not records:
            spans[pass_name] = 0.0
            continue
        start = min(r.start for r in records)
        end = max(r.start + r.ticks for r in records)
        spans[pass_name] = end - start
    return spans


@dataclass
class Table1Result:
    """Both columns of Table 1, plus the compiled artifact summary."""

    sequential: dict[str, float]
    parallel: dict[str, float]
    n_processors: int = 3
    artifact: dict = field(default_factory=dict)

    @property
    def total_sequential(self) -> float:
        return sum(self.sequential.values())

    @property
    def total_parallel(self) -> float:
        return sum(self.parallel.values())

    @property
    def overall_speedup(self) -> float:
        return self.total_sequential / self.total_parallel

    def per_pass_speedup(self) -> dict[str, float]:
        return {
            name: (self.sequential[name] / self.parallel[name])
            if self.parallel[name]
            else 1.0
            for name in self.sequential
        }


def run_table1(
    n_functions: int = 48,
    seed: int = 1990,
    n_processors: int = 3,
) -> Table1Result:
    """Compile the generated workload sequentially and on n processors."""
    workload = generate_workload(n_functions=n_functions, seed=seed)
    compiled = compile_parallel_compiler(workload)

    def measure(p: int) -> tuple[dict[str, float], dict]:
        executor = SimulatedExecutor(sequent(p), trace=True)
        result = executor.run(
            compiled.graph, args=(workload,), registry=compiled.registry
        )
        assert result.tracer is not None
        return pass_spans(result.tracer), result.value

    sequential, artifact = measure(1)
    parallel, artifact_parallel = measure(n_processors)
    assert artifact == artifact_parallel, "parallel compile changed output"
    return Table1Result(
        sequential=sequential,
        parallel=parallel,
        n_processors=n_processors,
        artifact=artifact,
    )
