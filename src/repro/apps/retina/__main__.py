"""Driver: ``python -m repro.apps.retina [processors]``.

Runs the balanced retina program on the simulated Cray Y-MP and prints
the speedup curve plus a load-balance summary.
"""

import sys

from ...machine import SimulatedExecutor, cray_ymp, speedup_curve
from ...tools import load_balance_summary
from .model import RetinaConfig
from .programs import compile_retina


def main() -> int:
    max_p = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    config = RetinaConfig()
    compiled = compile_retina(2, config)
    curve = speedup_curve(
        compiled.graph,
        cray_ymp(),
        list(range(1, max_p + 1)),
        registry=compiled.registry,
    )
    for p, s in curve.items():
        print(f"P={p}: speedup {s:.2f}")
    traced = SimulatedExecutor(cray_ymp(max_p), trace=True).run(
        compiled.graph, registry=compiled.registry
    )
    assert traced.tracer is not None
    print()
    print(load_balance_summary(traced.tracer).describe())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
