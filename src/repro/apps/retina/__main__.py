"""Driver: ``python -m repro.apps.retina [processors]``.

Runs the balanced retina program on the simulated Cray Y-MP and prints
the speedup curve plus a load-balance summary.  With ``--stream N`` it
instead runs ``N`` timesteps as a continuous-frame stream
(:mod:`repro.apps.retina.stream`) and prints each committed frame's
signature row — the unbounded-workload face of the same model.
"""

import sys

from ...machine import SimulatedExecutor, cray_ymp, speedup_curve
from ...tools import load_balance_summary
from .model import RetinaConfig
from .programs import compile_retina


def _stream_main(n_steps: int) -> int:
    from ...runtime.stream import MemorySink
    from .stream import stream_retina

    sink = MemorySink()
    result = stream_retina(n_steps, sink=sink)
    for i, row in enumerate(sink.items):
        print(f"frame {i}: {row}")
    print(
        f"{result.items} frames, {result.fires} fires, "
        f"sink digest {result.sink_digest[:16]}..."
    )
    return 0


def main() -> int:
    if len(sys.argv) > 2 and sys.argv[1] == "--stream":
        return _stream_main(int(sys.argv[2]))
    max_p = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    config = RetinaConfig()
    compiled = compile_retina(2, config)
    curve = speedup_curve(
        compiled.graph,
        cray_ymp(),
        list(range(1, max_p + 1)),
        registry=compiled.registry,
    )
    for p, s in curve.items():
        print(f"P={p}: speedup {s:.2f}")
    traced = SimulatedExecutor(cray_ymp(max_p), trace=True).run(
        compiled.graph, registry=compiled.registry
    )
    assert traced.tracer is not None
    print()
    print(load_balance_summary(traced.tracer).describe())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
