"""The retina motion-detection case study (section 5 of the paper)."""

from .model import Band, RetinaConfig, RetinaState, TargetChunk
from .operators import make_registry
from .programs import RETINA_V1, RETINA_V2, compile_retina
from .sequential import run_sequential
from .stream import RETINA_STREAM_STEP, compile_retina_stream, stream_retina

__all__ = [
    "Band",
    "RETINA_STREAM_STEP",
    "RETINA_V1",
    "RETINA_V2",
    "RetinaConfig",
    "RetinaState",
    "TargetChunk",
    "compile_retina",
    "compile_retina_stream",
    "make_registry",
    "run_sequential",
    "stream_retina",
]
