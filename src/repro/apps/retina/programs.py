"""The retina Delirium programs — the section 5 listings, verbatim.

``RETINA_V1`` is the first parallelization (section 5.1), whose
sequential ``post_up`` capped speedup near two; ``RETINA_V2`` is the
balanced version (section 5.2) that decomposes the temporal update into a
second four-way fork-join.  Symbolic constants are bound by the
preprocessor exactly as in the paper.
"""

from __future__ import annotations

from ...compiler import CompiledProgram, compile_source
from ...compiler.passes.pipeline import PASS_ORDER
from .model import RetinaConfig
from .operators import make_registry

#: Section 5.1 listing.
RETINA_V1 = """
main()
  iterate
  {
    timestep=0,incr(timestep)
    scene=set_up(),
      let
        <a,b,c,d>=target_split(scene)
        ao=target_bite(a)
        bo=target_bite(b)
        co=target_bite(c)
        do=target_bite(d)
      in do_convol(ao,bo,co,do)
 }
  while is_not_equal(timestep, NUM_ITER),
  result scene

do_convol(c1,c2,c3,c4)
  iterate
  {
    slab=START_SLAB,incr(slab)
    convolve_data=pre_update(c1,c2,c3,c4),
      let
        <a,b,c,d>=convol_split(convolve_data)
        ao=convol_bite(a,slab)
        bo=convol_bite(b,slab)
        co=convol_bite(c,slab)
        do=convol_bite(d,slab)
      in post_up(slab,ao,bo,co,do)
  } while is_not_equal(slab,FINAL_SLAB),
    result convolve_data
"""

#: Section 5.2 listing (the balanced do_convol).
RETINA_V2 = """
main()
  iterate
  {
    timestep=0,incr(timestep)
    scene=set_up(),
      let
        <a,b,c,d>=target_split(scene)
        ao=target_bite(a)
        bo=target_bite(b)
        co=target_bite(c)
        do=target_bite(d)
      in do_convol(ao,bo,co,do)
 }
  while is_not_equal(timestep, NUM_ITER),
  result scene

do_convol(c1,c2,c3,c4)
  iterate
  {
    slab=START_SLAB,incr(slab)
    convolve_data=pre_update(c1,c2,c3,c4),
        let
          <a,b,c,d>=convol_split(convolve_data)
          ao=convol_bite(a,slab)
          bo=convol_bite(b,slab)
          co=convol_bite(c,slab)
          do=convol_bite(d,slab)
        in let
            <u1,u2,u3,u4> = update_split(ao,bo,co,do)
            au=update_bite(u1,slab)
            bu=update_bite(u2,slab)
            cu=update_bite(u3,slab)
            du=update_bite(u4,slab)
           in done_up(slab,au,bu,cu,du)
  } while is_not_equal(slab,FINAL_SLAB),
    result convolve_data
"""


def compile_retina(
    version: int = 2,
    config: RetinaConfig | None = None,
    fuse: bool = False,
    donate: bool = False,
    codegen: bool = False,
    **kwargs,
) -> CompiledProgram:
    """Compile retina v1 or v2 against its operator registry.

    The preprocessor receives ``NUM_ITER``/``START_SLAB``/``FINAL_SLAB``
    from the config, exactly as the paper's symbolic constants.  With
    ``fuse=True`` the graph-level fusion pass collapses cheap
    single-consumer chains (and the split→untuple pairs) into super-nodes;
    ``donate=True`` adds the last-use donation analysis (always after
    fusion); ``codegen=True`` lowers the fused recipes to generated
    specialized Python (terminal pass).  The default keeps the
    paper-shaped graphs that the figure and dump tests pin.
    """
    cfg = config or RetinaConfig()
    source = {1: RETINA_V1, 2: RETINA_V2}[version]
    if (fuse or donate or codegen) and "optimize_passes" not in kwargs:
        passes = PASS_ORDER
        if fuse:
            passes = passes + ("fuse",)
        if donate:
            passes = passes + ("donate",)
        if codegen:
            passes = passes + ("codegen",)
        kwargs["optimize_passes"] = passes
    return compile_source(
        source,
        registry=make_registry(cfg),
        defines={
            "NUM_ITER": cfg.num_iter,
            "START_SLAB": cfg.start_slab,
            "FINAL_SLAB": cfg.final_slab,
        },
        **kwargs,
    )
