"""The retina as a continuous stream: one timestep per stream item.

The batch programs (:mod:`repro.apps.retina.programs`) bake the frame
count into the graph as ``NUM_ITER`` — the paper's retina watches a
fixed-length stimulus.  A real retina watches a *camera*: frames arrive
indefinitely and the run must hold flat memory while surviving master
crashes.  This module re-expresses the balanced v2 timestep as a
carry-mode stream program for :class:`~repro.runtime.stream.StreamRunner`:

* ``RETINA_STREAM_STEP`` is the body of v2's ``main`` iterate, lifted to
  ``main(scene)`` — the carried :class:`~repro.apps.retina.model.RetinaState`
  comes in as the argument instead of around the loop.  ``do_convol`` is
  v2's balanced listing, verbatim.
* The initial carry is :func:`~repro.apps.retina.model.initial_state`,
  which is exactly what ``set_up()`` returns — so ``N`` stream steps are
  *bit-identical* to ``RETINA_V2`` with ``NUM_ITER=N`` (pinned by
  ``tests/test_stream.py``).
* Each committed frame emits ``state.signature()`` to the sink, giving
  checkpoint/resume a file-level bit-identity statement.
"""

from __future__ import annotations

from typing import Any

from ...compiler import CompiledProgram, compile_source
from ...compiler.passes.pipeline import PASS_ORDER
from ...runtime.stream import StreamResult, StreamRunner, count_source
from . import model
from .model import RetinaConfig, RetinaState
from .operators import make_registry

#: One v2 timestep with the scene as an argument instead of a loop
#: variable.  ``do_convol`` is the section 5.2 balanced listing.
RETINA_STREAM_STEP = """
main(scene)
  let
    <a,b,c,d>=target_split(scene)
    ao=target_bite(a)
    bo=target_bite(b)
    co=target_bite(c)
    do=target_bite(d)
  in do_convol(ao,bo,co,do)

do_convol(c1,c2,c3,c4)
  iterate
  {
    slab=START_SLAB,incr(slab)
    convolve_data=pre_update(c1,c2,c3,c4),
        let
          <a,b,c,d>=convol_split(convolve_data)
          ao=convol_bite(a,slab)
          bo=convol_bite(b,slab)
          co=convol_bite(c,slab)
          do=convol_bite(d,slab)
        in let
            <u1,u2,u3,u4> = update_split(ao,bo,co,do)
            au=update_bite(u1,slab)
            bu=update_bite(u2,slab)
            cu=update_bite(u3,slab)
            du=update_bite(u4,slab)
           in done_up(slab,au,bu,cu,du)
  } while is_not_equal(slab,FINAL_SLAB),
    result convolve_data
"""


def compile_retina_stream(
    config: RetinaConfig | None = None,
    fuse: bool = False,
    donate: bool = False,
    codegen: bool = False,
    **kwargs,
) -> CompiledProgram:
    """Compile the one-timestep stream program against the v2 registry."""
    cfg = config or RetinaConfig()
    if (fuse or donate or codegen) and "optimize_passes" not in kwargs:
        passes = PASS_ORDER
        if fuse:
            passes = passes + ("fuse",)
        if donate:
            passes = passes + ("donate",)
        if codegen:
            passes = passes + ("codegen",)
        kwargs["optimize_passes"] = passes
    return compile_source(
        RETINA_STREAM_STEP,
        registry=make_registry(cfg),
        defines={
            "START_SLAB": cfg.start_slab,
            "FINAL_SLAB": cfg.final_slab,
        },
        **kwargs,
    )


def signature_emit(state: RetinaState) -> list:
    """Reduce a frame's state to its JSON-able signature for the sink."""
    return list(state.signature())


def make_stream_runner(
    config: RetinaConfig | None = None,
    *,
    executor: str = "sequential",
    compiled: CompiledProgram | None = None,
    **runner_kwargs: Any,
) -> StreamRunner:
    """A :class:`StreamRunner` for the retina stream.

    The carried scene is ``main``'s only argument, so ``make_args``
    drops the item (the frame index is implicit in the carry chain).
    Extra keyword arguments (``checkpoint_path``, ``max_ready``,
    ``fault_spec``, ...) pass through to the runner.
    """
    cfg = config or RetinaConfig()
    program = compiled or compile_retina_stream(cfg)
    return StreamRunner(
        program,
        program.registry,
        executor=executor,
        carry=True,
        initial=model.initial_state(cfg),
        make_args=lambda item, carry: (carry,),
        emit=signature_emit,
        **runner_kwargs,
    )


def stream_retina(
    n_steps: int,
    config: RetinaConfig | None = None,
    sink: Any = None,
    *,
    executor: str = "sequential",
    resume: str | None = None,
    **runner_kwargs: Any,
) -> StreamResult:
    """Run ``n_steps`` retina timesteps as a stream.

    Equivalent to ``RETINA_V2`` with ``NUM_ITER=n_steps`` — the final
    carry's ``signature()`` matches bit-for-bit.  ``sink`` defaults to
    an in-memory sink; pass a
    :class:`~repro.runtime.stream.JsonlSink` for durable output and a
    ``checkpoint_path=`` to survive master kills.
    """
    from ...runtime.stream import MemorySink

    runner = make_stream_runner(
        config, executor=executor, **runner_kwargs
    )
    try:
        return runner.run(
            count_source(n_steps),
            sink if sink is not None else MemorySink(),
            resume=resume,
        )
    finally:
        runner.close()
