"""The retina model: data types and numerical kernels (section 5).

The original is Frank Eeckman's convolution-based neural-net model of the
retina for motion detection [11], implemented in Fortran by David Andes
and parallelized on the Cray Y-MP.  We reproduce its computational *shape*:

* a population of moving **targets** (bright blobs with velocities),
  simulated in four groups (``target_bite``);
* a stack of **convolution slabs** applied to the stimulus frame — a
  center-surround (difference-of-Gaussians) receptor layer, directional
  motion kernels, and a smoothing layer — computed band-parallel
  (``convol_bite``);
* a **temporal update** that measures motion energy over the whole frame
  and diffuses activity, which in the paper's first version (``post_up``)
  ran sequentially and capped speedup at two, and in the balanced version
  (``update_bite``) is band-parallel too.

All kernels are NumPy/SciPy and fully deterministic (seeded).  Band
decomposition uses halo rows wide enough for the 5x5 kernels, so the
band-parallel computation is *bit-identical* to the full-frame one — the
determinism story of the paper, testable as an equality.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.ndimage import convolve1d
from scipy.signal import convolve2d


@dataclass(frozen=True)
class RetinaConfig:
    """Problem-size and cost parameters for the retina simulation.

    ``ticks_per_mac`` calibrates simulated operator costs so that one
    ``convol_bite`` lands near the ~1.06M ticks of the paper's Cray-2
    node-timing dump (16 rows x 64 cols x 5x5 kernel x ~41 ticks).
    """

    height: int = 64
    width: int = 64
    n_targets: int = 16
    n_groups: int = 4
    n_bands: int = 4
    kernel_size: int = 5
    num_iter: int = 4
    start_slab: int = 0
    final_slab: int = 4
    seed: int = 7
    ticks_per_mac: float = 41.0
    #: Per-band cost multipliers modelling the cache-conflict imbalance
    #: visible in the paper's own dumps ("barring cache conflicts and the
    #: like"): convol_bites at 1.06/1.14/1.06/1.06 Mticks and update_bites
    #: at 0.95/0.95/1.17/0.95.  Set to all-ones for perfectly even bands.
    convol_skew: tuple[float, ...] = (1.0, 1.07, 1.0, 1.0)
    update_skew: tuple[float, ...] = (1.0, 1.0, 1.23, 1.0)

    @property
    def halo(self) -> int:
        return self.kernel_size // 2

    def band_rows(self, band: int) -> tuple[int, int]:
        """Half-open row range [r0, r1) of one band."""
        base = self.height // self.n_bands
        extra = self.height % self.n_bands
        r0 = band * base + min(band, extra)
        r1 = r0 + base + (1 if band < extra else 0)
        return r0, r1


@dataclass
class RetinaState:
    """The ``scene`` / ``convolve_data`` value flowing through the program."""

    targets: np.ndarray        #: (n, 4) float64: x, y, vx, vy
    frame: np.ndarray          #: (H, W) float64 activity image
    energy: float = 0.0        #: latest motion-energy measurement
    energy_history: tuple[float, ...] = ()

    def signature(self) -> tuple:
        """A comparable digest (tests compare v1 vs v2 vs sequential)."""
        return (
            round(float(self.frame.sum()), 9),
            round(float(np.abs(self.frame).max()), 9),
            round(self.energy, 9),
            tuple(round(e, 9) for e in self.energy_history),
            round(float(self.targets.sum()), 9),
        )


@dataclass
class TargetChunk:
    """One group of targets plus its privately rendered partial stimulus."""

    group: int
    targets: np.ndarray
    partial: np.ndarray
    carry: dict = field(default_factory=dict)


@dataclass
class Band:
    """A horizontal band of the frame, with halo rows for exact stencils."""

    index: int
    rows: np.ndarray        #: (r1 - r0 + halos, W)
    r0: int                 #: first real row (inclusive, frame coords)
    r1: int                 #: last real row (exclusive)
    top_halo: int           #: halo rows present above r0
    carry: dict = field(default_factory=dict)

    def real_rows(self) -> np.ndarray:
        return self.rows[self.top_halo : self.top_halo + (self.r1 - self.r0)]


# ---------------------------------------------------------------------------
# Kernels
# ---------------------------------------------------------------------------


def _gaussian(size: int, sigma: float) -> np.ndarray:
    ax = np.arange(size) - size // 2
    g = np.exp(-(ax**2) / (2 * sigma**2))
    k = np.outer(g, g)
    return k / k.sum()


def _gaussian1d(size: int, sigma: float) -> np.ndarray:
    ax = np.arange(size) - size // 2
    g = np.exp(-(ax**2) / (2 * sigma**2))
    return g / g.sum()


@dataclass(frozen=True)
class SeparableKernel:
    """A 2-D stencil expressed as a sum of rank-1 (column ⊗ row) terms.

    Every retina slab kernel has rank at most two: Gaussians are
    ``g ⊗ g``, the motion detectors are ``g ⊗ g'`` / ``g' ⊗ g``, and the
    difference-of-Gaussians is the two-term sum.  Applying the factors as
    1-D passes costs ``2k`` multiply-adds per pixel per term instead of
    ``k²`` — the dominant win in the retina's sequential wall clock.
    """

    terms: tuple[tuple[np.ndarray, np.ndarray], ...]

    def dense(self) -> np.ndarray:
        """The equivalent dense 2-D kernel (tests, cost accounting)."""
        out = np.outer(self.terms[0][0], self.terms[0][1])
        for col, row in self.terms[1:]:
            out = out + np.outer(col, row)
        return out


def convolve_frame(
    x: np.ndarray, kernel: "SeparableKernel | np.ndarray"
) -> np.ndarray:
    """Zero-padded same-size convolution of ``x`` with ``kernel``.

    Separable kernels run as row-then-column 1-D convolutions per term
    (``scipy.ndimage.convolve1d`` with constant-zero boundary, which
    matches ``convolve2d(..., boundary="fill")``); dense ndarrays take the
    direct 2-D path.  The row pass is per-row and the column pass sees
    identical haloed inputs, so band decomposition stays *bit-identical*
    to this full-frame form — the same argument as for the dense stencil.
    """
    if isinstance(kernel, np.ndarray):
        return convolve2d(x, kernel, mode="same", boundary="fill")
    out: np.ndarray | None = None
    for col, row in kernel.terms:
        t = convolve1d(x, row, axis=1, mode="constant")
        t = convolve1d(t, col, axis=0, mode="constant")
        out = t if out is None else out + t
    assert out is not None
    return out


def slab_kernels(config: RetinaConfig) -> list[SeparableKernel]:
    """One convolution kernel per slab, in separable form.

    Slab 0: center-surround receptor (difference of Gaussians);
    slab 1: horizontal motion detector (antisymmetric in x);
    slab 2: vertical motion detector; slab 3: smoothing Gaussian.
    Patterns repeat if final_slab exceeds four.
    """
    size = config.kernel_size
    g08 = _gaussian1d(size, 0.8)
    g20 = _gaussian1d(size, 2.0)
    g12 = _gaussian1d(size, 1.2)
    d12 = np.gradient(g12)
    g10 = _gaussian1d(size, 1.0)
    dog = SeparableKernel(((g08, g08), (-0.9 * g20, g20)))
    gx = SeparableKernel(((g12, d12),))
    gy = SeparableKernel(((d12, g12),))
    smooth = SeparableKernel(((g10, g10),))
    base = [dog, gx, gy, smooth]
    n = max(config.final_slab - config.start_slab, 1)
    return [base[i % 4] for i in range(n + config.start_slab)]


# ---------------------------------------------------------------------------
# Model steps (pure functions; the operators wrap these)
# ---------------------------------------------------------------------------


def initial_state(config: RetinaConfig) -> RetinaState:
    """Seeded initial targets and an empty frame."""
    rng = np.random.default_rng(config.seed)
    x = rng.uniform(4, config.width - 4, config.n_targets)
    y = rng.uniform(4, config.height - 4, config.n_targets)
    vx = rng.uniform(-1.5, 1.5, config.n_targets)
    vy = rng.uniform(-1.5, 1.5, config.n_targets)
    targets = np.stack([x, y, vx, vy], axis=1)
    frame = np.zeros((config.height, config.width))
    return RetinaState(targets=targets, frame=frame)


def split_targets(state: RetinaState, config: RetinaConfig) -> list[TargetChunk]:
    """Divide the targets into equal groups, each with its own canvas."""
    groups = np.array_split(np.arange(len(state.targets)), config.n_groups)
    chunks = []
    for gid, idx in enumerate(groups):
        chunk = TargetChunk(
            group=gid,
            targets=state.targets[idx].copy(),
            partial=np.zeros_like(state.frame),
        )
        if gid == 0:
            chunk.carry = {
                "energy": state.energy,
                "energy_history": state.energy_history,
            }
        chunks.append(chunk)
    return chunks


_STAMP_CACHE: dict[int, np.ndarray] = {}


def _stamp(size: int = 5) -> np.ndarray:
    stamp = _STAMP_CACHE.get(size)
    if stamp is None:
        stamp = _gaussian(size, 1.0)
        _STAMP_CACHE[size] = stamp
    return stamp


def advance_targets(chunk: TargetChunk, config: RetinaConfig) -> TargetChunk:
    """Move this group's targets (bouncing walls) and render their blobs.

    Mutates the chunk in place — this is ``target_bite``'s body, and the
    operator declares ``modifies=(0,)`` accordingly.
    """
    t = chunk.targets
    t[:, 0] += t[:, 2]
    t[:, 1] += t[:, 3]
    for axis, limit in ((0, config.width), (1, config.height)):
        low = t[:, axis] < 2
        high = t[:, axis] > limit - 3
        t[low, axis] = 4 - t[low, axis]
        t[high, axis] = 2 * (limit - 3) - t[high, axis]
        t[low | high, axis + 2] *= -1.0
    stamp = _stamp()
    h = stamp.shape[0] // 2
    chunk.partial[:] = 0.0
    for x, y, _, _ in t:
        cx, cy = int(round(x)), int(round(y))
        y0, y1 = max(cy - h, 0), min(cy + h + 1, config.height)
        x0, x1 = max(cx - h, 0), min(cx + h + 1, config.width)
        chunk.partial[y0:y1, x0:x1] += stamp[
            (y0 - cy + h) : (y1 - cy + h), (x0 - cx + h) : (x1 - cx + h)
        ]
    return chunk


def combine_chunks(
    chunks: list[TargetChunk], config: RetinaConfig
) -> RetinaState:
    """``pre_update``: merge the groups back into one state."""
    targets = np.concatenate([c.targets for c in chunks], axis=0)
    frame = np.zeros((config.height, config.width))
    for c in chunks:
        frame += c.partial
    carry = chunks[0].carry
    return RetinaState(
        targets=targets,
        frame=frame,
        energy=carry.get("energy", 0.0),
        energy_history=carry.get("energy_history", ()),
    )


def split_bands(state: RetinaState, config: RetinaConfig) -> list[Band]:
    """``convol_split`` / ``update_split``: bands with halo rows copied."""
    halo = config.halo
    bands = []
    for b in range(config.n_bands):
        r0, r1 = config.band_rows(b)
        top = min(halo, r0)
        bottom = min(halo, config.height - r1)
        rows = state.frame[r0 - top : r1 + bottom].copy()
        band = Band(index=b, rows=rows, r0=r0, r1=r1, top_halo=top)
        if b == 0:
            band.carry = {
                "targets": state.targets,
                "energy": state.energy,
                "energy_history": state.energy_history,
            }
        bands.append(band)
    return bands


def convolve_band(band: Band, kernel: "SeparableKernel | np.ndarray") -> Band:
    """``convol_bite``'s body: stencil one band; exact thanks to halos.

    A zero-padded convolution of the haloed rows, trimmed back to the real
    rows, equals the corresponding rows of a full-frame convolution:
    interior band edges see true neighbor data from the halo, and frame
    edges see the same zero padding either way.  The argument holds for
    the separable passes too — the row pass never crosses rows, and the
    column pass sees the same haloed inputs band-wise as frame-wise.
    """
    out = convolve_frame(band.rows, kernel)
    real = out[band.top_halo : band.top_halo + (band.r1 - band.r0)]
    band.rows = real
    band.top_halo = 0
    return band


def assemble_frame(bands: list[Band], config: RetinaConfig) -> np.ndarray:
    """Stack real band rows back into one frame (bands must be trimmed)."""
    frame = np.zeros((config.height, config.width))
    for band in bands:
        frame[band.r0 : band.r1] = band.real_rows()
    return frame


_DIFFUSE = SeparableKernel(((_gaussian1d(5, 1.3), _gaussian1d(5, 1.3)),))


def band_energy_and_diffuse(
    rows: np.ndarray, haloed: np.ndarray, top_halo: int, n_real: int
) -> tuple[float, np.ndarray]:
    """The per-band temporal update: motion energy + one diffusion pass.

    ``haloed`` are the band rows including halo (so diffusion is exact);
    returns (band's energy contribution, updated real rows).
    """
    energy = float(np.sum(rows * rows))
    diffused = convolve_frame(haloed, _DIFFUSE)
    real = diffused[top_halo : top_halo + n_real]
    return energy, real


def is_update_slab(slab: int) -> bool:
    """The temporal update runs on odd slabs only — which is why half of
    v1's ``post_up`` calls were negligible and half enormous (section
    5.2)."""
    return slab % 2 == 1


def full_frame_update(
    frame: np.ndarray, config: RetinaConfig
) -> tuple[float, np.ndarray]:
    """v1's sequential temporal update (the bottleneck).

    Computed band-by-band *in sequence* so its floating-point result is
    bit-identical to v2's parallel decomposition — determinism lets the
    paper's programmers verify rebalancing changed nothing.
    """
    halo = config.halo
    energy = 0.0
    out = np.zeros_like(frame)
    for b in range(config.n_bands):
        r0, r1 = config.band_rows(b)
        top = min(halo, r0)
        bottom = min(halo, config.height - r1)
        haloed = frame[r0 - top : r1 + bottom]
        real = frame[r0:r1]
        e, updated = band_energy_and_diffuse(real, haloed, top, r1 - r0)
        energy += e
        out[r0:r1] = updated
    return energy, out
