"""Sequential retina baseline: the same model steps in a plain Python loop.

This is the oracle the Delirium versions are tested against — the paper's
workflow in miniature: "a program that runs correctly on a uniprocessor
will run correctly on a multiprocessor."
"""

from __future__ import annotations

from . import model
from .model import RetinaConfig, RetinaState


def run_sequential(config: RetinaConfig | None = None) -> RetinaState:
    """Run the retina model sequentially; matches the Delirium programs
    bit-for-bit (tested)."""
    cfg = config or RetinaConfig()
    kernels = model.slab_kernels(cfg)
    state = model.initial_state(cfg)
    for _ in range(cfg.num_iter):
        # target phase
        chunks = model.split_targets(state, cfg)
        for chunk in chunks:
            model.advance_targets(chunk, cfg)
        state = model.combine_chunks(chunks, cfg)
        # convolution slabs
        for slab in range(cfg.start_slab, cfg.final_slab):
            bands = model.split_bands(state, cfg)
            for band in bands:
                model.convolve_band(band, kernels[slab])
            frame = model.assemble_frame(bands, cfg)
            energy = state.energy
            history = state.energy_history
            if model.is_update_slab(slab):
                energy, frame = model.full_frame_update(frame, cfg)
                history = history + (energy,)
            state = RetinaState(
                targets=state.targets,
                frame=frame,
                energy=energy,
                energy_history=history,
            )
    return state
