"""Registered operators for the retina programs.

Each operator wraps a model step from :mod:`repro.apps.retina.model` and
carries a simulated-cost hint calibrated to the section 5.2 node-timing
dump (in Cray-2 ticks): ``convol_bite`` near 1.06M, v1's ``post_up``
negligible on even slabs and ~4M on odd slabs (as long as all four
convolutions combined — the bottleneck), v2's ``update_bite`` near 1M,
``done_up`` ~43K, and the splits in the 10-16K range.

The registry serves both program versions; v1 uses ``post_up`` and v2 uses
``update_split``/``update_bite``/``done_up``.
"""

from __future__ import annotations

from ...runtime.operators import OperatorRegistry, default_registry
from . import model
from .model import Band, RetinaConfig, RetinaState, TargetChunk


def make_registry(config: RetinaConfig | None = None) -> OperatorRegistry:
    """Build the retina operator registry for ``config``."""
    cfg = config or RetinaConfig()
    kernels = model.slab_kernels(cfg)
    mac = cfg.ticks_per_mac
    k2 = cfg.kernel_size**2
    frame_macs = cfg.height * cfg.width

    reg = default_registry()
    local = OperatorRegistry()

    # -- target phase ---------------------------------------------------
    @local.register(name="set_up", cost=50_000.0)
    def set_up():
        return model.initial_state(cfg)

    @local.register(name="target_split", cost=10_000.0)
    def target_split(state: RetinaState):
        return tuple(model.split_targets(state, cfg))

    @local.register(
        name="target_bite",
        modifies=(0,),
        cost=lambda chunk: 4_000.0 * max(len(chunk.targets), 1),
    )
    def target_bite(chunk: TargetChunk):
        return model.advance_targets(chunk, cfg)

    # -- convolution phase ------------------------------------------------
    @local.register(
        name="pre_update", cost=float(frame_macs * mac * 0.5)
    )
    def pre_update(c1, c2, c3, c4):
        return model.combine_chunks([c1, c2, c3, c4], cfg)

    @local.register(name="convol_split", cost=10_000.0)
    def convol_split(state: RetinaState):
        return tuple(model.split_bands(state, cfg))

    def _band_macs(band: Band) -> float:
        return float((band.r1 - band.r0) * cfg.width * k2)

    def _skew(band: Band, table: tuple[float, ...]) -> float:
        return table[band.index % len(table)] if table else 1.0

    @local.register(
        name="convol_bite",
        modifies=(0,),
        cost=lambda band, slab: _band_macs(band) * mac
        * _skew(band, cfg.convol_skew),
    )
    def convol_bite(band: Band, slab: int):
        return model.convolve_band(band, kernels[slab])

    # -- v1: sequential temporal update (the bottleneck) ----------------
    def _post_up_cost(slab, a, b, c, d) -> float:
        if model.is_update_slab(slab):
            return float(frame_macs * k2 * mac)  # ~4M: the whole frame
        return float(frame_macs * 11)  # ~45K: reassembly only

    @local.register(name="post_up", cost=_post_up_cost)
    def post_up(slab: int, a: Band, b: Band, c: Band, d: Band):
        bands = [a, b, c, d]
        frame = model.assemble_frame(bands, cfg)
        carry = bands[0].carry
        energy = carry.get("energy", 0.0)
        history = carry.get("energy_history", ())
        if model.is_update_slab(slab):
            energy, frame = model.full_frame_update(frame, cfg)
            history = history + (energy,)
        return RetinaState(
            targets=carry["targets"],
            frame=frame,
            energy=energy,
            energy_history=history,
        )

    # -- v2: band-parallel temporal update -------------------------------
    @local.register(name="update_split", cost=16_000.0)
    def update_split(a: Band, b: Band, c: Band, d: Band):
        bands = [a, b, c, d]
        frame = model.assemble_frame(bands, cfg)
        carry = bands[0].carry
        state = RetinaState(
            targets=carry["targets"],
            frame=frame,
            energy=carry.get("energy", 0.0),
            energy_history=carry.get("energy_history", ()),
        )
        return tuple(model.split_bands(state, cfg))

    def _update_bite_cost(band, slab) -> float:
        if model.is_update_slab(slab):
            return _band_macs(band) * mac * _skew(band, cfg.update_skew)
        return 5_000.0

    @local.register(
        name="update_bite", modifies=(0,), cost=_update_bite_cost
    )
    def update_bite(band: Band, slab: int):
        if not model.is_update_slab(slab):
            band.rows = band.real_rows().copy()
            band.top_halo = 0
            band.carry.setdefault("band_energy", 0.0)
            return band
        n_real = band.r1 - band.r0
        energy, real = model.band_energy_and_diffuse(
            band.real_rows(), band.rows, band.top_halo, n_real
        )
        band.rows = real
        band.top_halo = 0
        band.carry["band_energy"] = energy
        return band

    @local.register(name="done_up", cost=float(43_000.0))
    def done_up(slab: int, a: Band, b: Band, c: Band, d: Band):
        bands = [a, b, c, d]
        frame = model.assemble_frame(bands, cfg)
        carry = bands[0].carry
        energy = carry.get("energy", 0.0)
        history = carry.get("energy_history", ())
        if model.is_update_slab(slab):
            energy = float(
                sum(band.carry.get("band_energy", 0.0) for band in bands)
            )
            history = history + (energy,)
        return RetinaState(
            targets=carry["targets"],
            frame=frame,
            energy=energy,
            energy_history=history,
        )

    # -- inspection helpers ----------------------------------------------
    @local.register(name="scene_energy", pure=True, cost=10.0)
    def scene_energy(state: RetinaState):
        return state.energy

    return reg.merged_with(local)
