"""Log-analytics: an unbounded streaming pipeline case study.

Where the retina (section 5) streams a *stateful simulation*, this app
streams an *aggregation*: synthetic log batches shard four ways, reduce
in parallel, and fold into a carried running aggregate.  It exists to
exercise the PR 10 robustness surface — bounded-memory streaming,
checkpoint/resume, and the ``masterkill`` crash drill — on a workload
whose state is plain data rather than NumPy arrays.
"""

from .coordination import LOG_PROGRAM, compile_log_program, make_registry
from .model import (
    empty_stats,
    make_batch,
    merge_stats,
    sequential_stats,
    shard_batch,
    shard_stats,
    stats_row,
)
from .stream import batch_source, make_stream_runner, stream_logs

__all__ = [
    "LOG_PROGRAM",
    "batch_source",
    "compile_log_program",
    "empty_stats",
    "make_batch",
    "make_registry",
    "make_stream_runner",
    "merge_stats",
    "sequential_stats",
    "shard_batch",
    "shard_stats",
    "stats_row",
    "stream_logs",
]
