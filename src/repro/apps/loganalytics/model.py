"""Synthetic log batches and shard-statistics kernels.

A deterministic stand-in for a log-ingest pipeline: batch ``i`` of a
stream is a pure function of ``(seed, i)`` — a list of records with a
service name, a level, a latency, and a status code — so a pull-based
source can re-seek to any offset after a crash and regenerate the exact
bytes it would have produced anyway.  The statistics are plain dicts
(JSON-able, picklable) combined by associative merges, which keeps the
running aggregate an ordinary carried Delirium value.

Everything here is engine-free; :mod:`.coordination` wraps these
functions as registered operators.
"""

from __future__ import annotations

import random
import zlib
from typing import Any

#: The services whose logs the synthetic feed interleaves.
SERVICES = (
    "auth",
    "billing",
    "cart",
    "catalog",
    "gateway",
    "search",
    "shipping",
    "users",
)

_LEVELS = ("INFO",) * 6 + ("WARN",) * 3 + ("ERROR",)
_STATUSES = (200,) * 7 + (404, 429, 500)

N_SHARDS = 4


def make_batch(
    seed: int, index: int, batch_size: int = 64
) -> list[dict[str, Any]]:
    """Batch ``index`` of the stream: ``batch_size`` synthetic records.

    Pure in ``(seed, index, batch_size)`` — the property the checkpoint
    subsystem relies on to store just a source *offset*.
    """
    rng = random.Random(seed * 1_000_003 + index)
    records = []
    for k in range(batch_size):
        service = SERVICES[rng.randrange(len(SERVICES))]
        level = _LEVELS[rng.randrange(len(_LEVELS))]
        status = _STATUSES[rng.randrange(len(_STATUSES))]
        latency = round(rng.expovariate(1 / 40.0), 3)
        records.append(
            {
                "batch": index,
                "k": k,
                "service": service,
                "level": level,
                "status": status,
                "latency_ms": latency,
            }
        )
    return records


def shard_of(service: str, n_shards: int = N_SHARDS) -> int:
    """Stable shard assignment (``hash()`` is salted; CRC is not)."""
    return zlib.crc32(service.encode("ascii")) % n_shards


def shard_batch(
    batch: list[dict[str, Any]], n_shards: int = N_SHARDS
) -> list[list[dict[str, Any]]]:
    """Partition one batch by service shard, order-preserving."""
    shards: list[list[dict[str, Any]]] = [[] for _ in range(n_shards)]
    for record in batch:
        shards[shard_of(record["service"], n_shards)].append(record)
    return shards


def empty_stats() -> dict[str, Any]:
    """The identity element of :func:`merge_stats`."""
    return {
        "batches": 0,
        "records": 0,
        "errors": 0,
        "warnings": 0,
        "latency_sum": 0.0,
        "latency_max": 0.0,
        "by_service": {},
        "by_status": {},
    }


def shard_stats(shard: list[dict[str, Any]]) -> dict[str, Any]:
    """Aggregate one shard's records into a partial-stats dict."""
    out = empty_stats()
    out["records"] = len(shard)
    for record in shard:
        if record["level"] == "ERROR":
            out["errors"] += 1
        elif record["level"] == "WARN":
            out["warnings"] += 1
        out["latency_sum"] += record["latency_ms"]
        if record["latency_ms"] > out["latency_max"]:
            out["latency_max"] = record["latency_ms"]
        svc = record["service"]
        out["by_service"][svc] = out["by_service"].get(svc, 0) + 1
        status = str(record["status"])
        out["by_status"][status] = out["by_status"].get(status, 0) + 1
    return out


def merge_stats(
    a: dict[str, Any], b: dict[str, Any]
) -> dict[str, Any]:
    """Associative merge of two stats dicts (never mutates either).

    ``latency_sum`` is rounded to fixed precision so the merge tree's
    shape cannot perturb the low bits — the bit-identity guarantee of
    checkpoint/resume extends to the aggregate rows.
    """
    out = empty_stats()
    out["batches"] = a["batches"] + b["batches"]
    out["records"] = a["records"] + b["records"]
    out["errors"] = a["errors"] + b["errors"]
    out["warnings"] = a["warnings"] + b["warnings"]
    out["latency_sum"] = round(a["latency_sum"] + b["latency_sum"], 6)
    out["latency_max"] = max(a["latency_max"], b["latency_max"])
    for src in (a, b):
        for svc, n in src["by_service"].items():
            out["by_service"][svc] = out["by_service"].get(svc, 0) + n
        for status, n in src["by_status"].items():
            out["by_status"][status] = out["by_status"].get(status, 0) + n
    return out


def stats_row(agg: dict[str, Any]) -> dict[str, Any]:
    """One JSON-able sink row summarizing the running aggregate."""
    records = agg["records"]
    return {
        "batches": agg["batches"],
        "records": records,
        "errors": agg["errors"],
        "warnings": agg["warnings"],
        "latency_mean": (
            round(agg["latency_sum"] / records, 6) if records else 0.0
        ),
        "latency_max": agg["latency_max"],
        "top_status": (
            max(sorted(agg["by_status"]), key=agg["by_status"].__getitem__)
            if agg["by_status"]
            else None
        ),
    }


def sequential_stats(
    seed: int, n_batches: int, batch_size: int = 64
) -> dict[str, Any]:
    """Engine-free reference: the aggregate after ``n_batches`` batches.

    Computed with the *same* shard decomposition and merge order as the
    coordination program, so tests can demand equality, not closeness.
    """
    agg = empty_stats()
    for index in range(n_batches):
        shards = shard_batch(make_batch(seed, index, batch_size))
        partial = shard_stats(shards[0])
        for shard in shards[1:]:
            partial = merge_stats(partial, shard_stats(shard))
        partial["batches"] = 1
        agg = merge_stats(agg, partial)
    return agg
