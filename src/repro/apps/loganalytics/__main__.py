"""Driver: ``python -m repro.apps.loganalytics [options]``.

Streams synthetic log batches through the shard/aggregate program and
prints the final aggregate row.  The flags mirror ``delirium run``'s
streaming surface so the checkpoint benchmark can drive this module as
a subprocess, ``kill -9`` it mid-stream (via ``--inject-faults
masterkill:nth=K``), and resume it bit-identically::

    python -m repro.apps.loganalytics --items 200 \\
        --sink out.jsonl --checkpoint run.ckpt --checkpoint-every 500 \\
        --inject-faults masterkill:nth=120
    python -m repro.apps.loganalytics --items 200 \\
        --sink out.jsonl --checkpoint run.ckpt --resume run.ckpt
"""

from __future__ import annotations

import argparse
import json

from ...faults import parse_fault_spec
from ...runtime.stream import JsonlSink, MemorySink
from ...runtime.workers import install_arena_signal_cleanup
from . import model
from .stream import (
    DEFAULT_BATCH_SIZE,
    DEFAULT_SEED,
    batch_source,
    make_stream_runner,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.apps.loganalytics",
        description="Stream synthetic log batches through Delirium.",
    )
    parser.add_argument("--items", type=int, default=50, metavar="N")
    parser.add_argument(
        "--executor",
        choices=("sequential", "threaded", "process"),
        default="sequential",
    )
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument(
        "--batch-size", type=int, default=DEFAULT_BATCH_SIZE
    )
    parser.add_argument("--sink", metavar="PATH", default=None)
    parser.add_argument("--checkpoint", metavar="PATH", default=None)
    parser.add_argument(
        "--checkpoint-every", type=int, metavar="FIRES", default=None
    )
    parser.add_argument("--resume", metavar="CKPT", default=None)
    parser.add_argument("--inject-faults", metavar="SPEC", default=None)
    parser.add_argument("--max-ready", type=int, default=None)
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the final row"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    install_arena_signal_cleanup()
    fault_spec = (
        parse_fault_spec(args.inject_faults)
        if args.inject_faults
        else None
    )
    runner = make_stream_runner(
        executor=args.executor,
        n_workers=args.workers,
        checkpoint_path=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
        fault_spec=fault_spec,
        max_ready=args.max_ready,
    )
    if args.sink:
        sink = JsonlSink(args.sink, resume=args.resume is not None)
    else:
        sink = MemorySink()
    try:
        result = runner.run(
            batch_source(args.seed, args.batch_size, args.items),
            sink,
            resume=args.resume,
        )
    finally:
        runner.close()
        sink.close()
    if not args.quiet:
        print(
            json.dumps(
                {
                    "items": result.items,
                    "fires": result.fires,
                    "resumed_from": result.resumed_from,
                    "checkpoints": result.checkpoints_written,
                    "sink_digest": result.sink_digest,
                    "final": model.stats_row(result.value),
                },
                sort_keys=True,
            )
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
