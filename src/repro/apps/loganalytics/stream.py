"""Stream wiring for the log-analytics pipeline.

Builds the pull-based source (batch ``i`` is a pure function of the
seed), the carry-mode :class:`~repro.runtime.stream.StreamRunner`, and
the emit function that writes one aggregate row per committed batch.
``python -m repro.apps.loganalytics`` is the CLI face of this module —
and the subprocess the ``kill -9`` benchmark murders.
"""

from __future__ import annotations

from typing import Any

from ...runtime.stream import (
    CallableSource,
    MemorySink,
    StreamResult,
    StreamRunner,
)
from . import model
from .coordination import compile_log_program

DEFAULT_SEED = 2026
DEFAULT_BATCH_SIZE = 64


def batch_source(
    seed: int = DEFAULT_SEED,
    batch_size: int = DEFAULT_BATCH_SIZE,
    n_batches: int | None = None,
) -> CallableSource:
    """The log feed: batch ``i`` = ``make_batch(seed, i, batch_size)``."""
    return CallableSource(
        lambda index: model.make_batch(seed, index, batch_size),
        n_items=n_batches,
    )


def make_stream_runner(
    *,
    executor: str = "sequential",
    compiled: Any = None,
    **runner_kwargs: Any,
) -> StreamRunner:
    """A carry-mode runner for the per-batch program.

    ``main(agg, batch)`` matches carry mode's default argument order,
    so no ``make_args`` override is needed.  Extra keyword arguments
    (``checkpoint_path``, ``fault_spec``, ``max_ready``, ...) pass
    through to the runner.
    """
    program = compiled or compile_log_program()
    return StreamRunner(
        program,
        executor=executor,
        carry=True,
        initial=model.empty_stats(),
        emit=model.stats_row,
        **runner_kwargs,
    )


def stream_logs(
    n_batches: int,
    sink: Any = None,
    *,
    seed: int = DEFAULT_SEED,
    batch_size: int = DEFAULT_BATCH_SIZE,
    executor: str = "sequential",
    resume: str | None = None,
    **runner_kwargs: Any,
) -> StreamResult:
    """Aggregate ``n_batches`` log batches as a stream.

    The final carry equals :func:`.model.sequential_stats` for the same
    ``(seed, n_batches, batch_size)`` — exactly, not approximately.
    """
    runner = make_stream_runner(executor=executor, **runner_kwargs)
    try:
        return runner.run(
            batch_source(seed, batch_size, n_batches),
            sink if sink is not None else MemorySink(),
            resume=resume,
        )
    finally:
        runner.close()
