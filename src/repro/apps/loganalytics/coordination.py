"""Delirium coordination for the log-analytics stream.

One stream item is one log batch; the program shards it four ways,
aggregates each shard in parallel, and folds the combined partial into
the running aggregate carried across items::

    agg ──────────────────────────────┐
    batch ─ shard4 ─┬─ shard_stats ─┐ │
                    ├─ shard_stats ─┼─ combine4 ─ merge_stats ─ agg'
                    ├─ shard_stats ─┤
                    └─ shard_stats ─┘

The same shape as the retina's fork-join, but over an *unbounded* item
sequence — which is exactly the workload class
:mod:`repro.runtime.stream` exists for.  The aggregate is a plain dict
(picklable, JSON-able), so a checkpoint of the carry is a checkpoint of
the whole pipeline state.
"""

from __future__ import annotations

from typing import Any

from ...compiler import CompiledProgram, compile_source
from ...runtime.operators import OperatorRegistry, default_registry
from . import model

#: ``main(agg, batch)`` — the carried aggregate first, the new batch
#: second, matching carry mode's default argument order.
LOG_PROGRAM = """
main(agg, batch)
  let
    <s1,s2,s3,s4>=shard4(batch)
    r1=shard_stats(s1)
    r2=shard_stats(s2)
    r3=shard_stats(s3)
    r4=shard_stats(s4)
  in merge_stats(agg, combine4(r1,r2,r3,r4))
"""


def make_registry(ticks_per_record: float = 25.0) -> OperatorRegistry:
    """Log-analytics operators; costs scale with records touched."""
    reg = default_registry()
    local = OperatorRegistry()

    @local.register(
        name="shard4",
        pure=True,
        cost=lambda batch: 5.0 * max(len(batch), 1),
    )
    def shard4(batch: list):
        return tuple(model.shard_batch(batch, model.N_SHARDS))

    @local.register(
        name="shard_stats",
        pure=True,
        cost=lambda shard: ticks_per_record * max(len(shard), 1),
    )
    def shard_stats(shard: list):
        return model.shard_stats(shard)

    @local.register(name="combine4", pure=True, cost=50.0)
    def combine4(r1, r2, r3, r4):
        partial = model.merge_stats(
            model.merge_stats(model.merge_stats(r1, r2), r3), r4
        )
        partial["batches"] = 1
        return partial

    @local.register(name="merge_stats", pure=True, cost=50.0)
    def merge_stats(agg, partial):
        return model.merge_stats(agg, partial)

    return reg.merged_with(local)


def compile_log_program(**kwargs: Any) -> CompiledProgram:
    """Compile the per-batch program against its registry."""
    return compile_source(LOG_PROGRAM, registry=make_registry(), **kwargs)
