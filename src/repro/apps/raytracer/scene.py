"""A small vectorized sphere ray tracer (the paper's 10,000-line ray
tracer, §4, in NumPy miniature).

The renderer is deliberately simple — Lambertian spheres, one point light,
hard shadows, a ground-plane checkerboard — but the computational shape
matches the original use: embarrassingly parallel over scanline bands,
coordinated by a Delirium fork-join, with per-band costs proportional to
pixels times spheres.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Sphere:
    center: tuple[float, float, float]
    radius: float
    color: tuple[float, float, float]


@dataclass
class Scene:
    """Spheres + light + camera for one frame."""

    spheres: list[Sphere]
    light: np.ndarray                      #: (3,) position
    eye: np.ndarray                        #: (3,) camera position
    width: int
    height: int
    frame: int = 0
    ambient: float = 0.12
    background: float = 0.05


def build_scene(
    width: int = 96, height: int = 64, n_spheres: int = 6, frame: int = 0,
    seed: int = 11,
) -> Scene:
    """A seeded random scene; ``frame`` orbits the light (animation)."""
    rng = np.random.default_rng(seed)
    spheres = [
        Sphere(
            center=(
                float(rng.uniform(-2.2, 2.2)),
                float(rng.uniform(-0.4, 1.6)),
                float(rng.uniform(3.0, 7.0)),
            ),
            radius=float(rng.uniform(0.35, 0.9)),
            color=tuple(float(c) for c in rng.uniform(0.3, 1.0, 3)),
        )
        for _ in range(n_spheres)
    ]
    angle = 0.35 * frame
    light = np.array([4.0 * np.cos(angle), 5.0, 4.0 * np.sin(angle) + 4.0])
    return Scene(
        spheres=spheres,
        light=light,
        eye=np.array([0.0, 0.6, -1.0]),
        width=width,
        height=height,
        frame=frame,
    )


def _primary_rays(scene: Scene, y0: int, y1: int) -> tuple[np.ndarray, np.ndarray]:
    """Origins (broadcast) and unit directions for rows [y0, y1)."""
    aspect = scene.width / scene.height
    xs = (np.arange(scene.width) + 0.5) / scene.width * 2 - 1
    ys = 1 - (np.arange(y0, y1) + 0.5) / scene.height * 2
    px, py = np.meshgrid(xs * aspect, ys)
    directions = np.stack(
        [px, py, np.ones_like(px) * 1.6], axis=-1
    )
    directions /= np.linalg.norm(directions, axis=-1, keepdims=True)
    return scene.eye, directions


def _intersect(
    origin: np.ndarray, directions: np.ndarray, sphere: Sphere
) -> np.ndarray:
    """Smallest positive hit distance per ray (inf when missed)."""
    oc = origin - np.asarray(sphere.center)  # (3,) or (..., 3)
    b = 2.0 * np.sum(directions * oc, axis=-1)
    c = np.sum(oc * oc, axis=-1) - sphere.radius**2
    disc = b * b - 4 * c
    hit = disc >= 0
    sq = np.sqrt(np.where(hit, disc, 0.0))
    t0 = (-b - sq) / 2.0
    t1 = (-b + sq) / 2.0
    t = np.where(t0 > 1e-4, t0, t1)
    return np.where(hit & (t > 1e-4), t, np.inf)


def _shadowed(points: np.ndarray, scene: Scene) -> np.ndarray:
    """Boolean mask: is the light occluded from each point?"""
    to_light = scene.light - points
    dist = np.linalg.norm(to_light, axis=-1, keepdims=True)
    directions = to_light / dist
    blocked = np.zeros(points.shape[:-1], dtype=bool)
    for sphere in scene.spheres:
        t = _intersect(points, directions, sphere)
        blocked |= t < dist[..., 0]
    return blocked


def render_rows(scene: Scene, y0: int, y1: int) -> np.ndarray:
    """Render rows [y0, y1) -> (y1-y0, width, 3) float image."""
    origin, directions = _primary_rays(scene, y0, y1)
    shape = directions.shape[:-1]
    best_t = np.full(shape, np.inf)
    best_idx = np.full(shape, -1, dtype=int)
    for i, sphere in enumerate(scene.spheres):
        t = _intersect(origin, directions, sphere)
        closer = t < best_t
        best_t = np.where(closer, t, best_t)
        best_idx = np.where(closer, i, best_idx)

    image = np.full(shape + (3,), scene.background)
    hit_any = best_idx >= 0
    if hit_any.any():
        # Missed rays carry t=inf; zero them so the (unused) shadow math
        # stays finite instead of spraying NaN warnings.
        t_safe = np.where(hit_any, best_t, 0.0)
        points = origin + directions * t_safe[..., None]
        in_shadow = _shadowed(points, scene)
        for i, sphere in enumerate(scene.spheres):
            mask = best_idx == i
            if not mask.any():
                continue
            normals = points - np.asarray(sphere.center)
            normals /= np.linalg.norm(normals, axis=-1, keepdims=True)
            to_light = scene.light - points
            to_light /= np.linalg.norm(to_light, axis=-1, keepdims=True)
            diffuse = np.clip(
                np.einsum("...k,...k->...", normals, to_light), 0.0, 1.0
            )
            diffuse = np.where(in_shadow, 0.0, diffuse)
            shade = scene.ambient + (1 - scene.ambient) * diffuse
            color = np.asarray(sphere.color)
            image = np.where(
                mask[..., None], shade[..., None] * color, image
            )
    return image


def render_sequential(scene: Scene) -> np.ndarray:
    """Full-frame reference render."""
    return render_rows(scene, 0, scene.height)


def band_bounds(height: int, n_bands: int, band: int) -> tuple[int, int]:
    base, extra = divmod(height, n_bands)
    y0 = band * base + min(band, extra)
    return y0, y0 + base + (1 if band < extra else 0)
