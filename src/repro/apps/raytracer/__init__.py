"""The ray-tracer application (mentioned in section 4 of the paper)."""

from .coordination import (
    RAYTRACER,
    compile_raytracer,
    make_registry,
    render_animation_sequential,
)
from .scene import (
    Scene,
    Sphere,
    band_bounds,
    build_scene,
    render_rows,
    render_sequential,
)

__all__ = [
    "RAYTRACER",
    "Scene",
    "Sphere",
    "band_bounds",
    "build_scene",
    "compile_raytracer",
    "make_registry",
    "render_animation_sequential",
    "render_rows",
    "render_sequential",
]
