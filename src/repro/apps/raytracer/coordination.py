"""Delirium coordination for the ray tracer: scanline-band fork-join per
frame, iterated over an animation.

The film value flowing through the loop is the last rendered frame; each
round builds the frame's scene (the light orbits), splits the film into
four scanline bands, traces them in parallel, and merges by stacking —
the same split/bite/merge idiom as the retina.
"""

from __future__ import annotations

import numpy as np

from ...compiler import CompiledProgram, compile_source
from ...runtime.operators import OperatorRegistry, default_registry
from . import scene as scn

RAYTRACER = """
main()
  iterate
  {
    frame = 0, incr(frame)
    film = black_film(),
      let
        world = make_scene(frame)
        <b1,b2,b3,b4> = film_split(world)
        r1 = trace_band(b1)
        r2 = trace_band(b2)
        r3 = trace_band(b3)
        r4 = trace_band(b4)
      in film_merge(r1,r2,r3,r4)
  }
  while is_not_equal(frame, NUM_FRAMES),
  result film
"""

N_BANDS = 4


def make_registry(
    width: int = 96, height: int = 64, n_spheres: int = 6, seed: int = 11
) -> OperatorRegistry:
    """Ray-tracer operators; costs scale with pixels x spheres."""
    reg = default_registry()
    local = OperatorRegistry()
    ticks_per_pixel_sphere = 60.0

    @local.register(name="black_film", cost=1_000.0)
    def black_film():
        return np.zeros((height, width, 3))

    @local.register(name="make_scene", cost=2_000.0)
    def make_scene(frame: int):
        return scn.build_scene(width, height, n_spheres, frame, seed)

    @local.register(name="film_split", cost=2_000.0)
    def film_split(world: scn.Scene):
        return tuple(
            {"scene": world, "band": b} for b in range(N_BANDS)
        )

    def _band_cost(band_job) -> float:
        world = band_job["scene"]
        y0, y1 = scn.band_bounds(world.height, N_BANDS, band_job["band"])
        return (y1 - y0) * world.width * len(world.spheres) * ticks_per_pixel_sphere

    @local.register(name="trace_band", cost=_band_cost)
    def trace_band(band_job):
        world = band_job["scene"]
        y0, y1 = scn.band_bounds(world.height, N_BANDS, band_job["band"])
        return {
            "band": band_job["band"],
            "y0": y0,
            "rows": scn.render_rows(world, y0, y1),
        }

    @local.register(name="film_merge", cost=3_000.0)
    def film_merge(*parts):
        rows = [p["rows"] for p in sorted(parts, key=lambda p: p["band"])]
        return np.concatenate(rows, axis=0)

    return reg.merged_with(local)


def compile_raytracer(
    width: int = 96,
    height: int = 64,
    n_spheres: int = 6,
    n_frames: int = 2,
    seed: int = 11,
) -> CompiledProgram:
    """Compile the ray-tracing coordination framework."""
    return compile_source(
        RAYTRACER,
        registry=make_registry(width, height, n_spheres, seed),
        defines={"NUM_FRAMES": n_frames},
    )


def render_animation_sequential(
    width: int = 96,
    height: int = 64,
    n_spheres: int = 6,
    n_frames: int = 2,
    seed: int = 11,
) -> np.ndarray:
    """The oracle: last frame of the animation, rendered directly."""
    film = np.zeros((height, width, 3))
    for frame in range(n_frames):
        world = scn.build_scene(width, height, n_spheres, frame, seed)
        film = scn.render_sequential(world)
    return film
