"""Driver: ``python -m repro.apps.raytracer [out.ppm]``."""

import sys

import numpy as np

from ...runtime import SequentialExecutor
from .coordination import compile_raytracer


def main() -> int:
    out = sys.argv[1] if len(sys.argv) > 1 else "raytraced.ppm"
    program = compile_raytracer(width=160, height=100, n_frames=2)
    film = SequentialExecutor().run(
        program.graph, registry=program.registry
    ).value
    data = (np.clip(film, 0, 1) * 255).astype(np.uint8)
    header = f"P6\n{film.shape[1]} {film.shape[0]}\n255\n".encode()
    with open(out, "wb") as fh:
        fh.write(header + data.tobytes())
    print(f"wrote {out} ({film.shape[1]}x{film.shape[0]})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
