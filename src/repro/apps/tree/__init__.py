"""Parallel tree-walking framework (section 6.2 of the paper)."""

from .partition import Clipping, clip, imbalance, pack, partition, subtree_weight
from .walks import (
    inherited,
    inherited_partitioned,
    synthesized,
    synthesized_partitioned,
    top_down,
    top_down_partitioned,
    walk_packages,
)

__all__ = [
    "Clipping",
    "clip",
    "imbalance",
    "inherited",
    "inherited_partitioned",
    "pack",
    "partition",
    "subtree_weight",
    "synthesized",
    "synthesized_partitioned",
    "top_down",
    "top_down_partitioned",
    "walk_packages",
]

from .coordination import (
    compile_tree_walk,
    make_inherited_registry,
    make_synthesized_registry,
    make_top_down_registry,
    run_inherited,
    run_synthesized,
    run_top_down,
)

__all__ += [
    "compile_tree_walk",
    "make_inherited_registry",
    "make_synthesized_registry",
    "make_top_down_registry",
    "run_inherited",
    "run_synthesized",
    "run_top_down",
]
