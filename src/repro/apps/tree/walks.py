"""The three parallel tree-walk schemes (section 6.2).

"We examined each of the passes over the tree, and realized that with
some work they can all be cast into one of three kinds of tree walk":

1. **top-down update** — update each node; ancestors are updated first;
2. **inherited-attribute update** — compute an attribute downward and
   hand each node the accumulated package;
3. **synthesized-attribute update** — fold upward from the leaves.

Each scheme has a sequential reference implementation and a *partitioned*
form: the crown is handled on one processor, clipped subtrees are
processed independently (these are the parallel "bites"), and a merge
finishes the pass — which for the top-down walk is free (the pointer
trick), while the synthesized walk "must run over the crown of the tree
finishing the pass now that the values for the subtrees have been
computed."

Walks are generic over trees exposing ``children()``; node identity is
used to stitch partitioned results back together.
"""

from __future__ import annotations

from typing import Any, Callable

from .partition import partition

Update = Callable[[Any], None]
Inherit = Callable[[Any, Any], Any]       # (node, ctx) -> child ctx
Fold = Callable[[Any, list[Any]], Any]    # (node, child values) -> value


# ---------------------------------------------------------------------------
# Sequential reference walks
# ---------------------------------------------------------------------------


def top_down(root: Any, update: Update) -> None:
    """Update every node, parents before children."""
    update(root)
    for child in root.children():
        top_down(child, update)


def inherited(root: Any, inherit: Inherit, ctx: Any) -> None:
    """Push an inherited attribute down the tree."""
    child_ctx = inherit(root, ctx)
    for child in root.children():
        inherited(child, inherit, child_ctx)


def synthesized(root: Any, fold: Fold) -> Any:
    """Fold the tree bottom-up; returns the root's synthesized value."""
    values = [synthesized(child, fold) for child in root.children()]
    return fold(root, values)


# ---------------------------------------------------------------------------
# Partitioned walks
# ---------------------------------------------------------------------------


def top_down_partitioned(root: Any, update: Update, n_processors: int) -> None:
    """Partitioned top-down walk.

    The crown is updated first (sequentially — every clipped subtree's
    ancestors must be done before it starts), then each processor's set of
    subtrees independently.  The merge is free.
    """
    crown, sets = partition(root, n_processors)
    crown_set = set(map(id, crown))
    for node in crown:
        update(node)
    for subtree_set in sets:  # each set is one processor's work
        for subtree in subtree_set:
            top_down(subtree, update)
    # merge: nothing to do — "the merge simply returns a pointer".
    del crown_set


def inherited_partitioned(
    root: Any, inherit: Inherit, ctx: Any, n_processors: int
) -> None:
    """Partitioned inherited-attribute walk.

    The crown pass computes the inherited package at every clip point;
    each subtree then starts from its recorded package.
    """
    crown, sets = partition(root, n_processors)
    crown_ids = set(map(id, crown))
    entry_ctx: dict[int, Any] = {}

    def walk_crown(node: Any, context: Any) -> None:
        if id(node) not in crown_ids:
            entry_ctx[id(node)] = context
            return
        child_ctx = inherit(node, context)
        for child in node.children():
            walk_crown(child, child_ctx)

    if id(root) in crown_ids:
        walk_crown(root, ctx)
    else:
        entry_ctx[id(root)] = ctx
    for subtree_set in sets:
        for subtree in subtree_set:
            inherited(subtree, inherit, entry_ctx[id(subtree)])


def synthesized_partitioned(root: Any, fold: Fold, n_processors: int) -> Any:
    """Partitioned synthesized-attribute walk.

    Subtree sets fold independently; the merge "must run over the crown
    of the tree finishing the pass now that the values for the subtrees
    have been computed."
    """
    crown, sets = partition(root, n_processors)
    crown_ids = set(map(id, crown))
    subtree_value: dict[int, Any] = {}
    for subtree_set in sets:
        for subtree in subtree_set:
            subtree_value[id(subtree)] = synthesized(subtree, fold)

    def finish(node: Any) -> Any:
        if id(node) not in crown_ids:
            return subtree_value[id(node)]
        values = [finish(child) for child in node.children()]
        return fold(node, values)

    return finish(root)


# ---------------------------------------------------------------------------
# Work-package helpers for Delirium coordination
# ---------------------------------------------------------------------------


def walk_packages(
    root: Any, n_processors: int
) -> tuple[list[Any], list[list[Any]]]:
    """Expose (crown, sets) so Delirium operators can ship sets to
    processors; thin alias of :func:`partition` with a stable name for the
    compiler case study."""
    return partition(root, n_processors)
