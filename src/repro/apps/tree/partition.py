"""Weight-based tree clipping and partitioning (section 6.2).

"To ensure that the sets of subtrees allocated to each processor are
roughly equivalent in weight, every tree node is annotated with the size
of the subtree below it.  We divide the total weight of the tree by the
number of processors we will be using.  The tree traversal runs until we
find a subtree that is less than one-third of the desired weight."

:func:`clip` walks the crown, clipping off subtrees no heavier than the
per-processor share (descending further only while a subtree is too
heavy, and never below one third of the share); :func:`pack` distributes
the clipped subtrees over processors greedily (heaviest first into the
lightest set).  Works over any tree exposing ``children()``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable


def subtree_weight(node: Any) -> int:
    """Annotation: 1 + total weight of children (the paper's node size)."""
    return 1 + sum(subtree_weight(c) for c in node.children())


@dataclass
class Clipping:
    """Result of clipping: the crown keeps nodes whose subtrees were
    divided; ``pieces`` are the clipped-off subtrees with their weights."""

    crown: list[Any] = field(default_factory=list)
    pieces: list[tuple[Any, int]] = field(default_factory=list)


def clip(root: Any, n_processors: int, weight: Callable[[Any], int] | None = None) -> Clipping:
    """Clip subtrees off the crown for ``n_processors`` workers."""
    if n_processors < 1:
        raise ValueError("need at least one processor")
    weigh = weight or subtree_weight
    total = weigh(root)
    desired = max(total / n_processors, 1.0)
    floor = desired / 3.0
    out = Clipping()

    def descend(node: Any) -> None:
        w = weigh(node)
        if w <= desired or w < floor:
            out.pieces.append((node, w))
            return
        children = list(node.children())
        if not children:
            out.pieces.append((node, w))
            return
        out.crown.append(node)
        for child in children:
            descend(child)

    descend(root)
    return out


def pack(
    pieces: Iterable[tuple[Any, int]], n_sets: int
) -> list[list[Any]]:
    """Greedy balanced packing: heaviest piece into the lightest set."""
    if n_sets < 1:
        raise ValueError("need at least one set")
    sets: list[list[Any]] = [[] for _ in range(n_sets)]
    loads = [0.0] * n_sets
    for node, w in sorted(pieces, key=lambda p: -p[1]):
        i = loads.index(min(loads))
        sets[i].append(node)
        loads[i] += w
    return sets


def partition(
    root: Any, n_processors: int, weight: Callable[[Any], int] | None = None
) -> tuple[list[Any], list[list[Any]]]:
    """Clip + pack in one call; returns (crown nodes, per-processor sets)."""
    clipping = clip(root, n_processors, weight)
    return clipping.crown, pack(clipping.pieces, n_processors)


def imbalance(sets: list[list[Any]], weight: Callable[[Any], int] | None = None) -> float:
    """max set weight / mean set weight (1.0 = perfect balance)."""
    weigh = weight or subtree_weight
    loads = [sum(weigh(n) for n in s) for s in sets]
    mean = sum(loads) / len(loads) if loads else 0.0
    return (max(loads) / mean) if mean else 1.0
