"""Generic Delirium coordination for the three tree-walk schemes.

Section 6.4: the parallel compiler's auxiliary module is "made up of
parallel tree-walking primitives."  This is that module in reusable form:
given any tree object (exposing ``children()``) and per-scheme visitor
callables, :func:`compile_tree_walk` builds a Delirium program whose
split/bite/merge operators run the partitioned walk from
:mod:`repro.apps.tree.walks` — crown handled at the merge/split ends,
subtree sets processed by parallel bites.

The three schemes:

* ``top_down``    — bite = run the update over a subtree set; merge is
  the free pointer return (after the crown was updated by the split);
* ``inherited``   — split computes the inherited package at each clip
  point (crown pass), bites walk subtree sets from their packages;
* ``synthesized`` — bites fold subtree sets bottom-up; the merge
  finishes the fold over the crown.

Costs are proportional to the subtree weights a bite processes, so the
simulated machines show exactly the balance the weight-based clipping
achieves.
"""

from __future__ import annotations

from typing import Any

from ...compiler import CompiledProgram, compile_source
from ...runtime.operators import OperatorRegistry, default_registry
from .partition import partition, subtree_weight
from .walks import Fold, Inherit, Update, inherited, synthesized, top_down

N_WAYS = 4

TREE_WALK = """
main()
  let <s1,s2,s3,s4> = walk_split(the_tree())
      r1 = walk_bite(s1)
      r2 = walk_bite(s2)
      r3 = walk_bite(s3)
      r4 = walk_bite(s4)
  in walk_merge(r1,r2,r3,r4)
"""


def _set_weight(subtree_set: list[Any]) -> float:
    return float(sum(subtree_weight(node) for node in subtree_set))


def make_top_down_registry(
    tree: Any, update: Update, ticks_per_node: float = 100.0
) -> OperatorRegistry:
    """Operators for a partitioned top-down update walk over ``tree``."""
    reg = default_registry()
    local = OperatorRegistry()

    @local.register(name="the_tree", cost=10.0)
    def the_tree():
        return tree

    @local.register(
        name="walk_split",
        cost=lambda t: 50.0 + subtree_weight(t) * ticks_per_node * 0.05,
    )
    def walk_split(t):
        crown, sets = partition(t, N_WAYS)
        # Crown nodes are updated during division — their updates must
        # precede every clipped subtree's (ancestors first).
        for node in crown:
            update(node)
        return tuple({"set": s, "root": t} for s in sets)

    @local.register(
        name="walk_bite",
        modifies=(0,),
        cost=lambda job: 50.0 + _set_weight(job["set"]) * ticks_per_node,
    )
    def walk_bite(job):
        for subtree in job["set"]:
            top_down(subtree, update)
        return job

    @local.register(name="walk_merge", cost=10.0)
    def walk_merge(j1, j2, j3, j4):
        # "the merge simply returns a pointer to the entire tree."
        return j1["root"]

    return reg.merged_with(local)


def make_inherited_registry(
    tree: Any, inherit: Inherit, initial: Any, ticks_per_node: float = 100.0
) -> OperatorRegistry:
    """Operators for a partitioned inherited-attribute walk."""
    reg = default_registry()
    local = OperatorRegistry()

    @local.register(name="the_tree", cost=10.0)
    def the_tree():
        return tree

    @local.register(
        name="walk_split",
        cost=lambda t: 50.0 + subtree_weight(t) * ticks_per_node * 0.05,
    )
    def walk_split(t):
        crown, sets = partition(t, N_WAYS)
        crown_ids = set(map(id, crown))
        entry_ctx: dict[int, Any] = {}

        def walk_crown(node: Any, ctx: Any) -> None:
            if id(node) not in crown_ids:
                entry_ctx[id(node)] = ctx
                return
            child_ctx = inherit(node, ctx)
            for child in node.children():
                walk_crown(child, child_ctx)

        if id(t) in crown_ids:
            walk_crown(t, initial)
        else:
            entry_ctx[id(t)] = initial
        return tuple(
            {"set": s, "root": t, "ctx": {id(n): entry_ctx[id(n)] for n in s}}
            for s in sets
        )

    @local.register(
        name="walk_bite",
        modifies=(0,),
        cost=lambda job: 50.0 + _set_weight(job["set"]) * ticks_per_node,
    )
    def walk_bite(job):
        for subtree in job["set"]:
            inherited(subtree, inherit, job["ctx"][id(subtree)])
        return job

    @local.register(name="walk_merge", cost=10.0)
    def walk_merge(j1, j2, j3, j4):
        return j1["root"]

    return reg.merged_with(local)


def make_synthesized_registry(
    tree: Any, fold: Fold, ticks_per_node: float = 100.0
) -> OperatorRegistry:
    """Operators for a partitioned synthesized-attribute walk."""
    reg = default_registry()
    local = OperatorRegistry()
    crown, sets = partition(tree, N_WAYS)
    crown_ids = set(map(id, crown))

    @local.register(name="the_tree", cost=10.0)
    def the_tree():
        return tree

    @local.register(
        name="walk_split",
        cost=lambda t: 50.0 + subtree_weight(t) * ticks_per_node * 0.05,
    )
    def walk_split(t):
        return tuple({"set": s} for s in sets)

    @local.register(
        name="walk_bite",
        modifies=(0,),
        cost=lambda job: 50.0 + _set_weight(job["set"]) * ticks_per_node,
    )
    def walk_bite(job):
        job["values"] = {
            id(subtree): synthesized(subtree, fold) for subtree in job["set"]
        }
        return job

    @local.register(
        name="walk_merge",
        cost=50.0 + len(crown) * ticks_per_node,
    )
    def walk_merge(*jobs):
        # "must run over the crown of the tree finishing the pass now
        # that the values for the subtrees have been computed."
        subtree_value: dict[int, Any] = {}
        for job in jobs:
            subtree_value.update(job["values"])

        def finish(node: Any) -> Any:
            if id(node) not in crown_ids:
                return subtree_value[id(node)]
            return fold(node, [finish(c) for c in node.children()])

        return finish(tree)

    return reg.merged_with(local)


def compile_tree_walk(registry: OperatorRegistry) -> CompiledProgram:
    """Compile the four-way walk framework against a scheme registry."""
    return compile_source(TREE_WALK, registry=registry)


def run_top_down(
    tree: Any, update: Update, executor: Any | None = None
) -> Any:
    """Convenience: partitioned top-down update through Delirium."""
    program = compile_tree_walk(make_top_down_registry(tree, update))
    return program.run(executor=executor).value


def run_inherited(
    tree: Any, inherit: Inherit, initial: Any, executor: Any | None = None
) -> Any:
    """Convenience: partitioned inherited-attribute walk through Delirium."""
    program = compile_tree_walk(
        make_inherited_registry(tree, inherit, initial)
    )
    return program.run(executor=executor).value


def run_synthesized(
    tree: Any, fold: Fold, executor: Any | None = None
) -> Any:
    """Convenience: partitioned synthesized fold through Delirium."""
    program = compile_tree_walk(make_synthesized_registry(tree, fold))
    return program.run(executor=executor).value
