"""A gate-level combinational circuit simulator (the paper's "simple
circuit simulator", §4).

Circuits are levelized DAGs stored in NumPy arrays: gate types, input
indices, and a topological level per gate.  Evaluation proceeds level by
level; within a level every gate is independent — the parallelism the
Delirium coordination exploits by splitting each level's gates four ways.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Gate type codes.
INPUT, AND, OR, NOT, XOR, NAND = range(6)
_GATE_NAMES = {INPUT: "IN", AND: "AND", OR: "OR", NOT: "NOT",
               XOR: "XOR", NAND: "NAND"}


@dataclass
class Circuit:
    """A levelized combinational netlist.

    Arrays are indexed by gate id; level 0 gates are primary inputs.
    ``outputs`` lists the gate ids whose values are the circuit outputs.
    """

    gate_type: np.ndarray       #: (n,) int8
    in0: np.ndarray             #: (n,) int32 (-1 for inputs)
    in1: np.ndarray             #: (n,) int32 (-1 for inputs/NOT)
    level: np.ndarray           #: (n,) int32
    outputs: np.ndarray         #: (k,) int32
    input_values: np.ndarray    #: (#inputs,) uint8

    @property
    def n_gates(self) -> int:
        return len(self.gate_type)

    @property
    def n_levels(self) -> int:
        return int(self.level.max()) + 1

    def gates_at_level(self, level: int) -> np.ndarray:
        return np.nonzero(self.level == level)[0]

    def describe(self) -> str:
        counts = {
            _GATE_NAMES[t]: int((self.gate_type == t).sum())
            for t in _GATE_NAMES
            if (self.gate_type == t).any()
        }
        return (
            f"circuit: {self.n_gates} gates, {self.n_levels} levels, "
            f"{len(self.outputs)} outputs, {counts}"
        )


def random_circuit(
    n_inputs: int = 32,
    n_gates: int = 400,
    n_outputs: int = 16,
    seed: int = 5,
) -> Circuit:
    """A seeded random levelized circuit.

    Each gate draws operands from strictly earlier gates (biased toward
    recent ones so levels deepen realistically).
    """
    rng = np.random.default_rng(seed)
    total = n_inputs + n_gates
    gate_type = np.empty(total, dtype=np.int8)
    in0 = np.full(total, -1, dtype=np.int32)
    in1 = np.full(total, -1, dtype=np.int32)
    level = np.zeros(total, dtype=np.int32)
    gate_type[:n_inputs] = INPUT
    for g in range(n_inputs, total):
        kind = int(rng.choice([AND, OR, NOT, XOR, NAND]))
        gate_type[g] = kind
        # Bias operand choice toward recent gates to deepen the circuit.
        if rng.random() < 0.7 and g > n_inputs + 4:
            a = int(rng.integers(max(n_inputs, g - 24), g))
        else:
            a = int(rng.integers(0, g))
        in0[g] = a
        lvl = level[a] + 1
        if kind != NOT:
            b = int(rng.integers(0, g))
            in1[g] = b
            lvl = max(lvl, level[b] + 1)
        level[g] = lvl
    outputs = np.sort(rng.choice(total - 1, size=n_outputs, replace=False) + 1)
    input_values = rng.integers(0, 2, size=n_inputs).astype(np.uint8)
    return Circuit(
        gate_type=gate_type,
        in0=in0,
        in1=in1,
        level=level,
        outputs=outputs.astype(np.int32),
        input_values=input_values,
    )


def eval_gates(
    circuit: Circuit, gate_ids: np.ndarray, values: np.ndarray
) -> np.ndarray:
    """Evaluate ``gate_ids`` (all at one level) against current values.

    Pure: returns the gates' outputs, does not touch ``values``.
    """
    kinds = circuit.gate_type[gate_ids]
    a = values[circuit.in0[gate_ids]]
    b_idx = circuit.in1[gate_ids]
    b = np.where(b_idx >= 0, values[np.maximum(b_idx, 0)], 0).astype(np.uint8)
    out = np.zeros(len(gate_ids), dtype=np.uint8)
    out = np.where(kinds == AND, a & b, out)
    out = np.where(kinds == OR, a | b, out)
    out = np.where(kinds == NOT, 1 - a, out)
    out = np.where(kinds == XOR, a ^ b, out)
    out = np.where(kinds == NAND, 1 - (a & b), out)
    return out


def evaluate_sequential(circuit: Circuit) -> np.ndarray:
    """Level-by-level reference evaluation; returns the output bits."""
    values = np.zeros(circuit.n_gates, dtype=np.uint8)
    n_inputs = len(circuit.input_values)
    values[:n_inputs] = circuit.input_values
    for lvl in range(1, circuit.n_levels):
        ids = circuit.gates_at_level(lvl)
        values[ids] = eval_gates(circuit, ids, values)
    return values[circuit.outputs].copy()
