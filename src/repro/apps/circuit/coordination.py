"""Delirium coordination for the circuit simulator.

An ``iterate`` walks the circuit's levels; each round splits the level's
gates into four weight-balanced chunks, evaluates them in parallel, and a
merging operator (which declares it *modifies* the value array — the
runtime's reference counts make that an in-place update, since by merge
time the state has a single reference) writes the results back.
"""

from __future__ import annotations

import numpy as np

from ...compiler import CompiledProgram, compile_source
from ...runtime.operators import OperatorRegistry, default_registry
from . import netlist
from .netlist import Circuit

CIRCUIT_SIM = """
main()
  iterate
  {
    level = 1, incr(level)
    state = init_state(),
      let
        <c1,c2,c3,c4> = level_split(state, level)
        r1 = eval_bite(c1)
        r2 = eval_bite(c2)
        r3 = eval_bite(c3)
        r4 = eval_bite(c4)
      in level_merge(state, r1, r2, r3, r4)
  }
  while is_less(level, N_LEVELS),
  result read_outputs(state)
"""

N_CHUNKS = 4


def make_registry(circuit: Circuit) -> OperatorRegistry:
    """Operators closed over one circuit; costs scale with gates."""
    reg = default_registry()
    local = OperatorRegistry()
    ticks_per_gate = 800.0

    @local.register(name="init_state", cost=2_000.0)
    def init_state():
        values = np.zeros(circuit.n_gates, dtype=np.uint8)
        n_inputs = len(circuit.input_values)
        values[:n_inputs] = circuit.input_values
        return values

    @local.register(name="level_split", cost=1_500.0)
    def level_split(values: np.ndarray, level: int):
        ids = circuit.gates_at_level(level)
        chunks = np.array_split(ids, N_CHUNKS)
        return tuple(
            {"ids": chunk, "values": values} for chunk in chunks
        )

    @local.register(
        name="eval_bite",
        pure=True,
        cost=lambda chunk: 200.0 + len(chunk["ids"]) * ticks_per_gate,
    )
    def eval_bite(chunk):
        ids = chunk["ids"]
        out = netlist.eval_gates(circuit, ids, chunk["values"])
        return {"ids": ids, "out": out}

    @local.register(name="level_merge", modifies=(0,), cost=1_000.0)
    def level_merge(values: np.ndarray, *results):
        for r in results:
            values[r["ids"]] = r["out"]
        return values

    @local.register(name="read_outputs", pure=True, cost=500.0)
    def read_outputs(values: np.ndarray):
        return tuple(int(v) for v in values[circuit.outputs])

    return reg.merged_with(local)


def compile_circuit_sim(circuit: Circuit) -> CompiledProgram:
    """Compile the level-parallel simulator for ``circuit``."""
    return compile_source(
        CIRCUIT_SIM,
        registry=make_registry(circuit),
        defines={"N_LEVELS": circuit.n_levels},
    )
