"""The circuit-simulator application (mentioned in section 4 of the paper)."""

from .coordination import CIRCUIT_SIM, compile_circuit_sim, make_registry
from .netlist import (
    AND,
    INPUT,
    NAND,
    NOT,
    OR,
    XOR,
    Circuit,
    eval_gates,
    evaluate_sequential,
    random_circuit,
)

__all__ = [
    "AND",
    "CIRCUIT_SIM",
    "Circuit",
    "INPUT",
    "NAND",
    "NOT",
    "OR",
    "XOR",
    "compile_circuit_sim",
    "eval_gates",
    "evaluate_sequential",
    "make_registry",
    "random_circuit",
]
