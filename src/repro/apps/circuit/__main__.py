"""Driver: ``python -m repro.apps.circuit [n_gates]``."""

import sys

from ...runtime import SequentialExecutor
from .coordination import compile_circuit_sim
from .netlist import evaluate_sequential, random_circuit


def main() -> int:
    n_gates = int(sys.argv[1]) if len(sys.argv) > 1 else 400
    circuit = random_circuit(n_gates=n_gates)
    print(circuit.describe())
    program = compile_circuit_sim(circuit)
    value = SequentialExecutor().run(
        program.graph, registry=program.registry
    ).value
    assert value == tuple(int(v) for v in evaluate_sequential(circuit))
    print("outputs:", "".join(map(str, value)))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
