"""The paper's applications, built on the public Delirium API.

* :mod:`repro.apps.retina` — the convolution retina model (section 5);
* :mod:`repro.apps.compiler_app` — the compiler compiled in parallel by
  itself (section 6, Table 1);
* :mod:`repro.apps.queens` — parallel backtracking N-queens (section 3);
* :mod:`repro.apps.tree` — the parallel tree-walk framework (section 6.2);
* :mod:`repro.apps.raytracer` and :mod:`repro.apps.circuit` — the two
  larger applications section 4 mentions, in miniature.
"""
