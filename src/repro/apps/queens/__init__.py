"""The parallel N-queens case study (section 3 of the paper)."""

from __future__ import annotations

from typing import Any

from ...compiler import CompiledProgram, compile_source
from .operators import make_registry
from .programs import PAPER_EIGHT_QUEENS, queens_source
from .sequential import SOLUTION_COUNTS, solve_sequential

__all__ = [
    "PAPER_EIGHT_QUEENS",
    "SOLUTION_COUNTS",
    "compile_queens",
    "make_registry",
    "queens_source",
    "solve",
    "solve_sequential",
]


def compile_queens(n: int = 8, **kwargs: Any) -> CompiledProgram:
    """Compile the N-queens coordination framework with its operators."""
    return compile_source(queens_source(n), registry=make_registry(n), **kwargs)


def solve(n: int = 8, executor: Any | None = None) -> list[tuple[int, ...]]:
    """Solve N-queens through the Delirium program; returns sorted tuples."""
    compiled = compile_queens(n)
    return compiled.run(executor=executor).value
