"""Delirium sources for N-queens.

``PAPER_EIGHT_QUEENS`` is the section 3 listing, verbatim modulo
whitespace.  :func:`queens_source` generalizes the same shape to any board
size (``n`` parallel ``try`` bindings per recursion level).
"""

from __future__ import annotations

#: The listing from section 3 of the paper.
PAPER_EIGHT_QUEENS = """
main()
  let board = empty_board()
  in show_solutions(do_it(board,1))

do_it(board,queen)
  let h1 = try(board,queen,1)
      h2 = try(board,queen,2)
      h3 = try(board,queen,3)
      h4 = try(board,queen,4)
      h5 = try(board,queen,5)
      h6 = try(board,queen,6)
      h7 = try(board,queen,7)
      h8 = try(board,queen,8)
  in merge(h1,h2,h3,h4,h5,h6,h7,h8)

try(board, queen, location)
  let new_board = add_queen(board,queen,location)
  in if is_valid(new_board)
      then if is_equal(queen,8)
            then new_board
            else do_it(new_board,incr(queen))
      else NULL
"""


def queens_source(n: int = 8) -> str:
    """The paper's program shape for an ``n`` x ``n`` board."""
    if n < 1:
        raise ValueError("board size must be positive")
    bindings = "\n      ".join(
        f"h{i} = try(board,queen,{i})" for i in range(1, n + 1)
    )
    merge_args = ",".join(f"h{i}" for i in range(1, n + 1))
    return f"""
main()
  let board = empty_board()
  in show_solutions(do_it(board,1))

do_it(board,queen)
  let {bindings}
  in merge({merge_args})

try(board, queen, location)
  let new_board = add_queen(board,queen,location)
  in if is_valid(new_board)
      then if is_equal(queen,{n})
            then new_board
            else do_it(new_board,incr(queen))
      else NULL
"""
