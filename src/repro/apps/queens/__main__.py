"""Driver: ``python -m repro.apps.queens [N]``."""

import sys

from . import solve, solve_sequential


def main() -> int:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    solutions = solve(n)
    assert solutions == solve_sequential(n)
    print(f"{n}-queens: {len(solutions)} solution(s)")
    for sol in solutions[:5]:
        print("  ", sol)
    if len(solutions) > 5:
        print(f"   ... and {len(solutions) - 5} more")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
