"""Operators for the parallel N-queens case study (section 3).

The paper: "A straight-forward implementation of the operators for this
example involves roughly 100 lines of C."  This is the Python equivalent.
A board is a list of column positions, one per already-placed queen; a
complete board of length N is a solution.  ``add_queen`` declares that it
destructively modifies the board — the runtime's reference counting turns
the eight parallel ``try`` calls on one shared board into seven
copy-on-writes plus (at most) one in-place append, which is precisely the
coordination-model behaviour the example demonstrates.

``merge`` here shadows the builtin: it understands the two shapes flowing
up the recursion — a complete *board* (a solution, normalized to a tuple)
and a *list of solutions* from a deeper ``do_it`` — and drops the NULLs of
failed tries.
"""

from __future__ import annotations

from ...runtime.operators import OperatorRegistry, default_registry
from ...runtime.values import NULL


def _is_board(value: object) -> bool:
    return (
        isinstance(value, list)
        and len(value) > 0
        and all(isinstance(x, int) for x in value)
    )


def make_registry(n: int = 8) -> OperatorRegistry:
    """Build the queens operator registry for board size ``n``.

    Costs model a 1990s C implementation: validity checking scans placed
    queens (O(len)); everything else is constant and small.  The costs
    only matter on the simulated machines.
    """
    reg = default_registry()
    local = OperatorRegistry()

    @local.register(name="empty_board", cost=5.0)
    def empty_board():
        return []

    @local.register(name="add_queen", modifies=(0,), cost=10.0)
    def add_queen(board, queen, location):
        assert len(board) == queen - 1, "queens must be placed in order"
        board.append(location)
        return board

    @local.register(name="is_valid", pure=True, cost=lambda b: 5.0 + 4.0 * len(b))
    def is_valid(board):
        q = len(board) - 1
        loc = board[q]
        for i in range(q):
            if board[i] == loc or abs(board[i] - loc) == abs(i - q):
                return 0
        return 1

    @local.register(name="merge", cost=lambda *hs: 5.0 + len(hs), pure=True)
    def merge(*hypotheses):
        out = []
        for h in hypotheses:
            if h is NULL:
                continue
            if _is_board(h):
                out.append(tuple(h))
            elif isinstance(h, list):
                out.extend(h)
            else:  # pragma: no cover - nothing else flows here
                raise TypeError(f"merge cannot handle {type(h).__name__}")
        return out

    @local.register(name="show_solutions", cost=20.0)
    def show_solutions(solutions):
        return sorted(solutions)

    return reg.merged_with(local)
