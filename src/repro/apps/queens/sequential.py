"""Sequential N-queens baseline (ordinary Python backtracking).

The "original sequential version" every speedup is normalized against,
and the independent oracle the Delirium version is tested against.
"""

from __future__ import annotations


def solve_sequential(n: int = 8) -> list[tuple[int, ...]]:
    """All solutions, as sorted tuples of 1-based column positions."""
    solutions: list[tuple[int, ...]] = []
    board: list[int] = []

    def valid(location: int) -> bool:
        q = len(board)
        for i, placed in enumerate(board):
            if placed == location or abs(placed - location) == q - i:
                return False
        return True

    def place(queen: int) -> None:
        if queen > n:
            solutions.append(tuple(board))
            return
        for location in range(1, n + 1):
            if valid(location):
                board.append(location)
                place(queen + 1)
                board.pop()

    place(1)
    return sorted(solutions)


#: Known solution counts, for tests (OEIS A000170).
SOLUTION_COUNTS = {1: 1, 2: 0, 3: 0, 4: 2, 5: 10, 6: 4, 7: 40, 8: 92}
