"""Monte-Carlo kernels: the scientific workload of section 2.

The paper motivates coordination languages with "the majority of
scientific applications, from Monte-Carlo simulations [28], to protein
folding" — vectorizable sub-computations embedded in a parallel frame.
Two classic estimators, both NumPy-vectorized:

* **dartboard π** — fraction of uniform points inside the unit circle;
* **European call option** — mean discounted payoff of a geometric
  Brownian motion (Black-Scholes world), whose closed form provides an
  independent accuracy oracle.

Parallel determinism is the interesting part: each batch derives its
random stream from ``(seed, batch_index)`` — a counter-based scheme — so
the estimate is bit-identical no matter how batches are scheduled, which
processor runs them, or how the reduction tree is shaped (the prelude's
``par_reduce`` associates by index range, never by completion order).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


def batch_rng(seed: int, batch_index: int) -> np.random.Generator:
    """The per-batch stream: independent of scheduling by construction."""
    return np.random.default_rng(
        np.random.SeedSequence(entropy=seed, spawn_key=(batch_index,))
    )


# ---------------------------------------------------------------------------
# Dartboard pi
# ---------------------------------------------------------------------------

# Optional numba tier for the hit counter.  The jitted loop computes
# ``x*x + y*y`` per sample — the same multiply-add contraction einsum
# performs — so it is bit-identical to the NumPy path.  Resolution is
# lazy and sticky: one failed import (or jit failure) disables the tier
# for the process, and the NumPy counter serves every later call.
_NUMBA_COUNT_HITS = None
_NUMBA_TRIED = False


def _numba_count_hits():
    global _NUMBA_COUNT_HITS, _NUMBA_TRIED
    if not _NUMBA_TRIED:
        _NUMBA_TRIED = True
        try:
            import numba

            @numba.njit(cache=False)
            def count_hits(xy):  # pragma: no cover - needs delirium[jit]
                hits = 0
                for i in range(xy.shape[0]):
                    if xy[i, 0] * xy[i, 0] + xy[i, 1] * xy[i, 1] <= 1.0:
                        hits += 1
                return hits

            count_hits(np.zeros((1, 2)))  # force compilation once, here
            _NUMBA_COUNT_HITS = count_hits
        except Exception:
            _NUMBA_COUNT_HITS = None
    return _NUMBA_COUNT_HITS


def _count_hits(xy: np.ndarray) -> int:
    counter = _numba_count_hits()
    if counter is not None:  # pragma: no cover - needs delirium[jit]
        return int(counter(xy))
    # x*x + y*y on the column views is the same multiply-add, in the
    # same order, as the ``ij,ij->i`` einsum contraction (bit-identical
    # float64), and roughly 2x faster on strided 2-column input.
    x, y = xy[:, 0], xy[:, 1]
    return int(np.count_nonzero(x * x + y * y <= 1.0))


def pi_batch(seed: int, batch_index: int, batch_size: int) -> tuple[int, int]:
    """(hits inside the quarter circle, samples) for one batch."""
    rng = batch_rng(seed, batch_index)
    xy = rng.random((batch_size, 2))
    return _count_hits(xy), batch_size


#: Stacked working-set bound for :func:`pi_batch_many`.  Above this the
#: stacked contraction loses to the per-batch loop: each 3.2 MB batch
#: stays cache-warm between generation and reduction, while a stacked
#: ``(n, batch_size, 2)`` array is generated cold, copied once more by
#: ``np.stack``, and reduced cold (measured ~2.5× slower at 16×200k).
_STACK_BYTES_MAX = 4 << 20


def pi_batch_many(
    seed: int, batch_indices: list[int], batch_size: int
) -> list[tuple[int, int]]:
    """N firings of :func:`pi_batch` in one call — the batch form.

    Small batches stack into one NumPy contraction (``nij,nij->ni``
    reduces the same ``j`` axis with the same pairwise multiply-add as
    the per-batch ``ij,ij->i`` form); large batches run the per-batch
    kernel in a loop, which keeps each batch cache-warm.  Either way the
    per-batch counter-based streams make the results bit-identical to N
    scalar :func:`pi_batch` calls — the batching win for large batches
    is in the coordination layer (one scheduled group, one IPC message),
    not the kernel.
    """
    n = len(batch_indices)
    if 0 < n * batch_size * 16 <= _STACK_BYTES_MAX:
        xys = np.stack(
            [batch_rng(seed, b).random((batch_size, 2)) for b in batch_indices]
        )
        sq = np.einsum("nij,nij->ni", xys, xys)
        hits = (sq <= 1.0).sum(axis=1)
        return [(int(h), batch_size) for h in hits]
    return [pi_batch(seed, b, batch_size) for b in batch_indices]


def pi_estimate(hits: int, samples: int) -> float:
    return 4.0 * hits / samples if samples else 0.0


# ---------------------------------------------------------------------------
# European call option (geometric Brownian motion)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class OptionSpec:
    """Black-Scholes parameters for a European call."""

    spot: float = 100.0
    strike: float = 105.0
    rate: float = 0.03
    volatility: float = 0.2
    maturity: float = 1.0

    def closed_form(self) -> float:
        """Black-Scholes price — the accuracy oracle."""
        s, k, r, v, t = (
            self.spot,
            self.strike,
            self.rate,
            self.volatility,
            self.maturity,
        )
        d1 = (math.log(s / k) + (r + v * v / 2) * t) / (v * math.sqrt(t))
        d2 = d1 - v * math.sqrt(t)
        phi = lambda x: 0.5 * (1.0 + math.erf(x / math.sqrt(2)))  # noqa: E731
        return s * phi(d1) - k * math.exp(-r * t) * phi(d2)


def option_batch(
    spec: OptionSpec, seed: int, batch_index: int, batch_size: int
) -> tuple[float, int]:
    """(sum of discounted payoffs, samples) for one batch."""
    rng = batch_rng(seed, batch_index)
    z = rng.standard_normal(batch_size)
    drift = (spec.rate - 0.5 * spec.volatility**2) * spec.maturity
    diffusion = spec.volatility * math.sqrt(spec.maturity) * z
    terminal = spec.spot * np.exp(drift + diffusion)
    payoff = np.maximum(terminal - spec.strike, 0.0)
    discounted = math.exp(-spec.rate * spec.maturity) * payoff
    return float(discounted.sum()), batch_size


# ---------------------------------------------------------------------------
# Sequential oracles
# ---------------------------------------------------------------------------


def _balanced_reduce(leaf, lo: int, hi: int):
    """Combine (sum, count) pairs over a balanced tree on [lo, hi).

    This mirrors the prelude's ``par_reduce`` association exactly, so the
    oracles are *bit-identical* to the Delirium programs.  A left-to-right
    fold would differ in the last float bits — both are deterministic, but
    determinism is per-association-tree, and the coordination framework
    fixes the tree by index range.
    """
    if hi - lo == 1:
        return leaf(lo)
    mid = (lo + hi) // 2
    a = _balanced_reduce(leaf, lo, mid)
    b = _balanced_reduce(leaf, mid, hi)
    return (a[0] + b[0], a[1] + b[1])


def pi_sequential(seed: int, n_batches: int, batch_size: int) -> float:
    hits, samples = _balanced_reduce(
        lambda b: pi_batch(seed, b, batch_size), 0, n_batches
    )
    return pi_estimate(hits, samples)


def option_sequential(
    spec: OptionSpec, seed: int, n_batches: int, batch_size: int
) -> float:
    total, samples = _balanced_reduce(
        lambda b: option_batch(spec, seed, b, batch_size), 0, n_batches
    )
    return total / samples
