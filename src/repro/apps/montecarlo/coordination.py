"""Delirium coordination for the Monte-Carlo estimators.

Both estimators use the section 9.2 prelude: the batch count is a value,
so the fan-out follows the data, and ``par_reduce``'s balanced tree keeps
floating-point accumulation schedule-independent.  Batch results travel
as ``<sum, count>`` packages combined by ``mc_combine``.
"""

from __future__ import annotations

from ...compiler import CompiledProgram, compile_source
from ...runtime.operators import OperatorRegistry, default_registry
from . import model
from .model import OptionSpec

PI_PROGRAM = """
main(n_batches)
  mc_pi(par_reduce(mc_combine, pi_batch, 0, n_batches))
"""

OPTION_PROGRAM = """
main(n_batches)
  mc_mean(par_reduce(mc_combine, option_batch, 0, n_batches))
"""


def make_registry(
    seed: int = 2026,
    batch_size: int = 4096,
    spec: OptionSpec | None = None,
    ticks_per_sample: float = 30.0,
) -> OperatorRegistry:
    """Monte-Carlo operators; batch cost scales with the batch size."""
    option = spec or OptionSpec()
    reg = default_registry()
    local = OperatorRegistry()
    batch_cost = float(batch_size) * ticks_per_sample

    @local.register(
        name="pi_batch",
        pure=True,
        cost=batch_cost,
        batch=lambda calls: model.pi_batch_many(
            seed, [c[0] for c in calls], batch_size
        ),
    )
    def pi_batch(batch_index: int):
        return model.pi_batch(seed, batch_index, batch_size)

    @local.register(name="option_batch", pure=True, cost=batch_cost)
    def option_batch(batch_index: int):
        return model.option_batch(option, seed, batch_index, batch_size)

    @local.register(name="mc_combine", pure=True, cost=5.0)
    def mc_combine(a, b):
        return (a[0] + b[0], a[1] + b[1])

    @local.register(name="mc_pi", pure=True, cost=5.0)
    def mc_pi(acc):
        return model.pi_estimate(acc[0], acc[1])

    @local.register(name="mc_mean", pure=True, cost=5.0)
    def mc_mean(acc):
        return acc[0] / acc[1]

    return reg.merged_with(local)


def compile_pi(
    seed: int = 2026, batch_size: int = 4096, **kwargs
) -> CompiledProgram:
    """The dartboard-π estimator.

    Extra keyword arguments go to :func:`repro.compile_source` — e.g.
    ``optimize_passes=PASS_ORDER + ("fuse", "codegen")`` for the lowered
    configurations the codegen benchmarks compare.
    """
    return compile_source(
        PI_PROGRAM,
        registry=make_registry(seed=seed, batch_size=batch_size),
        prelude=True,
        **kwargs,
    )


def compile_option(
    spec: OptionSpec | None = None,
    seed: int = 2026,
    batch_size: int = 4096,
    **kwargs,
) -> CompiledProgram:
    """The European-call pricer.  Extra kwargs go to ``compile_source``."""
    return compile_source(
        OPTION_PROGRAM,
        registry=make_registry(seed=seed, batch_size=batch_size, spec=spec),
        prelude=True,
        **kwargs,
    )
