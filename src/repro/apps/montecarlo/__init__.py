"""Monte-Carlo simulation (the section 2 scientific workload)."""

from .coordination import (
    OPTION_PROGRAM,
    PI_PROGRAM,
    compile_option,
    compile_pi,
    make_registry,
)
from .model import (
    OptionSpec,
    batch_rng,
    option_batch,
    option_sequential,
    pi_batch,
    pi_estimate,
    pi_sequential,
)

__all__ = [
    "OPTION_PROGRAM",
    "OptionSpec",
    "PI_PROGRAM",
    "batch_rng",
    "compile_option",
    "compile_pi",
    "make_registry",
    "option_batch",
    "option_sequential",
    "pi_batch",
    "pi_estimate",
    "pi_sequential",
]
