"""Reproduction of Lucco & Sharp, *Delirium: An Embedding Coordination
Language* (SC 1990).

Delirium is an *embedding* coordination language: sequential operators
(Python callables here, C/Fortran in the original) are embedded inside a
compact single-assignment functional coordination framework.  This package
provides the language, the Pythia optimizing compiler, a template-activation
runtime with copy-on-write data blocks, real sequential/threaded executors,
discrete-event simulated multiprocessors (Cray Y-MP, Cray-2, Sequent
Symmetry, BBN Butterfly), and the paper's case studies.

Quickstart::

    from repro import compile_source, default_registry

    reg = default_registry()

    @reg.register(pure=True, cost=1000.0)
    def square(x):
        return x * x

    program = compile_source(
        '''
        main(n)
          let a = square(n)
              b = square(incr(n))
          in add(a, b)
        ''',
        registry=reg,
    )
    print(program.run(args=(3,)).value)   # 25
"""

from .compiler import (
    CompiledProgram,
    compile_file,
    compile_source,
    run_source,
)
from .errors import (
    ArityError,
    CompileError,
    DeliriumError,
    GraphError,
    LexError,
    MachineError,
    OperatorError,
    ParseError,
    PreprocessorError,
    RuntimeFailure,
    SingleAssignmentError,
    UnboundNameError,
    UnknownOperatorError,
)
from .graph import GraphProgram, Template
from .graph.serialize import load as load_graph
from .graph.serialize import save as save_graph
from .graph.validate import validate_program
from .graph.viz import ascii_framework, to_dot, to_networkx
from .lang.prelude import PRELUDE_SOURCE
from .machine import (
    MachineModel,
    SimResult,
    SimulatedExecutor,
    butterfly,
    cray_2,
    cray_ymp,
    sequent,
    speedup_curve,
    uniform,
)
from .obs import (
    ChromeTraceCollector,
    EventBus,
    MetricsRegistry,
    attach_metrics,
    observe_blocks,
)
from .runtime import (
    NULL,
    OperatorRegistry,
    OperatorSpec,
    ProcessExecutor,
    RegistryRef,
    RunResult,
    SequentialExecutor,
    ThreadedExecutor,
    builtin_registry,
    default_registry,
)
from .tools import gantt, load_balance_summary, node_timing_report, pass_table

__version__ = "1.0.0"

__all__ = [
    "ArityError",
    "ChromeTraceCollector",
    "CompileError",
    "CompiledProgram",
    "DeliriumError",
    "EventBus",
    "GraphError",
    "GraphProgram",
    "LexError",
    "MachineError",
    "MachineModel",
    "MetricsRegistry",
    "NULL",
    "PRELUDE_SOURCE",
    "OperatorError",
    "OperatorRegistry",
    "OperatorSpec",
    "ParseError",
    "PreprocessorError",
    "RunResult",
    "RuntimeFailure",
    "ProcessExecutor",
    "RegistryRef",
    "SequentialExecutor",
    "SimResult",
    "SimulatedExecutor",
    "SingleAssignmentError",
    "Template",
    "ThreadedExecutor",
    "UnboundNameError",
    "UnknownOperatorError",
    "ascii_framework",
    "attach_metrics",
    "builtin_registry",
    "butterfly",
    "compile_file",
    "compile_source",
    "cray_2",
    "cray_ymp",
    "default_registry",
    "gantt",
    "load_balance_summary",
    "load_graph",
    "save_graph",
    "node_timing_report",
    "observe_blocks",
    "pass_table",
    "run_source",
    "sequent",
    "speedup_curve",
    "to_dot",
    "to_networkx",
    "uniform",
    "validate_program",
]
