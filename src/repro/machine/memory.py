"""Memory and traffic accounting for the simulated machines.

Supports two of the paper's quantitative claims:

* **Section 7**: "templates represent over 80% of the memory used by the
  runtime system at a given time", so replicating them per processor cuts
  bus/network traffic — :class:`MemoryInventory` measures the split and
  :class:`TrafficAccount` measures the traffic with replication on or off.
* **Section 9.3**: remote references on NUMA machines dominate; the
  traffic account separates local from remote bytes so the affinity
  benchmark can show how placement policy moves the ratio.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..graph.ir import GraphProgram, Template

#: Rough per-object byte charges, matching GraphProgram.memory_bytes.
NODE_BYTES = 64
EDGE_BYTES = 16
SLOT_BYTES = 16
ACTIVATION_HEADER_BYTES = 64


def template_bytes(template: Template) -> int:
    """Static size of one template."""
    edges = sum(len(node.inputs) for node in template.nodes)
    return len(template.nodes) * NODE_BYTES + edges * EDGE_BYTES


def activation_bytes(template: Template) -> int:
    """Size of one activation of ``template`` (buffers + header)."""
    slots = sum(len(node.inputs) for node in template.nodes)
    return ACTIVATION_HEADER_BYTES + slots * SLOT_BYTES


@dataclass
class MemoryInventory:
    """Snapshot of runtime memory: templates vs. activations.

    ``replicated`` scales template memory by the processor count, which is
    the trade section 7 describes: spend memory on copies, save traffic.
    """

    template_total: int = 0
    peak_activation_total: int = 0
    processors: int = 1
    replicated: bool = True

    @property
    def template_bytes_effective(self) -> int:
        factor = self.processors if self.replicated else 1
        return self.template_total * factor

    @property
    def template_fraction(self) -> float:
        """Fraction of peak runtime memory occupied by templates."""
        total = self.template_bytes_effective + self.peak_activation_total
        if total == 0:
            return 0.0
        return self.template_bytes_effective / total

    def describe(self) -> str:
        return (
            f"templates: {self.template_bytes_effective} B "
            f"({'replicated x' + str(self.processors) if self.replicated else 'single copy'}), "
            f"peak activations: {self.peak_activation_total} B, "
            f"template fraction: {self.template_fraction:.1%}"
        )


def inventory(
    graph: GraphProgram,
    peak_live_by_template: dict[str, int],
    processors: int,
    replicated: bool = True,
) -> MemoryInventory:
    """Build a memory inventory from a run's peak activation counts."""
    inv = MemoryInventory(processors=processors, replicated=replicated)
    inv.template_total = sum(
        template_bytes(t) for t in graph.templates.values()
    )
    inv.peak_activation_total = sum(
        count * activation_bytes(graph.templates[name])
        for name, count in peak_live_by_template.items()
        if name in graph.templates
    )
    return inv


@dataclass
class TrafficAccount:
    """Bytes moved across the interconnect during a simulated run."""

    local_bytes: int = 0
    remote_bytes: int = 0
    template_fetch_bytes: int = 0
    #: Ticks tasks spent queued behind a saturated shared bus (only
    #: accumulates when the machine models finite bus bandwidth).
    bus_wait_ticks: float = 0.0
    #: Per-processor byte counters (diagnostics / balance checks).
    per_processor_remote: dict[int, int] = field(default_factory=dict)

    def charge_data(self, nbytes: int, remote: bool, processor: int) -> None:
        if remote:
            self.remote_bytes += nbytes
            self.per_processor_remote[processor] = (
                self.per_processor_remote.get(processor, 0) + nbytes
            )
        else:
            self.local_bytes += nbytes

    def charge_template(self, nbytes: int) -> None:
        self.template_fetch_bytes += nbytes

    @property
    def interconnect_bytes(self) -> int:
        """Traffic that crosses the shared bus/network."""
        return self.remote_bytes + self.template_fetch_bytes

    def describe(self) -> str:
        return (
            f"local: {self.local_bytes} B, remote: {self.remote_bytes} B, "
            f"template fetches: {self.template_fetch_bytes} B"
        )
