"""Discrete-event simulation of coordination-graph execution.

:class:`SimulatedExecutor` runs a compiled program on a
:class:`~repro.machine.model.MachineModel`: operators execute for real (so
results are exact), but *time* is simulated ticks charged from operator
cost hints, machine overheads, and memory-system penalties.  The schedule
is greedy list scheduling — whenever a processor is idle and a task is
ready, the highest-priority ready task starts immediately — which matches
the paper's runtime ("whenever an operator has all its inputs, it is put
in the ready queue") and carries Graham's bound:
``makespan <= work/P + critical_path``, tested as a property.

Why simulate?  The evaluation hardware (Cray Y-MP, Sequent, Butterfly) no
longer exists, and on a GIL-bound single-CPU host real threads cannot show
4-way speedups; the curves the paper reports are functions of the graph,
the costs, and P — exactly what the simulator reproduces, deterministically
and fast.  Functional (non-performance) parity with real concurrency is
demonstrated separately by :class:`~repro.runtime.executors.ThreadedExecutor`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any

from ..errors import MachineError, RuntimeFailure
from ..graph.ir import GraphProgram, Node, NodeKind
from ..obs.events import EventBus, TaskFired
from ..runtime.affinity import AffinityPolicy, make_policy
from ..runtime.blocks import DataBlock
from ..runtime.engine import EngineStats, ExecutionState
from ..runtime.executors import resolve_bus
from ..runtime.operators import OperatorRegistry, default_registry, node_spec
from ..runtime.scheduler import ReadyQueue, Task
from ..runtime.tracing import Tracer
from ..runtime.values import Closure, MultiValue, OperatorValue
from .memory import MemoryInventory, TrafficAccount, inventory, template_bytes
from .model import MachineModel


@dataclass
class SimResult:
    """Outcome of one simulated execution."""

    value: Any
    stats: EngineStats
    tracer: Tracer | None
    machine: MachineModel
    #: Makespan: simulated completion time of the whole program.
    ticks: float
    #: Busy (non-idle) ticks per processor, dispatch overhead included.
    busy_ticks: list[float] = field(default_factory=list)
    #: Total scheduler overhead charged (sum over tasks of dispatch cost).
    dispatch_ticks_total: float = 0.0
    #: Pure compute ticks (operator + node costs, no dispatch, no memory).
    compute_ticks_total: float = 0.0
    traffic: TrafficAccount = field(default_factory=TrafficAccount)
    memory: MemoryInventory = field(default_factory=MemoryInventory)

    @property
    def processors(self) -> int:
        return self.machine.processors

    def utilization(self) -> float:
        """Mean fraction of the makespan each processor was busy."""
        if self.ticks <= 0:
            return 1.0
        return sum(self.busy_ticks) / (self.ticks * self.processors)

    def overhead_fraction(self) -> float:
        """Scheduler overhead relative to total busy time (section 7)."""
        busy = sum(self.busy_ticks)
        if busy <= 0:
            return 0.0
        return self.dispatch_ticks_total / busy

    def describe(self) -> str:
        return (
            f"{self.machine.name} P={self.processors}: {self.ticks:.0f} ticks, "
            f"utilization {self.utilization():.1%}, "
            f"overhead {self.overhead_fraction():.2%}"
        )


class SimulatedExecutor:
    """Execute a coordination graph on a simulated multiprocessor.

    Parameters
    ----------
    machine:
        The machine model (processor count, overheads, NUMA costs).
    affinity:
        Placement policy: ``"none"`` (default), ``"operator"``, ``"data"``,
        or an :class:`~repro.runtime.affinity.AffinityPolicy` instance.
    op_cost_overrides:
        Per-operator cost overrides (name -> ticks or callable over the
        raw payloads), taking precedence over the specs' cost hints.
        Benchmarks use this to model workload variants without touching
        the registries.
    use_priorities / seed / check_purity / trace:
        As in :class:`~repro.runtime.executors.SequentialExecutor`;
        tracing records per-node tick timings (the paper's node-timing
        tool).
    bus:
        Optional :class:`~repro.obs.events.EventBus`.  Events are
        stamped in simulated ticks; each task dispatch emits a
        :class:`~repro.obs.events.TaskFired` span carrying its processor,
        which the Chrome trace exporter renders as one Perfetto track per
        simulated processor.
    """

    def __init__(
        self,
        machine: MachineModel,
        affinity: "str | AffinityPolicy" = "none",
        op_cost_overrides: dict[str, Any] | None = None,
        use_priorities: bool = True,
        seed: int | None = None,
        check_purity: bool = False,
        trace: bool = False,
        bus: EventBus | None = None,
    ) -> None:
        self.machine = machine
        self.affinity_spec = affinity
        self.op_cost_overrides = dict(op_cost_overrides or {})
        self.use_priorities = use_priorities
        self.seed = seed
        self.check_purity = check_purity
        self.trace = trace
        self.bus = bus
        self._fused_specs: dict[str, Any] = {}

    # ------------------------------------------------------------------
    def _op_cost(self, name: str, spec: Any, args: tuple[Any, ...]) -> float:
        override = self.op_cost_overrides.get(name)
        if override is not None:
            return float(override(*args)) if callable(override) else float(override)
        hinted = spec.cost_ticks(args)
        if hinted is not None:
            return hinted
        return self.machine.default_op_ticks

    def _payloads(self, values: list[Any]) -> tuple[Any, ...]:
        out = []
        for v in values:
            if isinstance(v, DataBlock):
                out.append(v.payload)
            elif isinstance(v, MultiValue):
                out.append(tuple(self._payloads(list(v.items))))
            else:
                out.append(v)
        return tuple(out)

    def _base_cost(
        self, task: Task, registry: OperatorRegistry, graph: GraphProgram
    ) -> tuple[float, float]:
        """(compute ticks, template-fetch bytes) for a ready task."""
        node: Node = task.activation.template.nodes[task.node_id]
        machine = self.machine
        fetch_bytes = 0.0
        if node.kind is NodeKind.OP:
            spec = node_spec(registry, node, self._fused_specs)
            args = self._payloads(task.activation.slots[task.node_id])
            return self._op_cost(node.name, spec, args), 0.0
        if node.kind is NodeKind.CALL:
            slots = task.activation.slots[task.node_id]
            callee = slots[0]
            if isinstance(callee, OperatorValue):
                spec = registry.get(callee.name)
                args = self._payloads(slots[1:])
                return self._op_cost(callee.name, spec, args), 0.0
            if not machine.replicate_templates and isinstance(callee, Closure):
                fetch_bytes = float(template_bytes(callee.template))
            return machine.activation_ticks, fetch_bytes
        if node.kind is NodeKind.IF:
            if not machine.replicate_templates:
                fetch_bytes = float(
                    template_bytes(graph.template(node.then_template))
                )
            return machine.activation_ticks, fetch_bytes
        return machine.node_overhead_ticks, 0.0

    def _memory_cost(
        self, task: Task, processor: int, traffic: TrafficAccount
    ) -> tuple[float, float]:
        """(latency penalty, interconnect bytes) for the task's inputs."""
        machine = self.machine
        if machine.remote_ticks_per_byte == 0 and machine.local_ticks_per_byte == 0:
            return 0.0, 0.0
        penalty = 0.0
        moved_bytes = 0.0

        def visit(value: Any) -> None:
            nonlocal penalty, moved_bytes
            if isinstance(value, DataBlock):
                remote = (
                    machine.numa and value.home >= 0 and value.home != processor
                )
                traffic.charge_data(value.nbytes, remote, processor)
                rate = (
                    machine.remote_ticks_per_byte
                    if remote
                    else machine.local_ticks_per_byte
                )
                if rate > 0:
                    penalty += value.nbytes * rate
                    moved_bytes += value.nbytes
            elif isinstance(value, MultiValue):
                for item in value.items:
                    visit(item)

        for value in task.activation.slots[task.node_id]:
            visit(value)
        return penalty, moved_bytes

    # ------------------------------------------------------------------
    def run(
        self,
        program: GraphProgram,
        args: tuple[Any, ...] = (),
        registry: OperatorRegistry | None = None,
    ) -> SimResult:
        registry = registry if registry is not None else default_registry()
        # Per-run cache of composed fused-node specs (cost resolution).
        self._fused_specs = {}
        machine = self.machine
        bus, tracer = resolve_bus(self.bus, self.trace)
        if bus is not None:
            bus.set_time(0.0)
        state = ExecutionState(
            program, registry, check_purity=self.check_purity, bus=bus
        )
        ready = ReadyQueue(self.use_priorities, self.seed, bus=bus)
        policy = make_policy(self.affinity_spec)
        traffic = TrafficAccount()

        n_procs = machine.processors
        idle: set[int] = set(range(n_procs))
        busy_ticks = [0.0] * n_procs
        dispatch_total = 0.0
        compute_total = 0.0
        bus_free_at = 0.0
        #: (finish_time, event_seq, processor, task)
        events: list[tuple[float, int, int, Task]] = []
        event_seq = 0
        now = 0.0

        ready.push_all(state.start(args))

        def dispatch() -> None:
            nonlocal event_seq, dispatch_total, compute_total, bus_free_at
            while ready and idle:
                task = ready.pop()
                processor = policy.choose(task, idle)
                if processor not in idle:
                    raise MachineError(
                        f"affinity policy {policy.name!r} chose a busy "
                        f"processor {processor}"
                    )
                idle.discard(processor)
                policy.notify(task, processor)
                compute, fetch_bytes = self._base_cost(task, registry, program)
                latency, moved_bytes = self._memory_cost(task, processor, traffic)
                if fetch_bytes:
                    traffic.charge_template(int(fetch_bytes))
                    latency += fetch_bytes * machine.template_fetch_ticks_per_byte
                    moved_bytes += fetch_bytes
                if machine.bus_bytes_per_tick > 0 and moved_bytes > 0:
                    # Finite-bandwidth mode: all interconnect traffic
                    # serializes through one bus.  The task pays queueing
                    # delay plus its transfer time; this *replaces* the
                    # per-byte latency charge (same bytes, one bill).
                    transfer = moved_bytes / machine.bus_bytes_per_tick
                    start = max(now, bus_free_at)
                    bus_free_at = start + transfer
                    wait = start - now
                    traffic.bus_wait_ticks += wait
                    memory = wait + transfer
                else:
                    memory = latency
                duration = machine.dispatch_ticks + compute + memory
                dispatch_total += machine.dispatch_ticks
                compute_total += compute
                busy_ticks[processor] += duration
                if bus is not None:
                    act = task.activation
                    node = act.template.nodes[task.node_id]
                    bus.emit(
                        TaskFired(
                            now,
                            node.label,
                            node.kind.value,
                            task.priority,
                            act.template.name,
                            act.aid,
                            task.node_id,
                            task.seq,
                            duration,
                            processor,
                        )
                    )
                event_seq += 1
                heapq.heappush(
                    events, (now + duration, event_seq, processor, task)
                )

        dispatch()
        while events:
            finish, _, processor, task = heapq.heappop(events)
            now = finish
            if bus is not None:
                bus.set_time(now)
            ready.push_all(state.fire(task, home=processor))
            idle.add(processor)
            dispatch()

        if ready:
            raise MachineError("simulation ended with ready tasks unplaced")
        if not state.finished:
            raise RuntimeFailure(
                "execution stalled: ready queue drained without producing a "
                "result (ill-formed graph?)\n" + state.stall_report()
            )

        mem = inventory(
            program,
            state.pool.peak_by_template,
            processors=n_procs,
            replicated=machine.replicate_templates,
        )
        return SimResult(
            value=state.result(),
            stats=state.snapshot_stats(),
            tracer=tracer,
            machine=machine,
            ticks=now,
            busy_ticks=busy_ticks,
            dispatch_ticks_total=dispatch_total,
            compute_ticks_total=compute_total,
            traffic=traffic,
            memory=mem,
        )


def speedup_curve(
    program: GraphProgram,
    machine: MachineModel,
    processor_counts: list[int],
    args: tuple[Any, ...] = (),
    registry: OperatorRegistry | None = None,
    **executor_kwargs: Any,
) -> dict[int, float]:
    """Speedup over P=1 for each processor count (figure-1 style sweeps).

    Speedup is measured against the same machine with one processor — the
    paper likewise normalizes to "the original sequential version".
    """
    baseline = SimulatedExecutor(
        machine.with_processors(1), **executor_kwargs
    ).run(program, args=args, registry=registry)
    curve: dict[int, float] = {}
    for p in processor_counts:
        if p == 1:
            curve[1] = 1.0
            continue
        result = SimulatedExecutor(
            machine.with_processors(p), **executor_kwargs
        ).run(program, args=args, registry=registry)
        curve[p] = baseline.ticks / result.ticks
    return curve
