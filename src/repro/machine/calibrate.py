"""Cost-model calibration from measured operator times.

The paper's environment measured real per-node times on real machines;
this module closes the loop for the simulator: run a program once on the
sequential executor with wall-clock node timing, and derive per-operator
cost overrides (ticks) from the measurements.  Useful when operators have
no analytic cost hints — the simulated speedup curves then reflect the
*actual* relative costs of the Python kernels.

Example::

    costs = measure_costs(program.graph, registry, args=(8,))
    result = SimulatedExecutor(cray_ymp(4), op_cost_overrides=costs).run(
        program.graph, args=(8,), registry=registry)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..graph.ir import GraphProgram
from ..runtime.executors import SequentialExecutor
from ..runtime.operators import OperatorRegistry, default_registry

#: Default scale: one second of wall time = this many simulated ticks.
DEFAULT_TICKS_PER_SECOND = 1e9


@dataclass
class CalibrationReport:
    """Measured per-operator statistics and the derived cost table."""

    #: operator label -> mean measured ticks per call
    costs: dict[str, float] = field(default_factory=dict)
    #: operator label -> number of calls observed
    calls: dict[str, int] = field(default_factory=dict)
    #: total wall seconds of the calibration run
    wall_seconds: float = 0.0
    ticks_per_second: float = DEFAULT_TICKS_PER_SECOND

    def dominant(self, k: int = 5) -> list[tuple[str, float]]:
        """The k most expensive operators by total measured time."""
        totals = {
            name: self.costs[name] * self.calls[name] for name in self.costs
        }
        return sorted(totals.items(), key=lambda kv: -kv[1])[:k]


def measure_costs(
    graph: GraphProgram,
    registry: OperatorRegistry | None = None,
    args: tuple[Any, ...] = (),
    ticks_per_second: float = DEFAULT_TICKS_PER_SECOND,
    min_ticks: float = 1.0,
) -> CalibrationReport:
    """Run once with node timing and derive per-operator mean costs.

    The returned report's ``costs`` dict plugs directly into
    ``SimulatedExecutor(op_cost_overrides=...)``.  Means are used (not
    per-call values) so the simulation stays deterministic; operators
    whose cost genuinely varies with arguments should keep analytic
    hints instead.
    """
    registry = registry if registry is not None else default_registry()
    executor = SequentialExecutor(trace=True)
    result = executor.run(graph, args=args, registry=registry)
    assert result.tracer is not None
    report = CalibrationReport(
        wall_seconds=result.wall_seconds, ticks_per_second=ticks_per_second
    )
    totals: dict[str, float] = {}
    counts: dict[str, int] = {}
    for record in result.tracer.op_records():
        totals[record.label] = totals.get(record.label, 0.0) + record.ticks
        counts[record.label] = counts.get(record.label, 0) + 1
    for label, total_seconds in totals.items():
        mean_ticks = total_seconds / counts[label] * ticks_per_second
        report.costs[label] = max(mean_ticks, min_ticks)
        report.calls[label] = counts[label]
    return report
