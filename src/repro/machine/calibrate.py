"""Cost-model calibration from measured operator times.

The paper's environment measured real per-node times on real machines;
this module closes the loop for the simulator: run a program once on the
sequential executor with wall-clock node timing, and derive per-operator
cost overrides (ticks) from the measurements.  Useful when operators have
no analytic cost hints — the simulated speedup curves then reflect the
*actual* relative costs of the Python kernels.

Example::

    costs = measure_costs(program.graph, registry, args=(8,))
    result = SimulatedExecutor(cray_ymp(4), op_cost_overrides=costs).run(
        program.graph, args=(8,), registry=registry)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..graph.ir import GraphProgram, NodeKind
from ..runtime.executors import SequentialExecutor
from ..runtime.operators import OperatorRegistry, default_registry

#: Default scale: one second of wall time = this many simulated ticks.
DEFAULT_TICKS_PER_SECOND = 1e9


@dataclass
class CalibrationReport:
    """Measured per-operator statistics and the derived cost table."""

    #: operator label -> mean measured ticks per call
    costs: dict[str, float] = field(default_factory=dict)
    #: operator label -> number of calls observed
    calls: dict[str, int] = field(default_factory=dict)
    #: total wall seconds of the calibration run
    wall_seconds: float = 0.0
    ticks_per_second: float = DEFAULT_TICKS_PER_SECOND

    def dominant(self, k: int = 5) -> list[tuple[str, float]]:
        """The k most expensive operators by total measured time."""
        totals = {
            name: self.costs[name] * self.calls[name] for name in self.costs
        }
        return sorted(totals.items(), key=lambda kv: -kv[1])[:k]


def measure_costs(
    graph: GraphProgram,
    registry: OperatorRegistry | None = None,
    args: tuple[Any, ...] = (),
    ticks_per_second: float = DEFAULT_TICKS_PER_SECOND,
    min_ticks: float = 1.0,
) -> CalibrationReport:
    """Run once with node timing and derive per-operator mean costs.

    The returned report's ``costs`` dict plugs directly into
    ``SimulatedExecutor(op_cost_overrides=...)``.  Means are used (not
    per-call values) so the simulation stays deterministic; operators
    whose cost genuinely varies with arguments should keep analytic
    hints instead.
    """
    registry = registry if registry is not None else default_registry()
    executor = SequentialExecutor(trace=True)
    result = executor.run(graph, args=args, registry=registry)
    assert result.tracer is not None
    report = CalibrationReport(
        wall_seconds=result.wall_seconds, ticks_per_second=ticks_per_second
    )
    totals: dict[str, float] = {}
    counts: dict[str, int] = {}
    for record in result.tracer.op_records():
        totals[record.label] = totals.get(record.label, 0.0) + record.ticks
        counts[record.label] = counts.get(record.label, 0) + 1
    for label, total_seconds in totals.items():
        mean_ticks = total_seconds / counts[label] * ticks_per_second
        report.costs[label] = max(mean_ticks, min_ticks)
        report.calls[label] = counts[label]
    return report


@dataclass
class DispatchCalibration:
    """Measured per-operator wall costs and the dispatch split they imply.

    ``seconds_by_operator`` plugs directly into
    ``ProcessExecutor(measured_costs=...)`` /
    :class:`~repro.runtime.workers.DispatchPolicy`; ``dispatch`` and
    ``keep_local`` record the resulting policy decision for reporting
    (the wallclock benchmark commits them to ``BENCH_wallclock.json``).
    """

    #: operator *name* (including fused super-operator names) -> mean
    #: measured wall seconds per firing.
    seconds_by_operator: dict[str, float] = field(default_factory=dict)
    #: names whose measured cost clears ``min_dispatch_seconds``.
    dispatch: list[str] = field(default_factory=list)
    #: names cheaper than one IPC round trip — kept in the master.
    keep_local: list[str] = field(default_factory=list)
    min_dispatch_seconds: float = 0.002
    report: CalibrationReport = field(default_factory=CalibrationReport)


def calibrate_dispatch(
    graph: GraphProgram,
    registry: OperatorRegistry | None = None,
    args: tuple[Any, ...] = (),
    min_dispatch_seconds: float = 0.002,
    ticks_per_second: float = DEFAULT_TICKS_PER_SECOND,
    repeats: int = 3,
) -> DispatchCalibration:
    """Measure per-operator wall costs and split them around the IPC bar.

    Built on :func:`measure_costs`, which keys its records by node
    *label*; ordinary operator nodes are labeled with their operator
    name, but a fused super-node's label is the human-readable chain
    (``"a+b+untuple"``) while the spec the dispatch policy sees is named
    by the machine recipe (``"fused:..."``).  This walks the graph's OP
    nodes to map labels back to spec names; when several nodes share a
    name, the *maximum* measured cost wins — the conservative direction
    for a dispatch decision.

    The measurement run repeats ``repeats`` times and each label keeps
    its *minimum* mean: scheduler noise can only inflate a wall-clock
    sample, never deflate it, so best-of-N is the faithful estimate of
    an operator's intrinsic cost (a transient load spike must hit every
    repeat to survive into the dispatch decision).
    """
    report = measure_costs(
        graph, registry, args=args, ticks_per_second=ticks_per_second
    )
    for _ in range(max(0, repeats - 1)):
        again = measure_costs(
            graph, registry, args=args, ticks_per_second=ticks_per_second
        )
        for label, ticks in again.costs.items():
            if label in report.costs:
                report.costs[label] = min(report.costs[label], ticks)
            else:  # pragma: no cover - nondeterministic program shapes
                report.costs[label] = ticks
                report.calls[label] = again.calls[label]
    label_to_name: dict[str, str] = {}
    for template in graph.templates.values():
        for node in template.nodes:
            if node.kind is NodeKind.OP and node.label:
                label_to_name.setdefault(node.label, node.name)
    seconds: dict[str, float] = {}
    for label, mean_ticks in report.costs.items():
        name = label_to_name.get(label, label)
        per_fire = mean_ticks / report.ticks_per_second
        seconds[name] = max(seconds.get(name, 0.0), per_fire)
    return DispatchCalibration(
        seconds_by_operator=seconds,
        dispatch=sorted(
            n for n, s in seconds.items() if s >= min_dispatch_seconds
        ),
        keep_local=sorted(
            n for n, s in seconds.items() if s < min_dispatch_seconds
        ),
        min_dispatch_seconds=min_dispatch_seconds,
        report=report,
    )


def suggest_batch_threshold(
    measured_seconds: dict[str, float] | None,
    min_dispatch_seconds: float = 0.002,
    floor: int = 4,
    ceiling: int = 64,
) -> int:
    """A batch-size cap derived from measured per-operator costs.

    The batched path amortizes one IPC round trip over a whole group, so
    the useful group size is how many firings of the *cheapest dispatched*
    operator fit in one dispatch bar: batching 64 firings of a 2 ms
    operator coalesces 128 ms of work behind one message (fine), but so
    would batching 8 — while 64 firings of a 40 ms operator serializes
    2.5 s on one worker that the scheduler could have spread.  The
    suggestion is ``min_dispatch_seconds / cheapest_cost`` scaled by the
    bar, clamped to ``[floor, ceiling]``; with no measurements it is the
    runtime default (see ``DEFAULT_BATCH_THRESHOLD`` in
    :mod:`repro.runtime.supervise` — defined there, not here, because
    this module imports the runtime and not vice versa).
    """
    from ..runtime.supervise import DEFAULT_BATCH_THRESHOLD

    if not measured_seconds:
        return DEFAULT_BATCH_THRESHOLD
    dispatched = [
        s for s in measured_seconds.values() if s >= min_dispatch_seconds
    ]
    if not dispatched:
        return DEFAULT_BATCH_THRESHOLD
    cheapest = min(dispatched)
    # One batch should cost no more than ~16 dispatch bars of work: cheap
    # operators batch wide, expensive ones stay near-singleton so the
    # scheduler keeps its spreading freedom.
    suggested = int((min_dispatch_seconds / cheapest) * 16)
    return max(floor, min(ceiling, suggested))


# ---------------------------------------------------------------------------
# On-disk persistence
# ---------------------------------------------------------------------------
#
# A calibration run executes the whole program once per repeat on the
# sequential executor — far too expensive to redo on every invocation
# when nothing that determines the measurement has changed.  The
# persisted table is keyed by everything it is a function of: the
# operator registry (names), the program's operator population
# (including fused super-operator recipes), and the machine the numbers
# were taken on.  Any of those changing changes the key, so a stale
# table can never be served; ``--recalibrate`` forces a fresh
# measurement even on a hit.


def machine_fingerprint() -> str:
    """Stable identity of "this machine" for calibration keys.

    Wall-clock operator costs depend on the ISA, the OS, the Python
    build, and (for dispatch decisions) the core count — a table
    measured on one box must not be served on another.
    """
    import os
    import platform

    return "|".join(
        (
            platform.machine(),
            platform.system(),
            platform.python_version(),
            str(os.cpu_count() or 1),
        )
    )


def _calibration_key(
    graph: GraphProgram, registry: OperatorRegistry | None
) -> str:
    import hashlib
    import json

    reg = registry if registry is not None else default_registry()
    ops = sorted(
        {
            node.name
            for template in graph.templates.values()
            for node in template.nodes
            if node.kind is NodeKind.OP
        }
    )
    payload = json.dumps(
        {
            "machine": machine_fingerprint(),
            "ops": ops,
            "registry": sorted(reg.names()),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:40]


def calibration_path(
    graph: GraphProgram, registry: OperatorRegistry | None = None
) -> str:
    """Where this (program, registry, machine) combination persists."""
    import os

    from ..tools.cache import cache_dir

    return os.path.join(
        cache_dir(), "calibration", _calibration_key(graph, registry) + ".json"
    )


def save_dispatch_calibration(
    calibration: DispatchCalibration,
    graph: GraphProgram,
    registry: OperatorRegistry | None = None,
) -> str:
    """Persist measured per-operator seconds; returns the file path.

    Only the measurements are stored — the dispatch/keep-local split is
    a pure function of the seconds and the caller's threshold, so it is
    recomputed on load (a different ``min_dispatch_seconds`` must not be
    answered with a split computed for another one).
    """
    import json
    import os
    import tempfile

    path = calibration_path(graph, registry)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    payload = {
        "machine": machine_fingerprint(),
        "seconds_by_operator": calibration.seconds_by_operator,
        "min_dispatch_seconds": calibration.min_dispatch_seconds,
    }
    fd, tmp = tempfile.mkstemp(
        dir=os.path.dirname(path), prefix=".cal-", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True, indent=1)
        os.replace(tmp, path)  # atomic: readers see old or new, never half
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def load_dispatch_calibration(
    graph: GraphProgram,
    registry: OperatorRegistry | None = None,
    min_dispatch_seconds: float = 0.002,
) -> DispatchCalibration | None:
    """The persisted calibration for this key, or ``None``.

    Any read failure (missing file, truncated write from a crashed
    process, schema drift) degrades to ``None`` — the caller simply
    measures again.  The loaded table's report is empty: raw per-label
    tick records are not persisted, only the derived seconds.
    """
    import json

    try:
        with open(calibration_path(graph, registry), encoding="utf-8") as fh:
            payload = json.load(fh)
        seconds = {
            str(name): float(value)
            for name, value in payload["seconds_by_operator"].items()
        }
    except Exception:
        return None
    return DispatchCalibration(
        seconds_by_operator=seconds,
        dispatch=sorted(
            n for n, s in seconds.items() if s >= min_dispatch_seconds
        ),
        keep_local=sorted(
            n for n, s in seconds.items() if s < min_dispatch_seconds
        ),
        min_dispatch_seconds=min_dispatch_seconds,
    )


def calibrate_dispatch_cached(
    graph: GraphProgram,
    registry: OperatorRegistry | None = None,
    args: tuple[Any, ...] = (),
    min_dispatch_seconds: float = 0.002,
    ticks_per_second: float = DEFAULT_TICKS_PER_SECOND,
    repeats: int = 3,
    force: bool = False,
) -> DispatchCalibration:
    """:func:`calibrate_dispatch` behind the on-disk table.

    ``force=True`` (the CLI's ``--recalibrate``) skips the lookup,
    measures fresh, and overwrites the stored table.  A cache hit costs
    one small JSON read instead of ``repeats`` traced program runs.
    """
    if not force:
        cached = load_dispatch_calibration(
            graph, registry, min_dispatch_seconds=min_dispatch_seconds
        )
        if cached is not None:
            return cached
    calibration = calibrate_dispatch(
        graph,
        registry,
        args=args,
        min_dispatch_seconds=min_dispatch_seconds,
        ticks_per_second=ticks_per_second,
        repeats=repeats,
    )
    save_dispatch_calibration(calibration, graph, registry)
    return calibration
