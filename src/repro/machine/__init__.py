"""Simulated multiprocessor substrate: machine models + discrete-event sim."""

from .memory import MemoryInventory, TrafficAccount, inventory
from .model import (
    PRESETS,
    MachineModel,
    butterfly,
    cray_2,
    cray_ymp,
    sequent,
    uniform,
    workstation,
)
from .simulator import SimResult, SimulatedExecutor, speedup_curve

__all__ = [
    "PRESETS",
    "MachineModel",
    "MemoryInventory",
    "SimResult",
    "SimulatedExecutor",
    "TrafficAccount",
    "butterfly",
    "cray_2",
    "cray_ymp",
    "inventory",
    "sequent",
    "speedup_curve",
    "uniform",
    "workstation",
]

from .calibrate import (
    CalibrationReport,
    DispatchCalibration,
    calibrate_dispatch,
    calibrate_dispatch_cached,
    load_dispatch_calibration,
    machine_fingerprint,
    measure_costs,
    save_dispatch_calibration,
)

__all__ += [
    "CalibrationReport",
    "DispatchCalibration",
    "calibrate_dispatch",
    "calibrate_dispatch_cached",
    "load_dispatch_calibration",
    "machine_fingerprint",
    "measure_costs",
    "save_dispatch_calibration",
]
