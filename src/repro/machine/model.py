"""Machine models: parameterized stand-ins for the paper's hardware.

The original environment ran on the Sequent Symmetry, Cray-2, Cray Y-MP,
and BBN Butterfly T2000.  That hardware is gone; what determines every
number the paper reports — speedup curves, overhead percentages, load
balance — is the *dependency structure* of the coordination graph, the
per-operator costs, the processor count, and (on the Butterfly) the cost
of remote memory.  :class:`MachineModel` captures exactly those parameters
and the discrete-event simulator in :mod:`repro.machine.simulator` executes
coordination graphs against them, deterministically.

All times are in *ticks*, the simulator's abstract clock (the Cray-2 node
timings in section 5.2 of the paper are also expressed in machine ticks).
Only ratios between ticks matter.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import MachineError


@dataclass(frozen=True)
class MachineModel:
    """Parameters of a simulated shared-memory multiprocessor.

    Attributes
    ----------
    name:
        Preset name (diagnostics).
    processors:
        Number of identical processors.
    dispatch_ticks:
        Scheduler cost charged per task dispatch — the runtime overhead the
        paper reports as "generally ... less than three percent" (section
        1) and under 1% for the retina model (section 7).  Charged on the
        executing processor, accounted separately so the overhead
        benchmarks can measure the ratio.
    node_overhead_ticks:
        Cost of firing a non-operator engine node (constants, tuple
        packing, closure creation).
    activation_ticks:
        Cost of a call-closure or conditional expansion (allocating and
        wiring a template activation).
    default_op_ticks:
        Cost of an operator whose spec carries no cost hint.
    numa:
        Non-uniform memory access (the Butterfly).  When true, reading a
        data block whose home is another processor costs
        ``remote_ticks_per_byte`` per byte.
    remote_ticks_per_byte / local_ticks_per_byte:
        Memory system costs.  UMA machines still model a shared bus via
        ``local_ticks_per_byte`` (usually tiny or zero).
    replicate_templates:
        Section 7: templates are replicated in the local memory of each
        processor, cutting bus/network traffic.  When disabled, every
        expansion fetches its template from processor 0's memory at
        ``template_fetch_ticks_per_byte`` — the ablation knob for the
        template-memory experiment.
    template_fetch_ticks_per_byte:
        See above.
    bus_bytes_per_tick:
        Shared-interconnect bandwidth.  ``0`` (default) models an
        uncontended interconnect: traffic costs only per-byte latency.
        When positive, all interconnect traffic (remote/local charged
        bytes plus template fetches) serializes through one bus; a task
        whose transfer finds the bus busy waits its turn — so saturating
        traffic inflates the makespan even when per-byte latency is tiny.
        This is how "reduces traffic on the Sequent and Cray busses"
        becomes a measurable makespan effect.
    """

    name: str
    processors: int
    dispatch_ticks: float = 50.0
    node_overhead_ticks: float = 5.0
    activation_ticks: float = 25.0
    default_op_ticks: float = 1000.0
    numa: bool = False
    remote_ticks_per_byte: float = 0.0
    local_ticks_per_byte: float = 0.0
    replicate_templates: bool = True
    template_fetch_ticks_per_byte: float = 0.05
    bus_bytes_per_tick: float = 0.0

    def __post_init__(self) -> None:
        if self.processors < 1:
            raise MachineError("a machine needs at least one processor")
        for field_name in (
            "dispatch_ticks",
            "node_overhead_ticks",
            "activation_ticks",
            "default_op_ticks",
            "remote_ticks_per_byte",
            "local_ticks_per_byte",
            "template_fetch_ticks_per_byte",
            "bus_bytes_per_tick",
        ):
            if getattr(self, field_name) < 0:
                raise MachineError(f"{field_name} must be non-negative")

    def with_processors(self, p: int) -> "MachineModel":
        """The same machine scaled to ``p`` processors (speedup sweeps)."""
        return replace(self, processors=p)


def cray_ymp(processors: int = 4) -> MachineModel:
    """Cray Y-MP: up to 8 fast processors, uniform shared memory.

    The paper's retina results (figure 1) are on a 4-processor Y-MP; its
    runtime overhead there was below one percent because operator grains
    are around a million ticks.
    """
    return MachineModel(
        name="cray-ymp",
        processors=processors,
        dispatch_ticks=400.0,
        node_overhead_ticks=40.0,
        activation_ticks=150.0,
        default_op_ticks=100_000.0,
    )


def cray_2(processors: int = 4) -> MachineModel:
    """Cray-2: four processors; the machine of the section 5.2 tick dumps."""
    return MachineModel(
        name="cray-2",
        processors=processors,
        dispatch_ticks=500.0,
        node_overhead_ticks=50.0,
        activation_ticks=200.0,
        default_op_ticks=100_000.0,
    )


def sequent(processors: int = 3) -> MachineModel:
    """Sequent Symmetry: a bus-based multi (the compiler case study, n=3).

    Slower processors and a shared bus: per-byte bus cost is visible but
    small, and dispatch is comparatively cheaper than on the Crays because
    operator grains are smaller (milliseconds, not megaticks).
    """
    return MachineModel(
        name="sequent",
        processors=processors,
        dispatch_ticks=60.0,
        node_overhead_ticks=6.0,
        activation_ticks=30.0,
        default_op_ticks=10_000.0,
        local_ticks_per_byte=0.0005,
    )


def butterfly(processors: int = 16) -> MachineModel:
    """BBN Butterfly T2000: NUMA — remote references cost several times
    local ones, which is why section 9.3 expects affinity scheduling to
    matter most here."""
    return MachineModel(
        name="butterfly",
        processors=processors,
        dispatch_ticks=80.0,
        node_overhead_ticks=8.0,
        activation_ticks=40.0,
        default_op_ticks=10_000.0,
        numa=True,
        remote_ticks_per_byte=0.02,
        local_ticks_per_byte=0.002,
    )


def workstation() -> MachineModel:
    """A single-processor development workstation (the Sun / IRIS 4D /
    HP 300 of section 4): where Delirium programs get debugged before
    moving to a parallel machine.  One processor, modest overheads."""
    return MachineModel(
        name="workstation",
        processors=1,
        dispatch_ticks=30.0,
        node_overhead_ticks=3.0,
        activation_ticks=15.0,
        default_op_ticks=20_000.0,
    )


def uniform(processors: int, op_ticks: float = 1000.0) -> MachineModel:
    """A featureless UMA machine for unit tests and algebraic properties:
    zero dispatch and node overhead, so simulated time equals pure
    schedule length."""
    return MachineModel(
        name=f"uniform-{processors}",
        processors=processors,
        dispatch_ticks=0.0,
        node_overhead_ticks=0.0,
        activation_ticks=0.0,
        default_op_ticks=op_ticks,
    )


#: Preset lookup for the CLI and benchmarks.
PRESETS = {
    "cray-ymp": cray_ymp,
    "cray-2": cray_2,
    "sequent": sequent,
    "butterfly": butterfly,
    "workstation": workstation,
}
