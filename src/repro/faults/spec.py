"""The ``--inject-faults`` grammar and the deterministic injector.

Grammar (clauses separated by ``;``, parameters by ``,``)::

    SPEC   := CLAUSE (';' CLAUSE)*
    CLAUSE := KIND [':' PARAM (',' PARAM)*]
    PARAM  := KEY '=' VALUE
    KIND   := 'raise' | 'delay' | 'kill' | 'arena' | 'cachemiss'
            | 'masterkill'

Kinds:

``raise``
    The operator call raises :class:`InjectedFault` *before* the operator
    body runs (so no argument is ever half-mutated — re-execution sees
    pristine inputs).
``delay``
    Sleep ``seconds`` before the operator body.  Combined with a
    supervisor timeout this is how a test forces a per-fire timeout.
``kill``
    ``SIGKILL`` the current process before the operator body — but only
    when the process is a *worker* (it has a multiprocessing parent).
    In the master or a plain sequential run the clause is inert, so one
    spec string can be reused across every executor.
``arena``
    Fail a :class:`~repro.runtime.workers.ShmArena` segment acquisition
    (the encoder falls back to a fresh unpooled segment).
``cachemiss``
    Force a worker block-cache miss on a by-reference argument lookup
    (``--affinity``): the worker reports the structured cache-miss reply
    and the master re-dispatches the fire with full encodings — the
    safe-fallback path, exercised on demand.  Inert when no argument is
    ref-shipped.
``masterkill``
    ``SIGKILL`` the *master* process at a streaming item boundary — the
    mirror image of ``kill``: inert inside workers, inert in
    non-streaming runs (only :class:`~repro.runtime.stream.StreamRunner`
    consults the boundary hook).  Invocations are counted under
    :data:`MASTER_SCOPE`, one per committed stream item, so
    ``masterkill:nth=K`` deterministically crashes the master right
    after item ``K`` commits — the seeded crash the checkpoint/resume
    property tests and ``bench_checkpoint_smoke`` are built on.

Selection parameters, common to all kinds:

``op=NAME``
    Restrict to one operator (default: every operator; ignored by
    ``arena``, which has no operator context).
``p=FLOAT`` / ``seed=INT``
    Fire with probability ``p`` per matching invocation, decided by a
    keyed hash of ``(seed, op, invocation count)`` — deterministic, no
    RNG state.
``nth=INT``
    Fire on exactly the N-th matching invocation (1-based), once.
``times=INT``
    Cap total firings of the clause (default: 1 for ``nth`` clauses,
    unlimited for ``p`` clauses).

Examples::

    kill:p=0.05,seed=7
    raise:op=conv_rows,nth=2
    delay:op=mc_pi,nth=1,seconds=0.25
    arena:nth=1;kill:op=post_up,nth=3
"""

from __future__ import annotations

import hashlib
import os
import signal
import time
from dataclasses import dataclass, field

from ..errors import DeliriumError

_KINDS = ("raise", "delay", "kill", "arena", "cachemiss", "masterkill")

#: Pseudo-operator name under which ``arena`` clause invocations are
#: counted (arena acquisitions have no operator context).
ARENA_SCOPE = "<arena>"

#: Pseudo-operator name under which ``masterkill`` clause invocations
#: are counted (one per streaming item boundary in the master).
MASTER_SCOPE = "<master>"


class FaultSpecError(DeliriumError):
    """An ``--inject-faults`` specification does not match the grammar."""


class InjectedFault(RuntimeError):
    """The failure deliberately raised by a ``raise`` fault clause.

    Deliberately *not* a :class:`~repro.errors.DeliriumError`: injected
    faults must travel the same wrapping/retry path as any foreign
    exception an operator body could raise.  Constructed from plain
    ``args`` so it pickles across the worker result channel.
    """


@dataclass(frozen=True)
class FaultClause:
    """One parsed fault clause.  Plain data; pickles to workers."""

    kind: str
    op: str | None = None
    p: float | None = None
    nth: int | None = None
    times: int | None = None
    seconds: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise FaultSpecError(
                f"unknown fault kind {self.kind!r}; expected one of "
                + ", ".join(_KINDS)
            )
        if self.p is None and self.nth is None:
            raise FaultSpecError(
                f"fault clause {self.kind!r} needs a trigger: p=PROB or nth=N"
            )
        if self.p is not None and not (0.0 <= self.p <= 1.0):
            raise FaultSpecError(f"fault probability p={self.p} not in [0, 1]")
        if self.nth is not None and self.nth < 1:
            raise FaultSpecError(f"nth={self.nth} must be >= 1 (1-based)")
        if self.kind == "delay" and self.seconds <= 0.0:
            raise FaultSpecError("delay clause needs seconds=FLOAT > 0")

    @property
    def max_fires(self) -> int | None:
        """Firing cap: explicit ``times``, else 1 for nth, else unlimited."""
        if self.times is not None:
            return self.times
        return 1 if self.nth is not None else None

    def matches(self, op_name: str, count: int, salt: int = 0) -> bool:
        """Does this clause fire on the ``count``-th call of ``op_name``?

        ``count`` is 1-based and already restricted to invocations this
        clause is scoped to (per-clause counters live in the injector).
        ``salt`` is the worker incarnation (0 for initial workers and the
        master, the respawn ordinal after a crash).  Without it a clause
        that killed a worker would make the *same* decision in the fresh
        worker that receives the retried call — a deterministic poison
        loop.  ``nth`` clauses fire only at salt 0: a respawned worker
        must not replay one-shot faults its predecessor already fired.
        """
        if self.nth is not None:
            return salt == 0 and count == self.nth
        assert self.p is not None
        digest = hashlib.blake2b(
            f"{self.seed}:{salt}:{self.kind}:{op_name}:{count}".encode(),
            digest_size=8,
        ).digest()
        return int.from_bytes(digest, "big") / 2**64 < self.p


@dataclass(frozen=True)
class FaultSpec:
    """A parsed ``--inject-faults`` specification (picklable)."""

    clauses: tuple[FaultClause, ...] = ()

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        clauses: list[FaultClause] = []
        for raw in text.split(";"):
            raw = raw.strip()
            if not raw:
                continue
            kind, _, params = raw.partition(":")
            kwargs: dict[str, object] = {}
            for param in params.split(",") if params else ():
                param = param.strip()
                if not param:
                    continue
                key, eq, value = param.partition("=")
                if not eq:
                    raise FaultSpecError(
                        f"bad fault parameter {param!r}; expected KEY=VALUE"
                    )
                key = key.strip()
                value = value.strip()
                if key == "op":
                    kwargs["op"] = value
                elif key == "p":
                    kwargs["p"] = float(value)
                elif key in ("nth", "times", "seed"):
                    kwargs[key] = int(value)
                elif key == "seconds":
                    kwargs["seconds"] = float(value)
                else:
                    raise FaultSpecError(
                        f"unknown fault parameter {key!r} in clause "
                        f"{raw!r}"
                    )
            clauses.append(FaultClause(kind=kind.strip(), **kwargs))
        if not clauses:
            raise FaultSpecError(f"empty fault spec {text!r}")
        return cls(tuple(clauses))

    def build(self, salt: int = 0) -> "FaultInjector":
        """An injector for one process; ``salt`` = worker incarnation."""
        return FaultInjector(self, salt=salt)

    def describe(self) -> str:
        parts = []
        for c in self.clauses:
            trig = f"p={c.p},seed={c.seed}" if c.p is not None else f"nth={c.nth}"
            scope = f"op={c.op}," if c.op else ""
            extra = f",seconds={c.seconds}" if c.kind == "delay" else ""
            parts.append(f"{c.kind}:{scope}{trig}{extra}")
        return ";".join(parts)


def parse_fault_spec(text: str) -> FaultSpec:
    """Module-level convenience mirror of :meth:`FaultSpec.parse`."""
    return FaultSpec.parse(text)


def _in_worker_process() -> bool:
    """True when this process was spawned/forked by a multiprocessing pool."""
    import multiprocessing

    return multiprocessing.parent_process() is not None


@dataclass
class FaultInjector:
    """Stateful per-process fault decisions for one :class:`FaultSpec`.

    The injector holds only monotone counters, so it is cheap to consult
    and trivially rebuilt inside each worker (workers receive the *spec*,
    not the injector: each process counts the invocations it actually
    sees, which keeps decisions deterministic per process regardless of
    how calls are distributed).
    """

    spec: FaultSpec
    #: Worker incarnation (see :meth:`FaultClause.matches`).
    salt: int = 0
    #: Per-(clause index, op) invocation counters.
    _counts: dict[tuple[int, str], int] = field(default_factory=dict)
    #: Per-clause firing counters (to honor ``times`` caps).
    _fired: dict[int, int] = field(default_factory=dict)
    #: Total faults this injector has actually injected (all kinds).
    injected: int = 0

    def _should_fire(self, idx: int, clause: FaultClause, scope: str) -> bool:
        if clause.op is not None and clause.op != scope:
            return False
        cap = clause.max_fires
        if cap is not None and self._fired.get(idx, 0) >= cap:
            return False
        key = (idx, scope)
        count = self._counts.get(key, 0) + 1
        self._counts[key] = count
        if not clause.matches(scope, count, self.salt):
            return False
        self._fired[idx] = self._fired.get(idx, 0) + 1
        self.injected += 1
        return True

    # ------------------------------------------------------------------
    def on_call(self, op_name: str) -> None:
        """Consulted immediately before an operator body runs.

        May sleep (``delay``), raise :class:`InjectedFault` (``raise``),
        or SIGKILL the current process (``kill``, workers only).  Faults
        fire *before* the body, so a retried call always sees unmutated
        arguments.
        """
        for idx, clause in enumerate(self.spec.clauses):
            if clause.kind in ("arena", "cachemiss", "masterkill"):
                continue
            if not self._should_fire(idx, clause, op_name):
                continue
            if clause.kind == "delay":
                time.sleep(clause.seconds)
            elif clause.kind == "raise":
                raise InjectedFault(
                    f"injected fault in operator {op_name!r} "
                    f"(clause {idx}: {clause.kind})"
                )
            elif clause.kind == "kill" and _in_worker_process():
                os.kill(os.getpid(), signal.SIGKILL)

    def on_arena_acquire(self) -> bool:
        """Consulted per arena segment acquisition; True = fail it."""
        for idx, clause in enumerate(self.spec.clauses):
            if clause.kind != "arena":
                continue
            if self._should_fire(idx, clause, ARENA_SCOPE):
                return True
        return False

    def on_cache_lookup(self, op_name: str) -> bool:
        """Consulted per by-reference block-cache lookup in a worker;
        True = treat the lookup as a miss even when the block is
        resident.  Scoped by the operator being fired (``op=``)."""
        for idx, clause in enumerate(self.spec.clauses):
            if clause.kind != "cachemiss":
                continue
            if self._should_fire(idx, clause, op_name):
                return True
        return False

    def on_master_boundary(self) -> None:
        """Consulted by the streaming runner after each item commits.

        A matching ``masterkill`` clause SIGKILLs the current process —
        no flush, no atexit, exactly a ``kill -9`` — but only when the
        process *is* the master.  Counters advance either way so a spec
        shared with workers stays deterministic.
        """
        for idx, clause in enumerate(self.spec.clauses):
            if clause.kind != "masterkill":
                continue
            if self._should_fire(idx, clause, MASTER_SCOPE):
                if not _in_worker_process():
                    os.kill(os.getpid(), signal.SIGKILL)

    # -- checkpoint support --------------------------------------------
    def state_dict(self) -> dict:
        """The injector's cursors as checkpointable plain data.

        Decisions are pure functions of ``(seed, salt, kind, op, count)``,
        so restoring the counters is all a resumed master needs to keep
        making the *same* decisions it would have made uninterrupted —
        e.g. a ``masterkill:nth=200`` clause that fired before the crash
        must not fire again at the resumed run's 200th boundary.
        """
        return {
            "salt": self.salt,
            "counts": [
                [idx, op, n] for (idx, op), n in sorted(self._counts.items())
            ],
            "fired": [[idx, n] for idx, n in sorted(self._fired.items())],
            "injected": self.injected,
        }

    def load_state(self, state: dict) -> None:
        """Restore cursors captured by :meth:`state_dict`."""
        self.salt = int(state["salt"])
        self._counts = {
            (int(idx), str(op)): int(n) for idx, op, n in state["counts"]
        }
        self._fired = {int(idx): int(n) for idx, n in state["fired"]}
        self.injected = int(state["injected"])
