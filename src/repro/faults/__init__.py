"""Seeded, deterministic fault injection for the Delirium runtime.

The single-assignment model makes re-execution of a failed firing
semantically safe, which means the runtime's fault-tolerance layer
(:mod:`repro.runtime.supervise`) can be *tested* the strongest possible
way: inject crashes, exceptions, delays, and allocation failures into a
run and assert the result is bit-identical to the fault-free run.  This
package provides the injection side of that contract:

* :class:`FaultSpec` — a parsed ``--inject-faults`` specification (see
  :func:`FaultSpec.parse` for the grammar);
* :class:`FaultInjector` — the runtime hook: executors (and worker
  processes, which rebuild their own injector from the picklable spec)
  consult it at every operator-call boundary and at every shared-memory
  arena acquisition;
* :class:`InjectedFault` — the exception raised by ``raise`` clauses,
  picklable so it survives the worker result channel.

Every decision is a pure function of ``(clause seed, operator name,
per-operator invocation count)`` through a keyed blake2 hash — no global
RNG state, so two runs with the same spec inject the same faults at the
same logical points regardless of scheduling, and each forked worker's
decisions depend only on the calls it actually executes.
"""

from .spec import (
    ARENA_SCOPE,
    MASTER_SCOPE,
    FaultClause,
    FaultInjector,
    FaultSpec,
    InjectedFault,
    parse_fault_spec,
)

__all__ = [
    "ARENA_SCOPE",
    "MASTER_SCOPE",
    "FaultClause",
    "FaultInjector",
    "FaultSpec",
    "InjectedFault",
    "parse_fault_spec",
]
