"""Coordination-graph intermediate representation.

The Pythia compiler converts each Delirium function into a *template*: a
static dataflow subgraph whose nodes are sequential operators and whose
edges are data paths (section 7 of the paper).  The runtime instantiates
*template activations* — small structures with buffer space for one
evaluation of the template — and fires nodes when all their inputs are
present.  Two properties of templates make scheduling cheap and execution
deterministic:

1. every node in an activation fires **exactly once**, and
2. once data is present on an input it stays until the node fires and is
   never present again.

Control flow never lives inside a template.  A conditional compiles to an
:class:`NodeKind.IF` node holding two *arm templates* that are expanded
lazily (only the taken arm ever runs), and every function call is a
:class:`NodeKind.CALL` ("call-closure") node that expands the callee's
template as a child activation.  Recursion and iteration (lowered to tail
recursion) therefore cost one activation per live call, and tail calls
re-use the parent's continuation so loops run in constant activation space.

Node input ports are wired by :class:`Port` references ``(node_id,
out_port)``; almost every node has one output, except ``UNTUPLE`` which has
one output per package element.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..errors import GraphError


class NodeKind(enum.Enum):
    """The kinds of coordination-graph nodes."""

    PARAM = "param"        #: placeholder filled at activation creation
    CAPTURE = "capture"    #: placeholder filled from the closure environment
    CONST = "const"        #: literal value; fires immediately
    OP = "op"              #: application of an external (embedded) operator
    OPREF = "opref"        #: an operator used as a first-class value
    CLOSURE = "closure"    #: create a closure over a template
    CALL = "call"          #: call-closure: expand a closure's template
    IF = "if"              #: conditional: expand the chosen arm template
    TUPLE = "tuple"        #: build a multiple-value package
    UNTUPLE = "untuple"    #: decompose a multiple-value package


#: Node kinds that expand subgraphs at run time (the call-closure family).
EXPANDING_KINDS = frozenset({NodeKind.CALL, NodeKind.IF})


#: Ready-queue priority classes (section 7's three levels).  Defined here —
#: not in the scheduler — so :meth:`Template.finalize` can precompute each
#: node's priority once per template instead of per firing; the scheduler
#: re-exports them under the same names.
PRIORITY_NORMAL = 0
PRIORITY_CALL = 1
PRIORITY_RECURSIVE_CALL = 2


@dataclass(frozen=True, slots=True)
class Port:
    """A reference to output ``out`` of node ``node`` within a template."""

    node: int
    out: int = 0


@dataclass(slots=True)
class Node:
    """One coordination-graph node.

    Attributes
    ----------
    kind:
        The :class:`NodeKind`.
    inputs:
        Ports this node reads, in positional order.  Input counts by kind:
        ``PARAM``/``CAPTURE``/``CONST``/``OPREF`` take none; ``OP`` takes its
        operator's arguments; ``CLOSURE`` takes its captured values; ``CALL``
        takes the callee closure followed by call arguments; ``IF`` takes the
        condition, the then-arm captures, then the else-arm captures;
        ``TUPLE`` takes the package elements; ``UNTUPLE`` takes one package.
    n_outputs:
        Number of output ports (1 for everything except ``UNTUPLE``).
    value:
        Constant payload for ``CONST`` nodes.
    name:
        Operator name for ``OP``/``OPREF``; variable name for
        ``PARAM``/``CAPTURE`` (debugging / node-timing labels).
    template / then_template / else_template:
        Template *names* referenced by ``CLOSURE`` and ``IF`` nodes.
    n_then_captures:
        For ``IF``: how many of the capture inputs belong to the then arm
        (the rest belong to the else arm).
    recursive:
        For ``CALL``: the compiler proved the call is part of a recursive
        cycle; the scheduler gives such expansions the lowest priority.
    fused:
        For ``OP`` nodes produced by the fusion pass: the recipe
        ``(steps, untuple_n)`` where ``steps`` is a tuple of
        ``(op_name, arg_refs)`` entries executed in order and each arg ref
        is ``("i", k)`` (the fused node's k-th input) or ``("t", j)`` (the
        j-th step's result).  ``untuple_n > 0`` means the final step's
        package is decomposed in place: the fused node has ``untuple_n``
        outputs instead of one.  ``None`` for ordinary nodes.
    donated:
        For ``OP`` nodes: sorted tuple of input indices whose incoming
        edge the donation pass proved to be the *last use* of the value —
        this node is the sole consumer of the producing port, the port is
        not the template result, and the producer is not a closure capture
        or a function result.  The engine hands such inputs to the
        operator for in-place mutation without a copy-on-write copy, and
        recycles their buffers at rc→0.  ``None`` when the pass did not
        run (the default graphs carry no annotations).
    codegen:
        For fused ``OP`` nodes lowered by the codegen pass: the generated
        Python *source text* of a binder function that, called with the
        member operator functions in step order, returns the specialized
        fused callable (argument unpacking, step sequence, and
        intermediate threading inlined — no per-step interpretation).
        Source, not code objects, is what serializes and ships to worker
        processes; each side compiles and binds it against its own
        registry.  ``None`` when the pass did not run.
    codegen_fn:
        The callable bound from ``codegen`` against the compile-time
        registry, carried for in-process consumers.  Never serialized;
        reloaded graphs re-bind lazily from the source (see
        :func:`repro.runtime.operators.node_spec`).
    tail:
        The node's output *is* the template result; expansions inherit the
        parent continuation (constant-space loops).
    label:
        Human-readable label used by node-timing reports and the visualizer.
    """

    kind: NodeKind
    inputs: list[Port] = field(default_factory=list)
    n_outputs: int = 1
    value: object = None
    name: str = ""
    template: str = ""
    then_template: str = ""
    else_template: str = ""
    n_then_captures: int = 0
    recursive: bool = False
    fused: tuple | None = None
    donated: tuple | None = None
    codegen: str | None = None
    codegen_fn: object = None
    tail: bool = False
    label: str = ""

    def arity(self) -> int:
        return len(self.inputs)


@dataclass
class Template:
    """A compiled Delirium function: a static, immutable subgraph.

    Attributes
    ----------
    name:
        Qualified function name (local functions get ``outer.inner`` names,
        compiler-generated loop functions ``outer.loop$k``, and conditional
        arms ``outer.if$k.then`` / ``.else``).
    params:
        Declared parameter names, in order.  Parameter ``i`` is node ``i``.
    captures:
        Free variables closed over, in order.  Capture ``j`` is node
        ``len(params) + j``.
    nodes:
        All nodes.  The first ``len(params) + len(captures)`` are the
        ``PARAM``/``CAPTURE`` placeholders.
    result:
        The port whose value is the template's result.
    consumers:
        Derived wiring: ``consumers[node][out]`` lists ``(dest_node,
        input_index)`` pairs.  Built by :meth:`finalize`.
    initial_ready:
        Derived: nodes with zero inputs that are not placeholders — these
        are ready the moment an activation is created.
    in_counts / priorities / result_node / result_out:
        Derived engine fast-path arrays: per-node input counts (activation
        ``missing`` seeds), per-node ready-queue priority class, and the
        result port as two plain ints — precomputed once here so the hot
        firing loops index arrays instead of re-deriving them per task.
    source_function:
        The unqualified Delirium function this template came from (arm and
        loop templates point at their host function).
    """

    name: str
    params: list[str] = field(default_factory=list)
    captures: list[str] = field(default_factory=list)
    nodes: list[Node] = field(default_factory=list)
    result: Port | None = None
    consumers: list[list[list[tuple[int, int]]]] = field(default_factory=list)
    initial_ready: list[int] = field(default_factory=list)
    in_counts: list[int] = field(default_factory=list)
    priorities: list[int] = field(default_factory=list)
    result_node: int = -1
    result_out: int = -1
    source_function: str = ""

    # ------------------------------------------------------------------
    def n_placeholders(self) -> int:
        return len(self.params) + len(self.captures)

    def placeholder_names(self) -> list[str]:
        return list(self.params) + list(self.captures)

    def finalize(self) -> "Template":
        """Derive consumer lists and the initial ready set; validate wiring.

        Must be called once after construction; templates are treated as
        immutable afterwards (they are shared by every activation and, on
        the simulated machines, replicated per processor).
        """
        n = len(self.nodes)
        self.consumers = [
            [[] for _ in range(node.n_outputs)] for node in self.nodes
        ]
        for node_id, node in enumerate(self.nodes):
            for input_index, port in enumerate(node.inputs):
                if not (0 <= port.node < n):
                    raise GraphError(
                        f"template {self.name!r}: node {node_id} input "
                        f"{input_index} references missing node {port.node}"
                    )
                src = self.nodes[port.node]
                if not (0 <= port.out < src.n_outputs):
                    raise GraphError(
                        f"template {self.name!r}: node {node_id} reads "
                        f"output {port.out} of node {port.node}, which has "
                        f"only {src.n_outputs} outputs"
                    )
                self.consumers[port.node][port.out].append((node_id, input_index))
        if self.result is None:
            raise GraphError(f"template {self.name!r} has no result port")
        if not (0 <= self.result.node < n):
            raise GraphError(f"template {self.name!r}: result references missing node")
        self.initial_ready = [
            node_id
            for node_id, node in enumerate(self.nodes)
            if not node.inputs
            and node.kind not in (NodeKind.PARAM, NodeKind.CAPTURE)
        ]
        self.in_counts = [len(node.inputs) for node in self.nodes]
        self.priorities = [
            (
                (PRIORITY_RECURSIVE_CALL if node.recursive else PRIORITY_CALL)
                if node.kind is NodeKind.CALL
                else PRIORITY_CALL
                if node.kind is NodeKind.IF
                else PRIORITY_NORMAL
            )
            for node in self.nodes
        ]
        self.result_node = self.result.node
        self.result_out = self.result.out
        return self

    # ------------------------------------------------------------------
    def fan_out(self, port: Port) -> int:
        """Number of consumers of ``port`` (plus one if it is the result)."""
        count = len(self.consumers[port.node][port.out])
        if self.result == port:
            count += 1
        return count

    def describe(self) -> str:
        """A compact one-template dump used by tests and the CLI."""
        lines = [f"template {self.name}({', '.join(self.params)})"]
        if self.captures:
            lines.append(f"  captures: {', '.join(self.captures)}")
        for node_id, node in enumerate(self.nodes):
            ins = ", ".join(
                f"{p.node}" if p.out == 0 else f"{p.node}.{p.out}"
                for p in node.inputs
            )
            extra = ""
            if node.kind is NodeKind.CONST:
                extra = f" value={node.value!r}"
            elif node.kind is NodeKind.OP and node.fused is not None:
                steps, untuple_n = node.fused
                chain = ">".join(step_name for step_name, _ in steps)
                if untuple_n:
                    chain += f">untuple{untuple_n}"
                extra = f" fused=[{chain}]"
                if node.codegen is not None:
                    extra += " codegen"
                if node.donated:
                    extra += f" donated={list(node.donated)}"
            elif node.kind in (NodeKind.OP, NodeKind.OPREF):
                extra = f" op={node.name}"
                if node.donated:
                    extra += f" donated={list(node.donated)}"
            elif node.kind is NodeKind.CLOSURE:
                extra = f" template={node.template}"
            elif node.kind is NodeKind.IF:
                extra = f" then={node.then_template} else={node.else_template}"
            elif node.kind in (NodeKind.PARAM, NodeKind.CAPTURE):
                extra = f" name={node.name}"
            flags = "".join(
                f" [{f}]"
                for f in (
                    "tail" if node.tail else "",
                    "rec" if node.recursive else "",
                )
                if f
            )
            lines.append(f"  {node_id}: {node.kind.value}({ins}){extra}{flags}")
        assert self.result is not None
        lines.append(f"  result: {self.result.node}.{self.result.out}")
        return "\n".join(lines)


@dataclass
class GraphProgram:
    """A compiled program: every template plus the entry-point name.

    ``templates`` maps qualified names to templates.  ``entry`` names the
    template the runtime expands first (``main`` for whole programs; the
    compiler driver can also compile a single function for embedding).
    """

    templates: dict[str, Template] = field(default_factory=dict)
    entry: str = "main"

    def add(self, template: Template) -> Template:
        if template.name in self.templates:
            raise GraphError(f"duplicate template name {template.name!r}")
        self.templates[template.name] = template
        return template

    def template(self, name: str) -> Template:
        try:
            return self.templates[name]
        except KeyError:
            raise GraphError(f"no template named {name!r}") from None

    def entry_template(self) -> Template:
        return self.template(self.entry)

    def total_nodes(self) -> int:
        """Total node count across templates (the compiler's cost metric)."""
        return sum(len(t.nodes) for t in self.templates.values())

    def reachable_templates(self) -> set[str]:
        """Templates reachable from the entry through CLOSURE/IF references.

        Every dynamic expansion goes through a closure created by a
        ``CLOSURE`` node or an arm named by an ``IF`` node, so static
        reachability is exact.
        """
        seen: set[str] = set()
        frontier = [self.entry]
        while frontier:
            name = frontier.pop()
            if name in seen or name not in self.templates:
                continue
            seen.add(name)
            for node in self.templates[name].nodes:
                if node.kind is NodeKind.CLOSURE:
                    frontier.append(node.template)
                elif node.kind is NodeKind.IF:
                    frontier.append(node.then_template)
                    frontier.append(node.else_template)
        return seen

    def prune_unreachable(self) -> int:
        """Drop templates unreachable from the entry; returns the count.

        The graph-level complement of dead-code elimination: after
        inlining, whole helper templates can become dead weight —
        "unnecessary nodes in the graph translate into extra overhead"
        (and, on the simulated machines, replicated template memory).
        """
        reachable = self.reachable_templates()
        dead = [name for name in self.templates if name not in reachable]
        for name in dead:
            del self.templates[name]
        return len(dead)

    def memory_bytes(self, per_node: int = 64, per_edge: int = 16) -> int:
        """Rough byte size of the static templates.

        Used by the section-7 experiment showing templates dominate runtime
        memory and are worth replicating per processor.
        """
        nodes = self.total_nodes()
        edges = sum(
            len(node.inputs) for t in self.templates.values() for node in t.nodes
        )
        return nodes * per_node + edges * per_edge
