"""Visualization of coordination frameworks.

The paper's environment includes "a visualization tool for coordination
frameworks"; one can "completely discover the topology of the program's
parallel execution simply by reading its Delirium code" — or by rendering
the compiled graphs.  Three renderers:

* :func:`to_networkx` — a ``networkx.DiGraph`` for programmatic analysis
  (critical paths, widths, and the property tests use it);
* :func:`to_dot` — Graphviz DOT text, one cluster per template;
* :func:`ascii_framework` — a terminal rendering of each template as
  layered stages, showing the parallel width of every stage (four
  ``convol_bite`` nodes side by side *is* the retina story).
"""

from __future__ import annotations

import networkx as nx

from .ir import GraphProgram, NodeKind, Template


def _node_title(template: Template, node_id: int) -> str:
    node = template.nodes[node_id]
    if node.kind is NodeKind.OP:
        return node.name
    if node.kind in (NodeKind.PARAM, NodeKind.CAPTURE):
        return f"{node.kind.value}:{node.name}"
    if node.kind is NodeKind.CONST:
        return f"const {node.value!r}"
    if node.kind is NodeKind.CLOSURE:
        return f"closure {node.template}"
    if node.kind is NodeKind.CALL:
        return node.label or "call"
    if node.kind is NodeKind.IF:
        return node.label or "if"
    return node.label or node.kind.value


def to_networkx(program: GraphProgram) -> "nx.DiGraph":
    """The whole program as one digraph.

    Node ids are ``"template:node_id"`` strings; data edges carry
    ``kind="data"``; template references (closure/if) carry
    ``kind="expands"`` edges from the referencing node to the target
    template's result node, capturing the dynamic-expansion topology.
    """
    g = nx.DiGraph()
    for template in program.templates.values():
        for node_id, node in enumerate(template.nodes):
            g.add_node(
                f"{template.name}:{node_id}",
                template=template.name,
                kind=node.kind.value,
                title=_node_title(template, node_id),
                tail=node.tail,
                recursive=node.recursive,
            )
        for node_id, node in enumerate(template.nodes):
            for port in node.inputs:
                g.add_edge(
                    f"{template.name}:{port.node}",
                    f"{template.name}:{node_id}",
                    kind="data",
                )
    for template in program.templates.values():
        for node_id, node in enumerate(template.nodes):
            targets = []
            if node.kind is NodeKind.CLOSURE:
                targets = [node.template]
            elif node.kind is NodeKind.IF:
                targets = [node.then_template, node.else_template]
            for target in targets:
                t = program.templates.get(target)
                if t is not None and t.result is not None:
                    g.add_edge(
                        f"{template.name}:{node_id}",
                        f"{target}:{t.result.node}",
                        kind="expands",
                    )
    return g


def to_dot(program: GraphProgram) -> str:
    """Graphviz DOT text, one cluster per template."""
    lines = ["digraph delirium {", "  rankdir=TB;", "  node [shape=box];"]
    for ti, template in enumerate(program.templates.values()):
        lines.append(f"  subgraph cluster_{ti} {{")
        lines.append(f'    label="{template.name}";')
        for node_id, node in enumerate(template.nodes):
            title = _node_title(template, node_id).replace('"', "'")
            style = ""
            if node.kind in (NodeKind.PARAM, NodeKind.CAPTURE):
                style = ", shape=ellipse"
            elif node.kind in (NodeKind.CALL, NodeKind.IF):
                style = ", shape=hexagon"
            assert template.result is not None
            if template.result.node == node_id:
                style += ", peripheries=2"
            lines.append(
                f'    "{template.name}:{node_id}" [label="{title}"{style}];'
            )
        for node_id, node in enumerate(template.nodes):
            for port in node.inputs:
                lines.append(
                    f'    "{template.name}:{port.node}" -> '
                    f'"{template.name}:{node_id}";'
                )
        lines.append("  }")
    for template in program.templates.values():
        for node_id, node in enumerate(template.nodes):
            targets = []
            if node.kind is NodeKind.CLOSURE:
                targets = [node.template]
            elif node.kind is NodeKind.IF:
                targets = [node.then_template, node.else_template]
            for target in targets:
                if target in program.templates:
                    lines.append(
                        f'  "{template.name}:{node_id}" -> "{target}:0" '
                        "[style=dashed, constraint=false];"
                    )
    lines.append("}")
    return "\n".join(lines)


def template_layers(template: Template) -> list[list[int]]:
    """Topological layers of a template (nodes grouped by dependency depth).

    Layer k contains nodes whose longest dependency chain from a source
    has length k.  The width of a layer is the parallelism available at
    that stage — what the paper's framework diagrams convey.
    """
    depth = [0] * len(template.nodes)
    for node_id, node in enumerate(template.nodes):
        for port in node.inputs:
            depth[node_id] = max(depth[node_id], depth[port.node] + 1)
        # Builders append in dependency order, so one pass suffices; the
        # validator guarantees acyclicity.
    layers: dict[int, list[int]] = {}
    for node_id, d in enumerate(depth):
        layers.setdefault(d, []).append(node_id)
    return [layers[d] for d in sorted(layers)]


def ascii_framework(program: GraphProgram, entry_only: bool = False) -> str:
    """Terminal rendering: each template as layered parallel stages."""
    out: list[str] = []
    names = [program.entry] if entry_only else list(program.templates)
    for name in names:
        template = program.templates[name]
        out.append(f"=== {template.name}({', '.join(template.params)}) ===")
        if template.captures:
            out.append(f"    captures: {', '.join(template.captures)}")
        for layer in template_layers(template):
            titles = [_node_title(template, i) for i in layer]
            out.append("    " + "  |  ".join(titles))
        assert template.result is not None
        out.append(f"    -> result: {_node_title(template, template.result.node)}")
        out.append("")
    return "\n".join(out)
