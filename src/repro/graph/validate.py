"""Structural validation of coordination graphs.

The compiler is trusted to emit well-formed templates (``Template.finalize``
already checks wiring), but hand-built graphs, corrupted pickles, and — most
importantly — compiler bugs caught by the test suite deserve a precise
diagnosis.  :func:`validate_program` checks the whole-program invariants:

* every template referenced by a ``CLOSURE``/``IF`` node exists and its
  capture arity matches the referencing node;
* templates are acyclic (data flows forward only — cycles would deadlock
  the firing rule);
* placeholders are exactly the leading nodes and never fire on their own;
* ``IF`` capture splits are consistent; ``UNTUPLE`` output counts are
  positive; every non-placeholder node is reachable... every node's value
  is *used* somewhere or is the result (an unused node is legal — DCE
  exists because they occur — so that last one is reported as a statistic,
  not an error).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import GraphError
from .ir import GraphProgram, NodeKind, Template

#: Producer kinds whose outputs may be donated: plain data sources.  A
#: ``CAPTURE`` is a closure capture (pinned for the closure's lifetime),
#: ``CALL``/``IF`` outputs are function results (the value may simultaneously
#: be the callee template's result and so outlive this edge), and
#: ``CLOSURE``/``OPREF`` produce code values that donation cannot apply to.
DONATABLE_PRODUCERS = frozenset(
    {NodeKind.OP, NodeKind.CONST, NodeKind.PARAM,
     NodeKind.TUPLE, NodeKind.UNTUPLE}
)


@dataclass
class ValidationReport:
    """What validation found (errors raise; oddities are recorded)."""

    templates_checked: int = 0
    #: (template, node_id) pairs whose outputs are never consumed and are
    #: not the template result — dead nodes the optimizer left behind.
    dead_nodes: list[tuple[str, int]] = field(default_factory=list)


def _check_acyclic(template: Template) -> None:
    """Data edges must flow from lower topological layers only.

    Because builders append nodes in evaluation order, inputs normally
    reference earlier nodes; but the invariant worth checking is the
    semantic one — no cycles — so run a proper Kahn pass.
    """
    n = len(template.nodes)
    indegree = [len(node.inputs) for node in template.nodes]
    ready = [i for i, d in enumerate(indegree) if d == 0]
    seen = 0
    while ready:
        node_id = ready.pop()
        seen += 1
        for out_consumers in template.consumers[node_id]:
            for dest, _ in out_consumers:
                indegree[dest] -= 1
                if indegree[dest] == 0:
                    ready.append(dest)
    if seen != n:
        raise GraphError(
            f"template {template.name!r} contains a data-dependency cycle"
        )


def _check_placeholders(template: Template) -> None:
    n_ph = template.n_placeholders()
    for i, node in enumerate(template.nodes):
        is_leading = i < n_ph
        is_placeholder = node.kind in (NodeKind.PARAM, NodeKind.CAPTURE)
        if is_leading != is_placeholder:
            raise GraphError(
                f"template {template.name!r}: node {i} "
                f"({node.kind.value}) violates the placeholder layout "
                f"(the first {n_ph} nodes must be the placeholders)"
            )
        if is_placeholder and node.inputs:
            raise GraphError(
                f"template {template.name!r}: placeholder {i} has inputs"
            )


def _check_references(
    template: Template, program: GraphProgram
) -> None:
    for i, node in enumerate(template.nodes):
        if node.kind is NodeKind.CLOSURE:
            target = program.templates.get(node.template)
            if target is None:
                raise GraphError(
                    f"template {template.name!r}: closure node {i} "
                    f"references missing template {node.template!r}"
                )
            if len(node.inputs) != len(target.captures):
                raise GraphError(
                    f"template {template.name!r}: closure node {i} supplies "
                    f"{len(node.inputs)} capture(s); {target.name!r} "
                    f"declares {len(target.captures)}"
                )
        elif node.kind is NodeKind.IF:
            for attr in ("then_template", "else_template"):
                name = getattr(node, attr)
                target = program.templates.get(name)
                if target is None:
                    raise GraphError(
                        f"template {template.name!r}: if node {i} references "
                        f"missing arm template {name!r}"
                    )
                if target.params:
                    raise GraphError(
                        f"arm template {name!r} must not declare parameters"
                    )
            then_t = program.templates[node.then_template]
            else_t = program.templates[node.else_template]
            want = 1 + len(then_t.captures) + len(else_t.captures)
            if len(node.inputs) != want:
                raise GraphError(
                    f"template {template.name!r}: if node {i} has "
                    f"{len(node.inputs)} input(s); expected {want} "
                    "(condition + both arms' captures)"
                )
            if node.n_then_captures != len(then_t.captures):
                raise GraphError(
                    f"template {template.name!r}: if node {i} capture split "
                    "disagrees with the then-arm template"
                )
        elif node.kind is NodeKind.UNTUPLE:
            if node.n_outputs < 1:
                raise GraphError(
                    f"template {template.name!r}: untuple node {i} has "
                    f"{node.n_outputs} outputs"
                )


def donation_violation(
    template: Template, node_id: int, input_index: int
) -> str | None:
    """Why input ``input_index`` of node ``node_id`` must NOT be donated.

    Returns ``None`` when the edge satisfies every static donation
    condition (sole consumer of a non-result port whose producer is a
    plain data source, on an ``OP`` node).  This is the single source of
    truth for the donation rule: the compiler pass annotates exactly the
    edges this function accepts, and :func:`validate_template` recomputes
    it so a mis-annotated graph (hand-edited, corrupted, or produced by a
    buggy pass) is rejected before it can corrupt shared payloads.
    """
    node = template.nodes[node_id]
    if node.kind is not NodeKind.OP:
        return f"node {node_id} is {node.kind.value}, not an operator"
    if not (0 <= input_index < len(node.inputs)):
        return f"node {node_id} has no input {input_index}"
    port = node.inputs[input_index]
    producer = template.nodes[port.node]
    if producer.kind not in DONATABLE_PRODUCERS:
        return (
            f"producer node {port.node} is a {producer.kind.value} "
            "(closure capture or function result)"
        )
    if template.result is not None and (
        template.result.node == port.node and template.result.out == port.out
    ):
        return f"port {port.node}.{port.out} is the template result"
    if len(template.consumers[port.node][port.out]) != 1:
        return (
            f"port {port.node}.{port.out} has "
            f"{len(template.consumers[port.node][port.out])} consumers"
        )
    return None


def _check_donations(template: Template) -> None:
    for node_id, node in enumerate(template.nodes):
        if not node.donated:
            continue
        for input_index in node.donated:
            reason = donation_violation(template, node_id, input_index)
            if reason is not None:
                raise GraphError(
                    f"template {template.name!r}: node {node_id} input "
                    f"{input_index} is annotated donated, but {reason}"
                )


def _find_dead_nodes(template: Template, report: ValidationReport) -> None:
    assert template.result is not None
    for node_id, node in enumerate(template.nodes):
        if node.kind in (NodeKind.PARAM, NodeKind.CAPTURE):
            continue
        used = any(template.consumers[node_id][o] for o in range(node.n_outputs))
        is_result = template.result.node == node_id
        if not used and not is_result:
            report.dead_nodes.append((template.name, node_id))


def validate_template(template: Template, program: GraphProgram) -> None:
    """Check one template; raises :class:`GraphError` on violations."""
    if not template.consumers:
        raise GraphError(
            f"template {template.name!r} was not finalized (call finalize())"
        )
    _check_placeholders(template)
    _check_acyclic(template)
    _check_references(template, program)
    _check_donations(template)


def validate_program(program: GraphProgram) -> ValidationReport:
    """Validate every template plus whole-program invariants."""
    if program.entry not in program.templates:
        raise GraphError(f"entry template {program.entry!r} is missing")
    report = ValidationReport()
    for template in program.templates.values():
        validate_template(template, program)
        _find_dead_nodes(template, report)
        report.templates_checked += 1
    entry = program.entry_template()
    if entry.captures:
        raise GraphError(
            f"entry template {entry.name!r} must not have captures"
        )
    return report
