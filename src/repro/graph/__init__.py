"""Coordination-graph IR and tools."""

from .ir import EXPANDING_KINDS, GraphProgram, Node, NodeKind, Port, Template

__all__ = [
    "EXPANDING_KINDS",
    "GraphProgram",
    "Node",
    "NodeKind",
    "Port",
    "Template",
]

from .serialize import dumps, load, loads, save

__all__ += ["dumps", "load", "loads", "save"]
