"""Serialization of compiled coordination graphs.

Templates are static — "the templates do not change at runtime" (section
7) — which makes them trivially serializable.  A compiled program can be
saved as JSON and reloaded later (or shipped to another process), skipping
the compiler entirely; only the operator registry (Python code) must be
present at load time, exactly as the original system needed the compiled
C operators linked in.

Constant values inside templates are restricted to JSON-representable
atoms plus ``NULL`` and the compiler's self-capture placeholder; that is
all the compiler ever emits (operators, not constants, carry application
data).
"""

from __future__ import annotations

import json
from typing import Any

from ..errors import GraphError
from ..runtime.values import NULL, _SELF
from .ir import GraphProgram, Node, NodeKind, Port, Template

#: Format version; bump on breaking changes.
FORMAT_VERSION = 1

_NULL_MARKER = {"$delirium": "null"}
_SELF_MARKER = {"$delirium": "self"}


def _encode_value(value: Any) -> Any:
    if value is NULL:
        return _NULL_MARKER
    if value is _SELF:
        return _SELF_MARKER
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    raise GraphError(
        f"cannot serialize constant of type {type(value).__name__}; "
        "templates may only hold atomic constants"
    )


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict):
        kind = value.get("$delirium")
        if kind == "null":
            return NULL
        if kind == "self":
            return _SELF
        raise GraphError(f"unknown constant marker {value!r}")
    return value


def _encode_node(node: Node) -> dict:
    out: dict[str, Any] = {
        "kind": node.kind.value,
        "inputs": [[p.node, p.out] for p in node.inputs],
    }
    if node.n_outputs != 1:
        out["n_outputs"] = node.n_outputs
    if node.kind is NodeKind.CONST:
        out["value"] = _encode_value(node.value)
    if node.name:
        out["name"] = node.name
    if node.template:
        out["template"] = node.template
    if node.then_template:
        out["then_template"] = node.then_template
        out["else_template"] = node.else_template
        out["n_then_captures"] = node.n_then_captures
    if node.recursive:
        out["recursive"] = True
    if node.fused is not None:
        steps, untuple_n = node.fused
        out["fused"] = {
            "steps": [
                [op_name, [[kind, k] for kind, k in refs]]
                for op_name, refs in steps
            ],
            "untuple": untuple_n,
        }
    if node.donated:
        # Emitted only when non-empty so graphs compiled without the
        # donation pass serialize bit-for-bit as before.
        out["donated"] = list(node.donated)
    if node.codegen is not None:
        # Same discipline: source text only when the codegen pass ran, so
        # --no-codegen compilations serve byte-identical dumps to builds
        # that predate the pass.  The bound callable never serializes;
        # loaders re-bind from this source against their own registry.
        out["codegen"] = node.codegen
    if node.tail:
        out["tail"] = True
    if node.label:
        out["label"] = node.label
    return out


def _decode_node(data: dict) -> Node:
    node = Node(
        kind=NodeKind(data["kind"]),
        inputs=[Port(int(n), int(o)) for n, o in data.get("inputs", [])],
        n_outputs=int(data.get("n_outputs", 1)),
        name=data.get("name", ""),
        template=data.get("template", ""),
        then_template=data.get("then_template", ""),
        else_template=data.get("else_template", ""),
        n_then_captures=int(data.get("n_then_captures", 0)),
        recursive=bool(data.get("recursive", False)),
        tail=bool(data.get("tail", False)),
        label=data.get("label", ""),
    )
    if node.kind is NodeKind.CONST:
        node.value = _decode_value(data.get("value"))
    fused = data.get("fused")
    if fused is not None:
        node.fused = (
            tuple(
                (op_name, tuple((kind, int(k)) for kind, k in refs))
                for op_name, refs in fused["steps"]
            ),
            int(fused.get("untuple", 0)),
        )
    donated = data.get("donated")
    if donated:
        node.donated = tuple(int(i) for i in donated)
    codegen = data.get("codegen")
    if codegen is not None:
        node.codegen = str(codegen)
    return node


def program_to_dict(program: GraphProgram) -> dict:
    """A JSON-representable dict for a whole compiled program."""
    return {
        "format": FORMAT_VERSION,
        "entry": program.entry,
        "templates": {
            name: {
                "params": t.params,
                "captures": t.captures,
                "result": [t.result.node, t.result.out] if t.result else None,
                "source_function": t.source_function,
                "nodes": [_encode_node(n) for n in t.nodes],
            }
            for name, t in program.templates.items()
        },
    }


def program_from_dict(data: dict) -> GraphProgram:
    """Rebuild (and re-finalize) a program from :func:`program_to_dict`."""
    version = data.get("format")
    if version != FORMAT_VERSION:
        raise GraphError(
            f"unsupported graph format {version!r} "
            f"(this build reads version {FORMAT_VERSION})"
        )
    program = GraphProgram(entry=data["entry"])
    for name, tdata in data["templates"].items():
        template = Template(
            name=name,
            params=list(tdata["params"]),
            captures=list(tdata["captures"]),
            source_function=tdata.get("source_function", ""),
        )
        template.nodes = [_decode_node(nd) for nd in tdata["nodes"]]
        result = tdata.get("result")
        if result is not None:
            template.result = Port(int(result[0]), int(result[1]))
        program.add(template.finalize())
    return program


def dumps(program: GraphProgram, indent: int | None = None) -> str:
    """Serialize a compiled program to JSON text."""
    return json.dumps(program_to_dict(program), indent=indent)


def loads(text: str) -> GraphProgram:
    """Load a compiled program from JSON text."""
    return program_from_dict(json.loads(text))


def save(program: GraphProgram, path: str) -> None:
    """Write a compiled program to a ``.dlc`` file."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(dumps(program))


def load(path: str) -> GraphProgram:
    """Read a compiled program from a ``.dlc`` file."""
    with open(path, "r", encoding="utf-8") as fh:
        return loads(fh.read())
