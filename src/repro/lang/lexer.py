"""Hand-written scanner for Delirium source text.

The scanner is a single forward pass with one character of lookahead.  It
produces a list of :class:`~repro.lang.tokens.Token` ending in an ``EOF``
token.  Comments run from ``--`` or ``#`` to end of line (the paper shows no
comment syntax; both forms are accepted so examples can be annotated).
"""

from __future__ import annotations

from ..errors import LexError
from .tokens import KEYWORDS, Token, TokenKind

_PUNCT: dict[str, TokenKind] = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    "<": TokenKind.LANGLE,
    ">": TokenKind.RANGLE,
    ",": TokenKind.COMMA,
    "=": TokenKind.EQUALS,
}


def _is_ident_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _is_ident_char(ch: str) -> bool:
    # ``$`` is accepted inside identifiers so compiler-generated names
    # (``loop$1``, ``if$2.then``) survive an unparse/re-parse round trip;
    # user programs conventionally never contain it.
    return ch.isalnum() or ch in "_$"


class Lexer:
    """Tokenizes one source string.

    Use :func:`tokenize` for the common case; the class exists so tests can
    poke at intermediate state and so the parallel-compilation case study
    can lex independent chunks with correct line offsets.

    Parameters
    ----------
    source:
        Delirium source text.
    first_line:
        Line number of the first line, used when lexing a chunk that was cut
        out of a larger file (parallel compilation, section 6 of the paper).
    """

    def __init__(self, source: str, first_line: int = 1) -> None:
        self.source = source
        self.pos = 0
        self.line = first_line
        self.column = 1

    # ------------------------------------------------------------------
    def _peek(self) -> str:
        if self.pos < len(self.source):
            return self.source[self.pos]
        return "\0"

    def _peek2(self) -> str:
        if self.pos + 1 < len(self.source):
            return self.source[self.pos + 1]
        return "\0"

    def _advance(self) -> str:
        ch = self.source[self.pos]
        self.pos += 1
        if ch == "\n":
            self.line += 1
            self.column = 1
        else:
            self.column += 1
        return ch

    def _skip_trivia(self) -> None:
        """Skip whitespace and comments."""
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "#" or (ch == "-" and self._peek2() == "-"):
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            else:
                return

    # ------------------------------------------------------------------
    def _number(self) -> Token:
        line, col = self.line, self.column
        start = self.pos
        if self._peek() == "-":
            # Negative literals exist so constant-folded ASTs can be
            # unparsed and re-parsed; Delirium has no infix operators, so
            # a '-' directly before a digit is unambiguous.
            self._advance()
        while self._peek().isdigit():
            self._advance()
        is_float = False
        if self._peek() == "." and self._peek2().isdigit():
            is_float = True
            self._advance()
            while self._peek().isdigit():
                self._advance()
        if self._peek() in "eE" and (
            self._peek2().isdigit()
            or (self._peek2() in "+-" and self.pos + 2 < len(self.source))
        ):
            is_float = True
            self._advance()
            if self._peek() in "+-":
                self._advance()
            if not self._peek().isdigit():
                raise LexError("malformed exponent in numeric literal", line, col)
            while self._peek().isdigit():
                self._advance()
        text = self.source[start : self.pos]
        if is_float:
            return Token(TokenKind.FLOAT, text, float(text), line, col)
        return Token(TokenKind.INT, text, int(text), line, col)

    def _string(self) -> Token:
        line, col = self.line, self.column
        quote = self._advance()
        chars: list[str] = []
        while True:
            if self.pos >= len(self.source):
                raise LexError("unterminated string literal", line, col)
            ch = self._advance()
            if ch == quote:
                break
            if ch == "\\":
                if self.pos >= len(self.source):
                    raise LexError("unterminated string escape", line, col)
                esc = self._advance()
                chars.append({"n": "\n", "t": "\t", "\\": "\\", quote: quote}.get(esc, esc))
            else:
                chars.append(ch)
        text = self.source[col - 1 :]  # informational only
        return Token(TokenKind.STRING, "".join(chars), "".join(chars), line, col)

    def _ident(self) -> Token:
        line, col = self.line, self.column
        start = self.pos
        while _is_ident_char(self._peek()):
            self._advance()
        text = self.source[start : self.pos]
        kind = KEYWORDS.get(text, TokenKind.IDENT)
        return Token(kind, text, None, line, col)

    # ------------------------------------------------------------------
    def tokens(self) -> list[Token]:
        """Scan the whole source and return the token list (with EOF)."""
        out: list[Token] = []
        while True:
            self._skip_trivia()
            if self.pos >= len(self.source):
                out.append(Token(TokenKind.EOF, "", None, self.line, self.column))
                return out
            ch = self._peek()
            if ch.isdigit() or (ch == "-" and self._peek2().isdigit()):
                out.append(self._number())
            elif ch in "\"'":
                out.append(self._string())
            elif _is_ident_start(ch):
                out.append(self._ident())
            elif ch in _PUNCT:
                line, col = self.line, self.column
                self._advance()
                out.append(Token(_PUNCT[ch], ch, None, line, col))
            else:
                raise LexError(f"unexpected character {ch!r}", self.line, self.column)


def tokenize(source: str, first_line: int = 1) -> list[Token]:
    """Tokenize ``source`` and return the token list ending in EOF.

    Raises
    ------
    LexError
        If the source contains characters outside the Delirium lexicon.
    """
    return Lexer(source, first_line=first_line).tokens()
