"""The Delirium preprocessor.

Section 5 of the paper: "these symbolic constants are replaced with values
by the pre-processor" (``NUM_ITER``, ``START_SLAB``, ``FINAL_SLAB``).  The
reproduction supports two equivalent sources of definitions:

* ``#define NAME replacement-text`` directive lines inside the source, and
* a ``defines`` mapping passed programmatically (the usual route for the
  case studies, which parameterize one source text over problem sizes).

Substitution is word-boundary aware (``NUM_ITER`` never matches inside
``NUM_ITERATIONS``), recursive (a replacement may mention other defined
names), and cycle-checked.  Directive lines are removed; all other line
numbers are preserved so parser errors still point at the right line.
"""

from __future__ import annotations

import re

from ..errors import PreprocessorError

_DIRECTIVE = re.compile(r"^\s*#define\s+([A-Za-z_]\w*)\s+(.*?)\s*$")
_WORD = re.compile(r"[A-Za-z_]\w*")


def extract_defines(source: str) -> tuple[str, dict[str, str]]:
    """Split ``#define`` directive lines out of ``source``.

    Returns the source with each directive line replaced by a blank line
    (preserving line numbering) and the mapping of collected definitions.

    Raises
    ------
    PreprocessorError
        If the same name is defined twice with different replacement text.
    """
    defines: dict[str, str] = {}
    out_lines: list[str] = []
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _DIRECTIVE.match(line)
        if m is None:
            out_lines.append(line)
            continue
        name, replacement = m.group(1), m.group(2)
        if name in defines and defines[name] != replacement:
            raise PreprocessorError(
                f"symbolic constant {name!r} redefined", lineno, 1
            )
        defines[name] = replacement
        out_lines.append("")
    return "\n".join(out_lines), defines


def _expand_word(
    name: str, defines: dict[str, str], active: tuple[str, ...]
) -> str:
    if name not in defines:
        return name
    if name in active:
        chain = " -> ".join(active + (name,))
        raise PreprocessorError(f"cyclic symbolic-constant definition: {chain}")
    replacement = defines[name]
    return _substitute(replacement, defines, active + (name,))


def _substitute(
    text: str, defines: dict[str, str], active: tuple[str, ...]
) -> str:
    return _WORD.sub(lambda m: _expand_word(m.group(0), defines, active), text)


def preprocess(source: str, defines: dict[str, object] | None = None) -> str:
    """Apply the preprocessor to ``source``.

    Parameters
    ----------
    source:
        Delirium source text, possibly containing ``#define`` directives.
    defines:
        Extra definitions.  Values may be any object; they are rendered with
        ``repr`` for ints/floats and inserted verbatim for strings (so a
        string value can be replacement *syntax*, e.g. an operator name).
        Programmatic definitions override in-source directives.

    Returns
    -------
    str
        Source text with all symbolic constants substituted and directive
        lines blanked.
    """
    stripped, collected = extract_defines(source)
    table: dict[str, str] = dict(collected)
    for name, value in (defines or {}).items():
        if not _WORD.fullmatch(name):
            raise PreprocessorError(f"invalid symbolic-constant name {name!r}")
        table[name] = value if isinstance(value, str) else repr(value)
    if not table:
        return stripped
    return _substitute(stripped, table, ())
