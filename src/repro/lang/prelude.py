"""The coordination-structure prelude (the section 9.2 extension).

Section 9.2 of the paper admits a limitation of the base language: "the
number of pieces into which a data structure is divided is chosen
explicitly by the Delirium programmer.  This is an awkward way to describe
high degrees of parallelism and cannot take into account the load of the
system.  We have addressed this problem by generalizing the language with
a notation that encompasses more complex coordination [22]."

That generalization (Lucco & Sharp, *Parallel Programming With
Coordination Structures*) never shipped with this paper, so we reproduce
its effect the way the base language itself suggests: a small prelude of
**first-class, recursive Delirium functions** whose divide-and-conquer
structure exposes parallelism whose width is a run-time *value*, not
source text.  Because any two bindings without a data dependency run in
parallel, each split level's halves execute concurrently, and the runtime
(not the program text) decides how many processors that occupies:

``par_index_map(f, lo, hi)``
    Apply ``f`` to every integer in ``[lo, hi)``; results as a list in
    index order.

``par_reduce(combine, leaf, lo, hi)``
    Balanced parallel reduction: ``leaf(i)`` at each index, ``combine``
    over a balanced binary tree.  The association tree is a function of
    ``lo``/``hi`` only — *not* of the schedule — so floating-point results
    stay deterministic (contrast the Table 2 baselines).

``par_split(f, pieces, n)``
    The dynamic generalization of the paper's hard-wired four-way
    split/bite/merge: apply ``f`` to each of ``n`` pieces of a package.

Compile with ``compile_source(src, prelude=True)`` to make these
available; they are ordinary Delirium, so they cost nothing unless used.
"""

#: Parameter and helper names inside the prelude carry a ``$`` so they can
#: never collide with user programs: Delirium's single-assignment rule
#: makes every top-level function name reserved program-wide, and users
#: legitimately define functions called ``f`` or ``n``.
PRELUDE_SOURCE = """
-- The coordination-structure prelude (section 9.2 extension).

par_index_map(p$f, p$lo, p$hi)
  if is_greater_equal(p$lo, p$hi)
  then nil()
  else if is_equal(sub(p$hi, p$lo), 1)
       then list1(p$f(p$lo))
       else let p$mid = idiv(add(p$lo, p$hi), 2)
                p$left = par_index_map(p$f, p$lo, p$mid)
                p$right = par_index_map(p$f, p$mid, p$hi)
            in append2(p$left, p$right)

par_reduce(p$combine, p$leaf, p$lo, p$hi)
  if is_equal(sub(p$hi, p$lo), 1)
  then p$leaf(p$lo)
  else let p$mid = idiv(add(p$lo, p$hi), 2)
           p$left = par_reduce(p$combine, p$leaf, p$lo, p$mid)
           p$right = par_reduce(p$combine, p$leaf, p$mid, p$hi)
       in p$combine(p$left, p$right)

par_split(p$f, p$pieces, p$n)
  let p$apply_at(p$i) p$f(element(p$pieces, p$i))
  in par_index_map(p$apply_at, 0, p$n)
"""

#: Names the prelude defines (collision checking and documentation).
PRELUDE_FUNCTIONS = ("par_index_map", "par_reduce", "par_split")
