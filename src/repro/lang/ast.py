"""Abstract syntax tree for Delirium.

The language has exactly the six constructs listed in section 3 of the
paper:

1. atomic values (integers, strings, floats) — :class:`Literal`, plus the
   distinguished :class:`Null` value used by conditional arms;
2. multiple values — :class:`TupleExpr` construction and
   :class:`TupleBinding` decomposition;
3. let bindings — :class:`Let` with :class:`SimpleBinding`,
   :class:`TupleBinding`, or :class:`FunBinding` (local function
   definition);
4. conditionals — :class:`If`;
5. iteration — :class:`Iterate` (compiled into tail-recursive functions by
   the lowering pass);
6. function or operator application — :class:`Apply`.

Every node carries a source position and supports :meth:`Node.children` so
generic tree walks (the optimization passes and the parallel tree-walk case
study) need no per-node dispatch.  Nodes are mutable dataclasses: the
optimizer rewrites trees in place where convenient and rebuilds where not.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Iterator


@dataclass
class Node:
    """Base class for all AST nodes."""

    line: int = field(default=0, kw_only=True, compare=False)
    column: int = field(default=0, kw_only=True, compare=False)

    def children(self) -> Iterator["Node"]:
        """Yield direct child nodes, in source order."""
        for f in fields(self):
            v = getattr(self, f.name)
            if isinstance(v, Node):
                yield v
            elif isinstance(v, (list, tuple)):
                for item in v:
                    if isinstance(item, Node):
                        yield item

    def walk(self) -> Iterator["Node"]:
        """Yield this node and all descendants, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()

    def size(self) -> int:
        """Number of nodes in this subtree (the paper's subtree 'weight')."""
        return sum(1 for _ in self.walk())


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr(Node):
    """Base class for expression nodes."""


@dataclass
class Literal(Expr):
    """An atomic value: integer, float, or string."""

    value: object = None


@dataclass
class Null(Expr):
    """The distinguished ``NULL`` value (used e.g. by failed queens tries)."""


@dataclass
class Var(Expr):
    """A reference to a bound name (variable, parameter, or function)."""

    name: str = ""


@dataclass
class TupleExpr(Expr):
    """Multiple-value construction: ``<e1, e2, ..., en>``."""

    items: list[Expr] = field(default_factory=list)


@dataclass
class Apply(Expr):
    """Function or operator application: ``callee(arg1, ..., argn)``.

    ``callee`` is an arbitrary expression; the common case is a :class:`Var`
    naming an operator or a Delirium function.  When the callee is not a
    statically known operator the compiler emits a call-closure node.
    """

    callee: Expr = None  # type: ignore[assignment]
    args: list[Expr] = field(default_factory=list)


@dataclass
class If(Expr):
    """Conditional: ``if cond then then_expr else else_expr``."""

    cond: Expr = None  # type: ignore[assignment]
    then: Expr = None  # type: ignore[assignment]
    orelse: Expr = None  # type: ignore[assignment]


# ---------------------------------------------------------------------------
# Bindings
# ---------------------------------------------------------------------------


@dataclass
class Binding(Node):
    """Base class for the three binding forms inside ``let``."""

    def bound_names(self) -> list[str]:
        raise NotImplementedError


@dataclass
class SimpleBinding(Binding):
    """``name = expr``."""

    name: str = ""
    expr: Expr = None  # type: ignore[assignment]

    def bound_names(self) -> list[str]:
        return [self.name]


@dataclass
class TupleBinding(Binding):
    """``<a, b, c> = expr`` — decompose a multiple-value package."""

    names: list[str] = field(default_factory=list)
    expr: Expr = None  # type: ignore[assignment]

    def bound_names(self) -> list[str]:
        return list(self.names)


@dataclass
class FunBinding(Binding):
    """A local function definition appearing as a let binding."""

    func: "FunDef" = None  # type: ignore[assignment]

    def bound_names(self) -> list[str]:
        return [self.func.name]


@dataclass
class Let(Expr):
    """``let b1 ... bn in body``.

    Bindings in one ``let`` are mutually visible only lexically downward
    (each binding sees earlier bindings and enclosing scopes; local function
    definitions additionally see themselves, enabling recursion).  Any two
    bindings without a data dependency may execute in parallel — that is the
    whole point of the notation.
    """

    bindings: list[Binding] = field(default_factory=list)
    body: Expr = None  # type: ignore[assignment]


# ---------------------------------------------------------------------------
# Iteration
# ---------------------------------------------------------------------------


@dataclass
class LoopVar(Node):
    """One loop variable of an ``iterate``: ``target = init, update``.

    ``target`` is a single name (the usual case).  ``init`` is evaluated
    once before the first test; ``update`` is evaluated on every iteration
    whose test succeeded, with all loop variables of the *previous*
    iteration in scope (simultaneous rebinding, like Scheme's ``do``).
    """

    name: str = ""
    init: Expr = None  # type: ignore[assignment]
    update: Expr = None  # type: ignore[assignment]


@dataclass
class Iterate(Expr):
    """``iterate { v1=i1,u1  v2=i2,u2 ... } while cond, result expr``.

    Semantics (section 5 of the paper; while-do): bind every ``init``;
    while ``cond`` holds, simultaneously rebind every variable to its
    ``update``; when ``cond`` fails, the value of the construct is
    ``result``.  The lowering pass compiles this to a tail-recursive
    function, which the runtime executes with activation reuse.
    """

    loopvars: list[LoopVar] = field(default_factory=list)
    cond: Expr = None  # type: ignore[assignment]
    result: Expr = None  # type: ignore[assignment]


# ---------------------------------------------------------------------------
# Top level
# ---------------------------------------------------------------------------


@dataclass
class FunDef(Node):
    """A named function: ``name(p1, ..., pn) body``."""

    name: str = ""
    params: list[str] = field(default_factory=list)
    body: Expr = None  # type: ignore[assignment]


@dataclass
class Program(Node):
    """A whole Delirium program: a set of functions, one called ``main``."""

    functions: list[FunDef] = field(default_factory=list)

    def function(self, name: str) -> FunDef:
        """Return the function named ``name`` (KeyError if absent)."""
        for f in self.functions:
            if f.name == name:
                return f
        raise KeyError(name)

    def function_names(self) -> list[str]:
        return [f.name for f in self.functions]


# ---------------------------------------------------------------------------
# Unparser
# ---------------------------------------------------------------------------


def unparse(node: Node, indent: int = 0) -> str:
    """Render an AST back to concrete Delirium syntax.

    The output re-parses to an equal AST (tested property), which makes it
    usable both as a debugging aid and as the canonical structural key for
    common-subexpression elimination.
    """
    pad = "  " * indent
    if isinstance(node, Program):
        return "\n\n".join(unparse(f) for f in node.functions) + "\n"
    if isinstance(node, FunDef):
        head = f"{node.name}({', '.join(node.params)})"
        return f"{pad}{head}\n{unparse(node.body, indent + 1)}"
    if isinstance(node, Literal):
        if isinstance(node.value, str):
            escaped = node.value.replace("\\", "\\\\").replace('"', '\\"')
            return f'{pad}"{escaped}"'
        return f"{pad}{node.value!r}"
    if isinstance(node, Null):
        return f"{pad}NULL"
    if isinstance(node, Var):
        return f"{pad}{node.name}"
    if isinstance(node, TupleExpr):
        inner = ", ".join(unparse(e).strip() for e in node.items)
        return f"{pad}<{inner}>"
    if isinstance(node, Apply):
        callee = unparse(node.callee).strip()
        if not isinstance(node.callee, Var):
            callee = f"({callee})"
        args = ", ".join(unparse(a).strip() for a in node.args)
        return f"{pad}{callee}({args})"
    if isinstance(node, If):
        return (
            f"{pad}if {unparse(node.cond).strip()}\n"
            f"{pad}then {unparse(node.then).strip()}\n"
            f"{pad}else {unparse(node.orelse).strip()}"
        )
    if isinstance(node, SimpleBinding):
        return f"{pad}{node.name} = {unparse(node.expr).strip()}"
    if isinstance(node, TupleBinding):
        return f"{pad}<{', '.join(node.names)}> = {unparse(node.expr).strip()}"
    if isinstance(node, FunBinding):
        return unparse(node.func, indent)
    if isinstance(node, Let):
        lines = [f"{pad}let"]
        for b in node.bindings:
            lines.append(unparse(b, indent + 1))
        lines.append(f"{pad}in {unparse(node.body).strip()}")
        return "\n".join(lines)
    if isinstance(node, LoopVar):
        return (
            f"{pad}{node.name} = {unparse(node.init).strip()},"
            f" {unparse(node.update).strip()}"
        )
    if isinstance(node, Iterate):
        lines = [f"{pad}iterate", f"{pad}{{"]
        for lv in node.loopvars:
            lines.append(unparse(lv, indent + 1))
        lines.append(f"{pad}}}")
        lines.append(f"{pad}while {unparse(node.cond).strip()},")
        lines.append(f"{pad}result {unparse(node.result).strip()}")
        return "\n".join(lines)
    raise TypeError(f"cannot unparse {type(node).__name__}")
