"""Token definitions for the Delirium scanner.

The language is deliberately tiny (six constructs, section 3 of the paper),
so the token set is small: literals, identifiers, keywords, and a handful of
punctuation marks.  Angle brackets serve double duty for multiple-value
packages (``<a,b,c>``) — Delirium has no comparison operators at the syntax
level (comparisons are ordinary operators such as ``is_equal``), so there is
no ambiguity.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenKind(enum.Enum):
    """Kinds of lexical tokens."""

    INT = "int"
    FLOAT = "float"
    STRING = "string"
    IDENT = "ident"
    # Keywords.
    LET = "let"
    IN = "in"
    IF = "if"
    THEN = "then"
    ELSE = "else"
    ITERATE = "iterate"
    WHILE = "while"
    RESULT = "result"
    NULL = "NULL"
    # Punctuation.
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    LANGLE = "<"
    RANGLE = ">"
    COMMA = ","
    EQUALS = "="
    EOF = "<eof>"


#: Reserved words, mapped to their token kinds.  ``NULL`` is case sensitive
#: exactly as written in the paper's examples.
KEYWORDS: dict[str, TokenKind] = {
    "let": TokenKind.LET,
    "in": TokenKind.IN,
    "if": TokenKind.IF,
    "then": TokenKind.THEN,
    "else": TokenKind.ELSE,
    "iterate": TokenKind.ITERATE,
    "while": TokenKind.WHILE,
    "result": TokenKind.RESULT,
    "NULL": TokenKind.NULL,
}


@dataclass(frozen=True, slots=True)
class Token:
    """One lexical token.

    Attributes
    ----------
    kind:
        The :class:`TokenKind`.
    text:
        The exact source spelling (for literals, the unconverted text).
    value:
        The converted literal value for INT/FLOAT/STRING tokens, otherwise
        ``None``.
    line, column:
        1-based position of the first character of the token.
    """

    kind: TokenKind
    text: str
    value: object
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.name}, {self.text!r} @{self.line}:{self.column})"
