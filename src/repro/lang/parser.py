"""Recursive-descent parser for Delirium.

Grammar (whitespace-insensitive; ``--``/``#`` comments to end of line)::

    program   := fundef*
    fundef    := IDENT '(' [IDENT {',' IDENT}] ')' expr
    expr      := let | if | iterate | application
    let       := 'let' binding+ 'in' expr
    binding   := IDENT '=' expr
               | '<' IDENT {',' IDENT} '>' '=' expr
               | fundef                      -- local function definition
    if        := 'if' expr 'then' expr 'else' expr
    iterate   := 'iterate' '{' loopvar+ '}' 'while' expr [','] 'result' expr
    loopvar   := IDENT '=' expr ',' expr [',']
    application := primary { '(' [expr {',' expr}] ')' }
    primary   := INT | FLOAT | STRING | 'NULL' | IDENT
               | '(' expr ')'
               | '<' expr {',' expr} '>'     -- multiple-value construction

Application is greedy: ``f(a)(b)`` applies the result of ``f(a)`` to ``b``
(functions are first class).  There are no infix operators — comparisons
and arithmetic are ordinary operators such as ``is_equal`` and ``incr``,
exactly as in the paper's examples.
"""

from __future__ import annotations

from ..errors import ParseError
from . import ast
from .lexer import tokenize
from .tokens import Token, TokenKind


class Parser:
    """Parses a token stream into AST nodes."""

    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- token helpers --------------------------------------------------
    def _peek(self, offset: int = 0) -> Token:
        i = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[i]

    def _at(self, kind: TokenKind, offset: int = 0) -> bool:
        return self._peek(offset).kind is kind

    def _advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind is not TokenKind.EOF:
            self.pos += 1
        return tok

    def _expect(self, kind: TokenKind, what: str = "") -> Token:
        tok = self._peek()
        if tok.kind is not kind:
            want = what or kind.value
            raise ParseError(
                f"expected {want}, found {tok.kind.value!r} ({tok.text!r})",
                tok.line,
                tok.column,
            )
        return self._advance()

    # -- top level -------------------------------------------------------
    def parse_program(self) -> ast.Program:
        """Parse a whole program: one or more function definitions."""
        functions: list[ast.FunDef] = []
        first = self._peek()
        while not self._at(TokenKind.EOF):
            functions.append(self._fundef())
        if not functions:
            raise ParseError("empty program", first.line, first.column)
        return ast.Program(functions=functions, line=first.line, column=first.column)

    def _fundef(self) -> ast.FunDef:
        name_tok = self._expect(TokenKind.IDENT, "function name")
        self._expect(TokenKind.LPAREN)
        params: list[str] = []
        if not self._at(TokenKind.RPAREN):
            params.append(self._expect(TokenKind.IDENT, "parameter name").text)
            while self._at(TokenKind.COMMA):
                self._advance()
                params.append(self._expect(TokenKind.IDENT, "parameter name").text)
        self._expect(TokenKind.RPAREN)
        body = self.parse_expr()
        return ast.FunDef(
            name=name_tok.text,
            params=params,
            body=body,
            line=name_tok.line,
            column=name_tok.column,
        )

    # -- expressions -----------------------------------------------------
    def parse_expr(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind is TokenKind.LET:
            return self._let()
        if tok.kind is TokenKind.IF:
            return self._if()
        if tok.kind is TokenKind.ITERATE:
            return self._iterate()
        return self._application()

    def _let(self) -> ast.Expr:
        let_tok = self._expect(TokenKind.LET)
        bindings: list[ast.Binding] = [self._binding()]
        while not self._at(TokenKind.IN):
            if self._at(TokenKind.EOF):
                raise ParseError(
                    "unterminated let: expected 'in'", let_tok.line, let_tok.column
                )
            bindings.append(self._binding())
        self._expect(TokenKind.IN)
        body = self.parse_expr()
        return ast.Let(
            bindings=bindings, body=body, line=let_tok.line, column=let_tok.column
        )

    def _binding(self) -> ast.Binding:
        tok = self._peek()
        if tok.kind is TokenKind.LANGLE:
            self._advance()
            names = [self._expect(TokenKind.IDENT, "name in tuple binding").text]
            while self._at(TokenKind.COMMA):
                self._advance()
                names.append(self._expect(TokenKind.IDENT, "name in tuple binding").text)
            self._expect(TokenKind.RANGLE)
            self._expect(TokenKind.EQUALS)
            expr = self.parse_expr()
            return ast.TupleBinding(
                names=names, expr=expr, line=tok.line, column=tok.column
            )
        if tok.kind is TokenKind.IDENT:
            if self._at(TokenKind.EQUALS, offset=1):
                name = self._advance().text
                self._expect(TokenKind.EQUALS)
                expr = self.parse_expr()
                return ast.SimpleBinding(
                    name=name, expr=expr, line=tok.line, column=tok.column
                )
            if self._at(TokenKind.LPAREN, offset=1):
                func = self._fundef()
                return ast.FunBinding(func=func, line=tok.line, column=tok.column)
        raise ParseError(
            f"expected a binding, found {tok.kind.value!r}", tok.line, tok.column
        )

    def _if(self) -> ast.Expr:
        if_tok = self._expect(TokenKind.IF)
        cond = self.parse_expr()
        self._expect(TokenKind.THEN)
        then = self.parse_expr()
        self._expect(TokenKind.ELSE)
        orelse = self.parse_expr()
        return ast.If(
            cond=cond, then=then, orelse=orelse, line=if_tok.line, column=if_tok.column
        )

    def _iterate(self) -> ast.Expr:
        it_tok = self._expect(TokenKind.ITERATE)
        self._expect(TokenKind.LBRACE)
        loopvars: list[ast.LoopVar] = [self._loopvar()]
        while not self._at(TokenKind.RBRACE):
            if self._at(TokenKind.EOF):
                raise ParseError(
                    "unterminated iterate: expected '}'", it_tok.line, it_tok.column
                )
            loopvars.append(self._loopvar())
        self._expect(TokenKind.RBRACE)
        self._expect(TokenKind.WHILE)
        cond = self.parse_expr()
        if self._at(TokenKind.COMMA):
            self._advance()
        self._expect(TokenKind.RESULT)
        result = self.parse_expr()
        return ast.Iterate(
            loopvars=loopvars,
            cond=cond,
            result=result,
            line=it_tok.line,
            column=it_tok.column,
        )

    def _loopvar(self) -> ast.LoopVar:
        name_tok = self._expect(TokenKind.IDENT, "loop variable name")
        self._expect(TokenKind.EQUALS)
        init = self.parse_expr()
        self._expect(TokenKind.COMMA, "',' between init and update expressions")
        update = self.parse_expr()
        # Optional trailing comma, as in the paper's retina listing.
        if self._at(TokenKind.COMMA) and not self._at(TokenKind.RBRACE, offset=1):
            # Only consume if the comma is truly trailing (next token starts a
            # new loop variable); a comma directly before '}' is also eaten.
            if self._at(TokenKind.IDENT, offset=1) and self._at(
                TokenKind.EQUALS, offset=2
            ):
                self._advance()
        elif self._at(TokenKind.COMMA) and self._at(TokenKind.RBRACE, offset=1):
            self._advance()
        return ast.LoopVar(
            name=name_tok.text,
            init=init,
            update=update,
            line=name_tok.line,
            column=name_tok.column,
        )

    def _application(self) -> ast.Expr:
        expr = self._primary()
        while self._at(TokenKind.LPAREN):
            lp = self._advance()
            args: list[ast.Expr] = []
            if not self._at(TokenKind.RPAREN):
                args.append(self.parse_expr())
                while self._at(TokenKind.COMMA):
                    self._advance()
                    args.append(self.parse_expr())
            self._expect(TokenKind.RPAREN)
            expr = ast.Apply(callee=expr, args=args, line=lp.line, column=lp.column)
        return expr

    def _primary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind in (TokenKind.INT, TokenKind.FLOAT, TokenKind.STRING):
            self._advance()
            return ast.Literal(value=tok.value, line=tok.line, column=tok.column)
        if tok.kind is TokenKind.NULL:
            self._advance()
            return ast.Null(line=tok.line, column=tok.column)
        if tok.kind is TokenKind.IDENT:
            self._advance()
            return ast.Var(name=tok.text, line=tok.line, column=tok.column)
        if tok.kind is TokenKind.LPAREN:
            self._advance()
            inner = self.parse_expr()
            self._expect(TokenKind.RPAREN)
            return inner
        if tok.kind is TokenKind.LANGLE:
            self._advance()
            items = [self.parse_expr()]
            while self._at(TokenKind.COMMA):
                self._advance()
                items.append(self.parse_expr())
            self._expect(TokenKind.RANGLE)
            return ast.TupleExpr(items=items, line=tok.line, column=tok.column)
        raise ParseError(
            f"expected an expression, found {tok.kind.value!r} ({tok.text!r})",
            tok.line,
            tok.column,
        )


def parse_program(source: str, first_line: int = 1) -> ast.Program:
    """Tokenize and parse a whole Delirium program."""
    parser = Parser(tokenize(source, first_line=first_line))
    program = parser.parse_program()
    return program


def parse_expression(source: str) -> ast.Expr:
    """Tokenize and parse a single expression (testing/REPL convenience)."""
    parser = Parser(tokenize(source))
    expr = parser.parse_expr()
    tok = parser._peek()
    if tok.kind is not TokenKind.EOF:
        raise ParseError(
            f"trailing input after expression: {tok.text!r}", tok.line, tok.column
        )
    return expr
