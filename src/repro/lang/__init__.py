"""Delirium language front end: tokens, lexer, AST, parser, preprocessor."""

from . import ast
from .lexer import Lexer, tokenize
from .parser import Parser, parse_expression, parse_program
from .preprocessor import extract_defines, preprocess
from .tokens import KEYWORDS, Token, TokenKind

__all__ = [
    "ast",
    "Lexer",
    "tokenize",
    "Parser",
    "parse_expression",
    "parse_program",
    "extract_defines",
    "preprocess",
    "KEYWORDS",
    "Token",
    "TokenKind",
]
