"""Environment analysis for the Pythia compiler.

This is the "Env Analysis" pass of Table 1 in the paper.  It walks every
function, building lexical scopes, and

* enforces **single assignment**: a name may not be rebound while an
  existing binding for it is visible (params, let bindings, loop variables,
  and function names all count);
* resolves every name to one of *parameter*, *local binding*, *loop
  variable*, *local function*, *top-level function*, or *operator* — and,
  in strict mode, rejects names that resolve to none of these;
* checks the arity of calls whose callee is a statically known Delirium
  function (operator arities are checked by the registry at run time, since
  operators are external code);
* records, per function, the ordered free variables and the set of
  statically known callees — the inputs for recursion detection, closure
  conversion, and the purity analysis.

Local functions are given qualified names (``outer.inner``); the compiler's
generated loop functions later follow the same convention (``outer.loop$1``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import (
    ArityError,
    SingleAssignmentError,
    UnboundNameError,
)
from ..lang import ast


@dataclass
class FunctionInfo:
    """What environment analysis learned about one (possibly local) function."""

    qualname: str
    params: list[str]
    #: Free variables in first-use order (names bound in an enclosing
    #: function that this function's body reads).  These become the
    #: template's captures.
    free: list[str] = field(default_factory=list)
    #: Qualified names of Delirium functions this function applies directly.
    calls: set[str] = field(default_factory=set)
    #: Names of operators this function applies directly.
    op_calls: set[str] = field(default_factory=set)
    #: True when some callee is a computed value (first-class function),
    #: so the static call graph is incomplete for this function.
    has_dynamic_calls: bool = False
    #: Number of AST nodes in the body (the tree 'weight' used by the
    #: parallel compilation case study and the inliner's size threshold).
    body_size: int = 0


class _Scope:
    """One lexical scope level: a mapping from names to resolution tags."""

    __slots__ = ("bindings", "parent", "function")

    def __init__(self, parent: "_Scope | None", function: str) -> None:
        self.bindings: dict[str, tuple[str, str]] = {}
        self.parent = parent
        #: Qualified name of the function whose body this scope is part of.
        self.function = function

    def lookup(self, name: str) -> tuple[str, str, str] | None:
        """Resolve ``name``; returns ``(kind, detail, owner_function)``."""
        scope: _Scope | None = self
        while scope is not None:
            hit = scope.bindings.get(name)
            if hit is not None:
                return hit[0], hit[1], scope.function
            scope = scope.parent
        return None

    def bind(self, name: str, kind: str, detail: str, node: ast.Node) -> None:
        if self.lookup(name) is not None:
            raise SingleAssignmentError(
                f"{name!r} is already bound; Delirium is single-assignment",
                node.line,
                node.column,
            )
        self.bindings[name] = (kind, detail)


@dataclass
class EnvAnalysis:
    """Result of environment analysis over a whole program."""

    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    #: Map from unqualified top-level names to themselves (convenience).
    top_level: list[str] = field(default_factory=list)

    def info(self, qualname: str) -> FunctionInfo:
        return self.functions[qualname]


class _Analyzer:
    def __init__(
        self,
        program: ast.Program,
        known_operators: set[str] | None,
        strict: bool,
    ) -> None:
        self.program = program
        self.known_operators = known_operators
        self.strict = strict
        self.result = EnvAnalysis()
        self.top_level_arity: dict[str, int] = {}

    # ------------------------------------------------------------------
    def run(self) -> EnvAnalysis:
        seen: set[str] = set()
        for f in self.program.functions:
            if f.name in seen:
                raise SingleAssignmentError(
                    f"function {f.name!r} defined more than once",
                    f.line,
                    f.column,
                )
            seen.add(f.name)
            self.top_level_arity[f.name] = len(f.params)
        self.result.top_level = list(seen)
        globals_scope = _Scope(None, "")
        for f in self.program.functions:
            globals_scope.bindings[f.name] = ("topfun", f.name)
        for f in self.program.functions:
            self._function(f, f.name, globals_scope)
        return self.result

    # ------------------------------------------------------------------
    def _function(self, f: ast.FunDef, qualname: str, outer: _Scope) -> FunctionInfo:
        info = FunctionInfo(qualname=qualname, params=list(f.params))
        info.body_size = f.body.size()
        self.result.functions[qualname] = info
        scope = _Scope(outer, qualname)
        for p in f.params:
            scope.bind(p, "param", p, f)
        self._expr(f.body, scope, info)
        return info

    def _note_free(self, name: str, owner: str, info: FunctionInfo) -> None:
        """Record a read of ``name`` bound in function ``owner``."""
        if owner != info.qualname and owner != "" and name not in info.free:
            info.free.append(name)

    def _resolve_use(
        self, node: ast.Var, scope: _Scope, info: FunctionInfo
    ) -> tuple[str, str]:
        hit = scope.lookup(node.name)
        if hit is not None:
            kind, detail, owner = hit
            self._note_free(node.name, owner, info)
            return kind, detail
        if self.known_operators is not None and node.name in self.known_operators:
            return "operator", node.name
        if self.known_operators is None:
            # Without a registry we assume external operator; the runtime
            # reports UnknownOperatorError if it is not.
            return "operator", node.name
        if self.strict:
            raise UnboundNameError(
                f"{node.name!r} is not bound, not a function, and not a "
                "registered operator",
                node.line,
                node.column,
            )
        return "operator", node.name

    # ------------------------------------------------------------------
    def _expr(self, e: ast.Expr, scope: _Scope, info: FunctionInfo) -> None:
        if isinstance(e, (ast.Literal, ast.Null)):
            return
        if isinstance(e, ast.Var):
            self._resolve_use(e, scope, info)
            return
        if isinstance(e, ast.TupleExpr):
            for item in e.items:
                self._expr(item, scope, info)
            return
        if isinstance(e, ast.Apply):
            self._apply(e, scope, info)
            return
        if isinstance(e, ast.If):
            self._expr(e.cond, scope, info)
            self._expr(e.then, scope, info)
            self._expr(e.orelse, scope, info)
            return
        if isinstance(e, ast.Let):
            self._let(e, scope, info)
            return
        if isinstance(e, ast.Iterate):
            self._iterate(e, scope, info)
            return
        raise TypeError(f"unexpected AST node {type(e).__name__}")

    def _apply(self, e: ast.Apply, scope: _Scope, info: FunctionInfo) -> None:
        if isinstance(e.callee, ast.Var):
            kind, detail = self._resolve_use(e.callee, scope, info)
            if kind == "topfun":
                info.calls.add(detail)
                want = self.top_level_arity[detail]
                if len(e.args) != want:
                    raise ArityError(
                        f"{detail!r} takes {want} argument(s), got {len(e.args)}",
                        e.line,
                        e.column,
                    )
            elif kind == "localfun":
                info.calls.add(detail)
                local = self.result.functions.get(detail)
                if local is not None and len(e.args) != len(local.params):
                    raise ArityError(
                        f"{detail!r} takes {len(local.params)} argument(s), "
                        f"got {len(e.args)}",
                        e.line,
                        e.column,
                    )
            elif kind == "operator":
                info.op_calls.add(detail)
            else:
                # Calling through a variable: a first-class function value.
                info.has_dynamic_calls = True
        else:
            self._expr(e.callee, scope, info)
            info.has_dynamic_calls = True
        for a in e.args:
            self._expr(a, scope, info)

    def _let(self, e: ast.Let, scope: _Scope, info: FunctionInfo) -> None:
        inner = _Scope(scope, info.qualname)
        for b in e.bindings:
            if isinstance(b, ast.SimpleBinding):
                self._expr(b.expr, inner, info)
                inner.bind(b.name, "local", b.name, b)
            elif isinstance(b, ast.TupleBinding):
                self._expr(b.expr, inner, info)
                for n in b.names:
                    inner.bind(n, "local", n, b)
            elif isinstance(b, ast.FunBinding):
                qual = f"{info.qualname}.{b.func.name}"
                # Bind the name first so the local function can recurse.
                inner.bind(b.func.name, "localfun", qual, b)
                sub = self._function(b.func, qual, inner)
                # Free variables of the local function that are not bound in
                # *this* function propagate outward as our own free vars.
                for name in sub.free:
                    hit = inner.lookup(name)
                    if hit is not None:
                        _, _, owner = hit
                        self._note_free(name, owner, info)
            else:  # pragma: no cover - parser produces only the above
                raise TypeError(f"unexpected binding {type(b).__name__}")
        self._expr(e.body, inner, info)

    def _iterate(self, e: ast.Iterate, scope: _Scope, info: FunctionInfo) -> None:
        # Init expressions see only the enclosing scope.
        for lv in e.loopvars:
            self._expr(lv.init, scope, info)
        inner = _Scope(scope, info.qualname)
        for lv in e.loopvars:
            inner.bind(lv.name, "local", lv.name, lv)
        self._expr(e.cond, inner, info)
        for lv in e.loopvars:
            self._expr(lv.update, inner, info)
        self._expr(e.result, inner, info)


def analyze(
    program: ast.Program,
    known_operators: set[str] | None = None,
    strict: bool = True,
) -> EnvAnalysis:
    """Run environment analysis over ``program``.

    Parameters
    ----------
    program:
        The parsed (and macro-expanded) program.  Iterate constructs may be
        present (analysis happens before lowering) or absent (it is safe to
        re-run afterwards, which the driver does to refresh the call graph).
    known_operators:
        Names of registered operators.  When given along with
        ``strict=True``, any unresolvable name raises
        :class:`~repro.errors.UnboundNameError`.  When ``None``, unknown
        names are assumed to be operators and left for the runtime to check.
    strict:
        Enable unbound-name errors (requires ``known_operators``).

    Raises
    ------
    SingleAssignmentError, UnboundNameError, ArityError
    """
    return _Analyzer(program, known_operators, strict).run()
