"""Lowering: compile ``iterate`` into tail-recursive local functions.

Section 3 of the paper: "iteration — this is compiled into tail-recursive
functions which are handled efficiently in the run-time system."

The transformation for::

    iterate { v1 = i1, u1   ...   vn = in, un }
    while c, result r

is::

    let loop$k(v1, ..., vn)
          if c then loop$k(u1, ..., un) else r
    in loop$k(i1, ..., in)

which gives exactly the paper's while-do semantics: the inits are evaluated
once, the condition is tested before every update round, all updates of one
round see the *previous* round's values (they are the parameters), and the
result expression is evaluated with the final values.  The recursive call
sits in tail position of the then-arm, so the runtime executes the loop
with constant activation space via continuation inheritance.

Lowering rewrites innermost iterates first so nested loops (retina's
``main``/``do_convol``) each get their own loop function.
"""

from __future__ import annotations

from ..lang import ast
from .analysis import FreshNames


def _all_names(program: ast.Program) -> set[str]:
    """Every identifier appearing anywhere (for fresh-name generation)."""
    names: set[str] = set()
    for node in program.walk():
        if isinstance(node, ast.Var):
            names.add(node.name)
        elif isinstance(node, ast.FunDef):
            names.add(node.name)
            names.update(node.params)
        elif isinstance(node, ast.SimpleBinding):
            names.add(node.name)
        elif isinstance(node, ast.TupleBinding):
            names.update(node.names)
        elif isinstance(node, ast.LoopVar):
            names.add(node.name)
    return names


def lower_iterate_expr(it: ast.Iterate, fresh: FreshNames) -> ast.Expr:
    """Lower one (already child-lowered) iterate node."""
    loop_name = fresh.fresh("loop")
    params = [lv.name for lv in it.loopvars]
    recursive_call = ast.Apply(
        callee=ast.Var(name=loop_name, line=it.line, column=it.column),
        args=[lv.update for lv in it.loopvars],
        line=it.line,
        column=it.column,
    )
    body = ast.If(
        cond=it.cond,
        then=recursive_call,
        orelse=it.result,
        line=it.line,
        column=it.column,
    )
    fundef = ast.FunDef(
        name=loop_name,
        params=params,
        body=body,
        line=it.line,
        column=it.column,
    )
    first_call = ast.Apply(
        callee=ast.Var(name=loop_name, line=it.line, column=it.column),
        args=[lv.init for lv in it.loopvars],
        line=it.line,
        column=it.column,
    )
    return ast.Let(
        bindings=[ast.FunBinding(func=fundef, line=it.line, column=it.column)],
        body=first_call,
        line=it.line,
        column=it.column,
    )


def _lower(e: ast.Expr, fresh: FreshNames) -> ast.Expr:
    if isinstance(e, (ast.Literal, ast.Null, ast.Var)):
        return e
    if isinstance(e, ast.TupleExpr):
        e.items = [_lower(item, fresh) for item in e.items]
        return e
    if isinstance(e, ast.Apply):
        e.callee = _lower(e.callee, fresh)
        e.args = [_lower(a, fresh) for a in e.args]
        return e
    if isinstance(e, ast.If):
        e.cond = _lower(e.cond, fresh)
        e.then = _lower(e.then, fresh)
        e.orelse = _lower(e.orelse, fresh)
        return e
    if isinstance(e, ast.Let):
        for b in e.bindings:
            if isinstance(b, (ast.SimpleBinding, ast.TupleBinding)):
                b.expr = _lower(b.expr, fresh)
            elif isinstance(b, ast.FunBinding):
                b.func.body = _lower(b.func.body, fresh)
        e.body = _lower(e.body, fresh)
        return e
    if isinstance(e, ast.Iterate):
        for lv in e.loopvars:
            lv.init = _lower(lv.init, fresh)
            lv.update = _lower(lv.update, fresh)
        e.cond = _lower(e.cond, fresh)
        e.result = _lower(e.result, fresh)
        return lower_iterate_expr(e, fresh)
    raise TypeError(f"unexpected AST node {type(e).__name__}")


def lower_program(program: ast.Program) -> ast.Program:
    """Lower every iterate in ``program`` (in place; returns the program).

    Idempotent: a program with no iterates is returned unchanged.
    """
    fresh = FreshNames(_all_names(program))
    for f in program.functions:
        f.body = _lower(f.body, fresh)
    return program
