"""Pythia: the optimizing Delirium compiler."""

from .analysis import ProgramAnalysis, analyze_program, free_variables
from .driver import (
    PASS_NAMES,
    CompiledProgram,
    compile_file,
    compile_source,
    run_source,
)
from .graphgen import generate_graphs
from .lowering import lower_program
from .passes.pipeline import PASS_ORDER, OptimizationReport, optimize
from .symtab import EnvAnalysis, FunctionInfo, analyze

__all__ = [
    "PASS_NAMES",
    "PASS_ORDER",
    "CompiledProgram",
    "OptimizationReport",
    "EnvAnalysis",
    "FunctionInfo",
    "ProgramAnalysis",
    "analyze",
    "analyze_program",
    "compile_file",
    "compile_source",
    "free_variables",
    "generate_graphs",
    "lower_program",
    "optimize",
    "run_source",
]
