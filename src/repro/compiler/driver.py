"""The Pythia compiler driver: source text to coordination graphs.

Pipeline (the pass names and order are exactly the rows of Table 1 in the
paper, and per-pass wall times are recorded under those names)::

    Lexing            scan the (macro-expanded) source into tokens
    Parsing           recursive-descent parse to an AST
    Macro Expansion   symbolic-constant substitution (textual, but timed
                      as its own pass like the original)
    Env Analysis      scoping, single-assignment, arity, free variables
    Optimization      inline + constprop + CSE + DCE to fixpoint
    Graph Conversion  iterate lowering + template generation

The result is a :class:`CompiledProgram`: coordination graphs plus the
registry they were checked against, runnable on any executor.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from ..graph.ir import GraphProgram
from ..lang import ast
from ..lang.lexer import tokenize
from ..lang.parser import Parser
from ..lang.preprocessor import preprocess
from ..runtime.executors import RunResult, SequentialExecutor
from ..runtime.operators import OperatorRegistry, default_registry
from .analysis import analyze_program
from .graphgen import generate_graphs
from .lowering import lower_program
from .passes import batch as batch_pass
from .passes import codegen as codegen_pass
from .passes import donate as donate_pass
from .passes import fuse as fuse_pass
from .passes.pipeline import (
    PASS_ORDER,
    OptimizationReport,
    optimize,
    split_passes,
)
from .symtab import analyze

#: Table 1 pass names, in the paper's order.
PASS_NAMES = (
    "Lexing",
    "Parsing",
    "Macro Expansion",
    "Env Analysis",
    "Optimization",
    "Graph Conversion",
)


@dataclass
class CompiledProgram:
    """A compiled Delirium program plus everything learned on the way."""

    graph: GraphProgram
    source_ast: ast.Program
    registry: OperatorRegistry
    optimization: OptimizationReport | None
    #: Wall seconds per compiler pass, keyed by the Table 1 names.
    pass_seconds: dict[str, float] = field(default_factory=dict)

    def run(
        self,
        args: tuple[Any, ...] = (),
        executor: Any | None = None,
    ) -> RunResult:
        """Execute the program (sequentially unless given an executor)."""
        executor = executor or SequentialExecutor()
        return executor.run(self.graph, args=args, registry=self.registry)


def compile_source(
    source: str,
    registry: OperatorRegistry | None = None,
    defines: dict[str, object] | None = None,
    optimize_passes: tuple[str, ...] | None = PASS_ORDER,
    strict: bool = True,
    entry: str = "main",
    prelude: bool = False,
) -> CompiledProgram:
    """Compile Delirium source text to coordination graphs.

    Parameters
    ----------
    source:
        Delirium program text (may contain ``#define`` directives).
    registry:
        Operator registry the program is checked against; defaults to the
        builtins.  Strict compilation rejects names that are neither bound,
        functions, nor registered operators.
    defines:
        Symbolic-constant values (the preprocessor's input), e.g.
        ``{"NUM_ITER": 4}``.
    optimize_passes:
        Which optimizations to run (``None`` or ``()`` disables all —
        useful for ablations and for differential testing of the passes).
        ``"fuse"`` enables the graph-level operator-fusion pass,
        ``"donate"`` the last-use donation analysis, ``"codegen"`` the
        lowering of fused recipes to generated specialized Python, and
        ``"batch"`` the batch-binder extension of those generated
        sources; all run after template generation (donate after fuse,
        codegen next, batch last) and are *not* in the default set so
        default compilations keep their historical graph shapes (the CLI
        enables them by default via ``--fuse`` / ``--donate`` /
        ``--codegen`` / ``--batch``).
    strict:
        Enforce unbound-name errors during environment analysis.
    entry:
        Name of the entry function (``main`` by convention).
    prelude:
        Prepend the coordination-structure prelude (section 9.2
        extension): ``par_index_map``, ``par_reduce``, ``par_split``.
    """
    registry = registry if registry is not None else default_registry()
    seconds: dict[str, float] = {}

    if prelude:
        from ..lang.prelude import PRELUDE_SOURCE

        source = PRELUDE_SOURCE + "\n" + source

    t0 = time.perf_counter()
    expanded = preprocess(source, defines)
    seconds["Macro Expansion"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    tokens = tokenize(expanded)
    seconds["Lexing"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    program = Parser(tokens).parse_program()
    seconds["Parsing"] = time.perf_counter() - t0

    # Lower iterate before analysis so the loop functions participate in
    # the call graph (recursion detection needs them).
    t_lower0 = time.perf_counter()
    lower_program(program)
    lowering_seconds = time.perf_counter() - t_lower0

    t0 = time.perf_counter()
    analyze(program, known_operators=registry.names(), strict=strict)
    seconds["Env Analysis"] = time.perf_counter() - t0

    ast_passes, graph_passes = split_passes(
        tuple(optimize_passes) if optimize_passes else ()
    )
    t0 = time.perf_counter()
    report: OptimizationReport | None = None
    if ast_passes:
        report = optimize(program, registry, enabled=ast_passes)
    seconds["Optimization"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    env = analyze(program, known_operators=registry.names(), strict=strict)
    prog_analysis = analyze_program(env, pure_operators=registry.pure_names())
    graph = generate_graphs(program, env, prog_analysis, registry, strict)
    graph.entry = entry
    graph.entry_template()  # fail fast if the entry is missing
    graph.prune_unreachable()
    if "fuse" in graph_passes:
        fuse_stats = fuse_pass.run(graph, registry)
        if report is None:
            report = OptimizationReport(enabled=("fuse",))
        else:
            report.enabled = report.enabled + ("fuse",)
        for key, count in fuse_stats.items():
            report.stats[key] = report.stats.get(key, 0) + count
    if "donate" in graph_passes:
        # Always after fuse: last-use facts are computed on the final
        # graph shape, so fused super-node inputs participate too.
        donate_stats = donate_pass.run(graph, registry)
        if report is None:
            report = OptimizationReport(enabled=("donate",))
        else:
            report.enabled = report.enabled + ("donate",)
        for key, count in donate_stats.items():
            report.stats[key] = report.stats.get(key, 0) + count
    if "codegen" in graph_passes:
        # Lowers whatever set of fused recipes the earlier graph passes
        # left behind to specialized generated source.
        codegen_stats = codegen_pass.run(graph, registry)
        if report is None:
            report = OptimizationReport(enabled=("codegen",))
        else:
            report.enabled = report.enabled + ("codegen",)
        for key, count in codegen_stats.items():
            report.stats[key] = report.stats.get(key, 0) + count
    if "batch" in graph_passes:
        # After codegen: appends the batch binder to its generated
        # sources so batched executors get a vectorized form for fused
        # chains too.  No-op when codegen never ran.
        batch_stats = batch_pass.run(graph, registry)
        if report is None:
            report = OptimizationReport(enabled=("batch",))
        else:
            report.enabled = report.enabled + ("batch",)
        for key, count in batch_stats.items():
            report.stats[key] = report.stats.get(key, 0) + count
    seconds["Graph Conversion"] = time.perf_counter() - t0 + lowering_seconds

    return CompiledProgram(
        graph=graph,
        source_ast=program,
        registry=registry,
        optimization=report,
        pass_seconds=seconds,
    )


def compile_file(
    path: str,
    registry: OperatorRegistry | None = None,
    defines: dict[str, object] | None = None,
    **kwargs: Any,
) -> CompiledProgram:
    """Compile a ``.dlm`` source file (see :func:`compile_source`)."""
    with open(path, "r", encoding="utf-8") as fh:
        return compile_source(fh.read(), registry, defines, **kwargs)


def run_source(
    source: str,
    args: tuple[Any, ...] = (),
    registry: OperatorRegistry | None = None,
    defines: dict[str, object] | None = None,
    executor: Any | None = None,
    **kwargs: Any,
) -> Any:
    """Compile and execute in one call; returns the program's result value."""
    compiled = compile_source(source, registry, defines, **kwargs)
    return compiled.run(args=args, executor=executor).value
