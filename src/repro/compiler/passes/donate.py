"""Static last-use ("donation") analysis over coordination graphs.

Section 2.1 of the paper makes reference-counted copy-on-write the heart
of the runtime; this pass discharges the copy decision *at compile time*
wherever the graph proves it.  An operator input edge is **donated** when

* the consuming node is the **sole consumer** of the producing port
  (static fan-out one — nobody else can ever observe the value),
* the port is **not the template result** (the result outlives the node),
* the producer is a plain data source (``OP``/``CONST``/``PARAM``/
  ``TUPLE``/``UNTUPLE``) — not a closure capture and not a function
  result, whose values can outlive the edge through capture pins or the
  callee's own result plumbing.

A donated edge is a promise that the value dies at this firing: the
engine hands the block to the operator for in-place mutation with no
copy-on-write copy, and recycles the payload buffer through the
:class:`~repro.runtime.blocks.BufferPool` when the firing releases the
block's last reference.  The engine keeps a one-word reference-count
confirmation on donated modifies-arguments as a determinism guard
(dynamic aliasing — e.g. the same block arriving on two edges of one
firing — is invisible statically); a donated edge whose guard trips falls
back to the ordinary COW path and is counted in
``EngineStats.donation_misses``, so the annotation can make the run
faster but never wrong.

The rule itself lives in :func:`repro.graph.validate.donation_violation`;
this pass annotates exactly the edges that function accepts, and
``validate_template`` re-checks every annotation so a mis-annotated graph
is rejected loudly.

Runs after fusion (fused super-nodes are ordinary ``OP`` nodes by then,
so their inputs participate), mutating ``Node.donated`` in place.
"""

from __future__ import annotations

from ...graph.ir import GraphProgram, NodeKind, Template
from ...graph.validate import donation_violation


def annotate_template(template: Template) -> int:
    """Annotate one template in place; returns the number of donated edges."""
    donated_edges = 0
    for node_id, node in enumerate(template.nodes):
        if node.kind is not NodeKind.OP:
            continue
        donated = tuple(
            i
            for i in range(len(node.inputs))
            if donation_violation(template, node_id, i) is None
        )
        node.donated = donated or None
        donated_edges += len(donated)
    return donated_edges


def run(graph: GraphProgram, registry: object | None = None) -> dict[str, int]:
    """Annotate every template; returns ``donate.*`` stats for the report.

    ``registry`` is accepted for driver-signature uniformity with the
    fusion pass but unused — donation is a pure graph-shape property.
    """
    donated_edges = 0
    annotated_nodes = 0
    for template in graph.templates.values():
        donated_edges += annotate_template(template)
        annotated_nodes += sum(1 for n in template.nodes if n.donated)
    stats: dict[str, int] = {}
    if donated_edges:
        stats["donate.edges_donated"] = donated_edges
        stats["donate.nodes_annotated"] = annotated_nodes
    return stats
