"""Common-subexpression elimination.

Two let bindings with syntactically identical, *pure* right-hand sides
compute the same value (purity plus single assignment guarantee it), so
the later one can reuse the earlier one's name.  Availability respects
lexical scope: an expression bound inside one conditional arm is not
available in the other.  The canonical key for an expression is its
unparse — cheap, and exact for a language this small.

Example::

    let a = incr(n)        let a = incr(n)
        b = incr(n)   =>       b = a
    in f(a, b)             in f(a, b)

Copy propagation (constprop) then forwards ``b``; dead-code elimination
removes the leftover binding.
"""

from __future__ import annotations

from ...lang import ast
from ...lang.ast import unparse
from .common import PassContext, expr_is_pure

NAME = "cse"


class _CSE:
    def __init__(self, ctx: PassContext) -> None:
        self.ctx = ctx
        self.changed = False

    def function(self, f: ast.FunDef) -> None:
        self._expr(f.body, {}, set(f.params))

    # ------------------------------------------------------------------
    def _expr(self, e: ast.Expr, available: dict[str, str], bound: set[str]) -> None:
        """Walk ``e`` with the table of available expressions.

        ``available`` maps unparse keys to the bound name that already
        holds the value; child scopes extend a *copy* so availability
        cannot leak across arms.
        """
        if isinstance(e, (ast.Literal, ast.Null, ast.Var)):
            return
        if isinstance(e, ast.TupleExpr):
            for item in e.items:
                self._expr(item, available, bound)
            return
        if isinstance(e, ast.Apply):
            self._expr(e.callee, available, bound)
            for a in e.args:
                self._expr(a, available, bound)
            return
        if isinstance(e, ast.If):
            self._expr(e.cond, available, bound)
            self._expr(e.then, dict(available), set(bound))
            self._expr(e.orelse, dict(available), set(bound))
            return
        if isinstance(e, ast.Let):
            inner = dict(available)
            inner_bound = set(bound)
            for b in e.bindings:
                if isinstance(b, ast.SimpleBinding):
                    self._expr(b.expr, inner, inner_bound)
                    if not isinstance(b.expr, (ast.Var, ast.Literal, ast.Null)):
                        if expr_is_pure(b.expr, self.ctx, inner_bound):
                            key = unparse(b.expr)
                            existing = inner.get(key)
                            if existing is not None:
                                b.expr = ast.Var(
                                    name=existing,
                                    line=b.expr.line,
                                    column=b.expr.column,
                                )
                                self.changed = True
                                self.ctx.bump(f"{NAME}.eliminated")
                            else:
                                inner[key] = b.name
                    inner_bound.add(b.name)
                elif isinstance(b, ast.TupleBinding):
                    self._expr(b.expr, inner, inner_bound)
                    inner_bound.update(b.names)
                elif isinstance(b, ast.FunBinding):
                    inner_bound.add(b.func.name)
                    fn_bound = inner_bound | set(b.func.params)
                    # Availability flows into the nested function (its
                    # free variables are visible there), but expressions
                    # discovered inside must not escape back out.
                    self._expr(b.func.body, dict(inner), fn_bound)
            self._expr(e.body, inner, inner_bound)
            return
        if isinstance(e, ast.Iterate):  # pre-lowering robustness
            for lv in e.loopvars:
                self._expr(lv.init, available, bound)
            inner_bound = bound | {lv.name for lv in e.loopvars}
            self._expr(e.cond, dict(available), inner_bound)
            for lv in e.loopvars:
                self._expr(lv.update, dict(available), inner_bound)
            self._expr(e.result, dict(available), inner_bound)
            return
        raise TypeError(f"unexpected AST node {type(e).__name__}")


def run(program: ast.Program, ctx: PassContext) -> bool:
    """Run CSE over every function; True when anything was eliminated."""
    changed = False
    for f in program.functions:
        cse = _CSE(ctx)
        cse.function(f)
        changed = changed or cse.changed
    return changed
