"""Codegen lowering: compile fused recipes to specialized Python.

The fusion pass (:mod:`repro.compiler.passes.fuse`) collapses chains into
super-nodes carrying ``(steps, untuple_n)`` recipes, and the runtime
replays those recipes through a generic loop (``compose_fused``): per step
a tuple unpack, a list comprehension over arg refs, and an append.  That
interpretation is pure overhead — the recipe is static, so the whole
replay can be *generated* once per distinct recipe: argument unpacking,
the step sequence, and intermediate-value threading all inlined into one
specialized function, compiled with ``compile()``/``exec`` at
graph-finalize time.

The generated artifact is **source text**, stored on the fused node
(:attr:`~repro.graph.ir.Node.codegen`) so it serializes into the on-disk
compile cache and ships to worker processes next to the fused recipes —
no code objects are ever pickled.  The source defines a *binder*::

    def _delirium_bind(_f0, _f1):
        def _fused(a0, a1, a2):
            t0 = _f0(a0, a1)
            t1 = _f1(t0, a2)
            return t1
        return _fused

Each side (master or worker) compiles the source and calls the binder
with the member operator functions from *its own* registry, in step
order; the members become closure cells, so calls inside the generated
body are single ``LOAD_DEREF`` + ``CALL`` sequences with no dict lookups
and no per-step interpretation.  A single-step chain (the ubiquitous
``split + absorbed untuple`` shape) binds to the member function itself —
zero added frames, exactly what the interpreted fast path did.

A trailing absorbed untuple needs no generated code: the final step's
tuple is the function result, and the engine delivers its elements to the
node's output ports (the delivery carries template-named error messages
the generated function must not duplicate).

An optional :mod:`numba` jit tier (``pip install delirium[jit]``) wraps
chains whose members are already numba dispatchers; when numba is absent
or compilation fails the plain Python function is used silently — results
are bit-identical either way.
"""

from __future__ import annotations

from typing import Any, Callable

from ...graph.ir import GraphProgram
from ...runtime.operators import (
    CODEGEN_BINDER_NAME as BINDER_NAME,
)
from ...runtime.operators import (
    OperatorRegistry,
    bind_codegen,
)


def generate_source(
    steps: tuple[tuple[str, tuple[tuple[str, int], ...]], ...],
    untuple_n: int,
) -> str:
    """Specialized Python source for one fused recipe.

    Pure function of the recipe (the fused node *name* encodes the recipe,
    so equal names always carry equal sources).  The text is deliberately
    deterministic — it participates in serialized graph dumps and
    cache-entry content.
    """
    n_inputs = 0
    for _, refs in steps:
        for kind, k in refs:
            if kind == "i":
                n_inputs = max(n_inputs, k + 1)
    params = ", ".join(f"a{i}" for i in range(n_inputs))
    fns = ", ".join(f"_f{j}" for j in range(len(steps)))
    lines = [
        f"# fused chain: {'>'.join(name for name, _ in steps)}"
        + (f">untuple{untuple_n}" if untuple_n else ""),
        f"def {BINDER_NAME}({fns}):",
    ]
    if len(steps) == 1:
        # Single step (split + absorbed untuple): the specialized callable
        # *is* the member function — binding it directly keeps the call
        # frame count identical to an unfused firing.
        lines.append("    return _f0")
        lines.append("")
        return "\n".join(lines)
    lines.append(f"    def _fused({params}):")
    for j, (_, refs) in enumerate(steps):
        args = ", ".join(f"a{k}" if kind == "i" else f"t{k}" for kind, k in refs)
        lines.append(f"        t{j} = _f{j}({args})")
    lines.append(f"        return t{len(steps) - 1}")
    lines.append("    return _fused")
    lines.append("")
    return "\n".join(lines)


def run(graph: GraphProgram, registry: OperatorRegistry) -> dict[str, int]:
    """Lower every fused recipe in ``graph`` to generated source, in place.

    Runs after ``fuse``/``donate`` as the terminal graph pass.  Each fused
    node gets its generated source on :attr:`~repro.graph.ir.Node.codegen`
    and the compile-time bound callable on ``codegen_fn``; structurally
    identical recipes (equal fused names) share one compiled source.
    Statistics merge into the optimization report under the usual
    ``pass.stat`` keys: ``codegen.chains_lowered``,
    ``codegen.unique_sources``.
    """
    bound: dict[str, tuple[str, Callable[..., Any]]] = {}
    lowered = 0
    for template in graph.templates.values():
        for node in template.nodes:
            if node.fused is None:
                continue
            entry = bound.get(node.name)
            if entry is None:
                steps, untuple_n = node.fused
                source = generate_source(steps, untuple_n)
                fn = bind_codegen(source, steps, registry, name=node.label)
                entry = bound[node.name] = (source, fn)
            node.codegen, node.codegen_fn = entry
            lowered += 1
    if not lowered:
        return {}
    return {
        "codegen.chains_lowered": lowered,
        "codegen.unique_sources": len(bound),
    }
