"""The optimization pass manager.

Runs the paper's four optimizations in a fixpoint loop::

    inline -> constant propagation -> CSE -> DCE

Inline first (it exposes operator applications to the scalar passes);
propagation before CSE (canonicalizes copies so syntactic keys match); DCE
last (sweeps the bindings the others orphaned).  Analyses are recomputed
between rounds because inlining changes the call graph.  The loop stops
when a full round changes nothing, or after ``max_rounds`` (a safety net —
each pass only shrinks or canonicalizes, so in practice two or three
rounds suffice).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ...lang import ast
from ...runtime.operators import OperatorRegistry
from ..analysis import FreshNames, analyze_program
from ..symtab import analyze
from . import constprop, cse, dce, inline
from .common import PassContext, bound_names_in


@dataclass
class OptimizationReport:
    """What the optimizer did, for tests, Table 1, and the ablations."""

    rounds: int = 0
    stats: dict[str, int] = field(default_factory=dict)
    seconds: float = 0.0
    enabled: tuple[str, ...] = ()

    def describe(self) -> str:
        """Human-readable summary, e.g. for ``delirium compile`` output."""
        if not self.stats:
            return (
                f"optimizer: nothing to do "
                f"({self.rounds} round(s), passes: {', '.join(self.enabled)})"
            )
        parts = [
            f"{key.split('.', 1)[1].replace('_', ' ')} ({key.split('.')[0]}): {count}"
            for key, count in sorted(self.stats.items())
        ]
        return (
            f"optimizer ({self.rounds} round(s)): " + "; ".join(parts)
        )


#: Canonical pass order (the AST-level fixpoint passes).
PASS_ORDER = ("inline", "constprop", "cse", "dce")

#: Graph-level passes, run by the driver *after* template generation (they
#: rewrite coordination graphs, not ASTs, so they live outside the fixpoint
#: loop).  Names share the same flat namespace as :data:`PASS_ORDER`.
#: ``donate`` always runs after ``fuse`` so last-use facts are computed on
#: the post-fusion graph (fused super-nodes are ordinary OP nodes by then);
#: ``codegen`` lowers the final set of fused recipes to generated source
#: and must see every annotation in place; ``batch`` runs last because it
#: rewrites codegen's artifact (appending the batch binder the batched
#: execution path binds vectorized forms from).
GRAPH_PASS_ORDER = ("fuse", "donate", "codegen", "batch")

#: Every pass name a caller may request, in execution order.
FULL_PASS_ORDER = PASS_ORDER + GRAPH_PASS_ORDER


def split_passes(
    enabled: tuple[str, ...],
) -> tuple[tuple[str, ...], tuple[str, ...]]:
    """Partition requested pass names into (AST passes, graph passes)."""
    ast_passes = tuple(p for p in enabled if p not in GRAPH_PASS_ORDER)
    graph_passes = tuple(p for p in enabled if p in GRAPH_PASS_ORDER)
    return ast_passes, graph_passes

_RUNNERS = {
    "inline": inline.run,
    "constprop": constprop.run,
    "cse": cse.run,
    "dce": dce.run,
}


def _make_context(
    program: ast.Program,
    registry: OperatorRegistry | None,
    stats: dict[str, int],
) -> PassContext:
    known = registry.names() if registry is not None else None
    env = analyze(program, known_operators=known, strict=False)
    pure = registry.pure_names() if registry is not None else set()
    analysis = analyze_program(env, pure_operators=pure)
    used: set[str] = set()
    for f in program.functions:
        used.add(f.name)
        used.update(f.params)
        used.update(bound_names_in(f.body))
        for node in f.body.walk():
            if isinstance(node, ast.Var):
                used.add(node.name)
    ctx = PassContext(
        registry=registry,
        env=env,
        analysis=analysis,
        fresh=FreshNames(used),
        stats=stats,
    )
    return ctx


def optimize(
    program: ast.Program,
    registry: OperatorRegistry | None = None,
    enabled: tuple[str, ...] = PASS_ORDER,
    max_rounds: int = 8,
    inline_threshold: int = inline.DEFAULT_THRESHOLD,
) -> OptimizationReport:
    """Optimize ``program`` in place and return a report.

    ``enabled`` selects passes (ablation studies compile with subsets);
    unknown names raise ``KeyError`` loudly rather than silently skipping.
    """
    for name in enabled:
        if name not in _RUNNERS:
            raise KeyError(f"unknown optimization pass {name!r}")
    report = OptimizationReport(enabled=tuple(enabled))
    began = time.perf_counter()
    for _ in range(max_rounds):
        ctx = _make_context(program, registry, report.stats)
        changed = False
        for name in PASS_ORDER:
            if name not in enabled:
                continue
            if name == "inline":
                changed = inline.run(program, ctx, threshold=inline_threshold) or changed
                # Inlining invalidates the call graph; refresh for the
                # scalar passes in the same round.
                ctx = _make_context(program, registry, report.stats)
            else:
                changed = _RUNNERS[name](program, ctx) or changed
        report.rounds += 1
        if not changed:
            break
    report.seconds = time.perf_counter() - began
    return report
