"""Operator fusion: collapse cheap linear chains into one super-node.

Per-fire overhead — ready-queue traffic, activation bookkeeping, and (on
the process executor) a master↔worker round-trip — is charged per *node*,
so a pipeline of tiny scalar operators pays the coordination tax once per
member.  The paper's advice is structural ("unnecessary nodes in the graph
translate into extra overhead", section 6); this pass automates it at the
graph level, after template generation:

* a **linear chain** of single-consumer ``OP`` nodes whose operators are
  cheap (numeric cost hint at most :data:`FUSE_COST_THRESHOLD` ticks) and
  declare no ``modifies`` is rewritten into one fused ``OP`` node whose
  :attr:`~repro.graph.ir.Node.fused` recipe replays the members in order
  inside a single Python frame;
* a trailing ``UNTUPLE`` whose package comes from a single-consumer ``OP``
  is absorbed into that node **regardless of the producer's cost**: the
  fused node grows one output port per package element and the engine
  delivers the final step's tuple element-by-element.  This is the common
  ``split -> untuple`` shape every scatter in the retina model has, and it
  halves those nodes' fire count even though the split itself is costly.

Fusion never crosses template boundaries, never touches expanding nodes
(``CALL``/``IF``/``CLOSURE``), and never fuses an operator with a
``modifies`` declaration — copy-on-write decisions are per-node and must
stay observable.  Results are bit-identical by construction: the composed
callable applies exactly the member functions to exactly the values the
dataflow edges would have carried (intermediate values simply never pass
through the block layer).

The pass mutates templates in place and re-finalizes them; run it after
``prune_unreachable`` so dead templates are not wasted effort.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...errors import UnknownOperatorError
from ...graph.ir import GraphProgram, Node, NodeKind, Port, Template
from ...runtime.operators import OperatorRegistry, OperatorSpec

#: Operators whose numeric cost hint is at or below this many simulated
#: ticks count as "cheap" for OP->OP fusion.  Chosen well above the
#: builtin scalar helpers (cost 1-2) and well below any kernel a Delirium
#: program would want dispatched on its own.
FUSE_COST_THRESHOLD = 100.0


def _spec_of(registry: OperatorRegistry, node: Node) -> OperatorSpec | None:
    try:
        return registry.get(node.name)
    except UnknownOperatorError:
        return None


def _cheap(spec: OperatorSpec, threshold: float) -> bool:
    """Cheap enough to fuse through: no hint (machine default, tiny) or a
    numeric hint under the threshold.  Callable hints are conservatively
    expensive — their value is unknown until run time."""
    if spec.cost is None:
        return True
    if callable(spec.cost):
        return False
    return float(spec.cost) <= threshold


@dataclass
class _Chain:
    """One maximal fusible path: OP members plus an optional untuple tail."""

    members: list[int]
    untuple: int | None


def _single_consumer(template: Template, node_id: int) -> tuple[int, int] | None:
    """The sole consumer of ``node_id``'s only output, or ``None``.

    ``None`` when the node has multiple outputs, multiple consumers, or
    its output is the template result (the engine delivers results from
    live ports; a fused interior has no live port)."""
    node = template.nodes[node_id]
    if node.n_outputs != 1:
        return None
    consumers = template.consumers[node_id][0]
    if len(consumers) != 1:
        return None
    if template.result_node == node_id and template.result_out == 0:
        return None
    return consumers[0]


def _find_chains(
    template: Template, registry: OperatorRegistry, threshold: float
) -> list[_Chain]:
    nodes = template.nodes
    eligible: list[OperatorSpec | None] = []
    for node in nodes:
        spec = _spec_of(registry, node) if node.kind is NodeKind.OP else None
        if spec is not None and spec.modifies:
            spec = None
        eligible.append(spec)

    # prev[c] = the producer fused into c's chain; at most one per consumer
    # (lowest producer id claims), at most one successor per producer (the
    # single-consumer condition), so the links form disjoint linear paths.
    prev: dict[int, int] = {}
    has_next: set[int] = set()
    for p in range(len(nodes)):
        spec_p = eligible[p]
        if spec_p is None:
            continue
        consumer = _single_consumer(template, p)
        if consumer is None:
            continue
        c, _ = consumer
        if c in prev:
            continue
        dest = nodes[c]
        if dest.kind is NodeKind.UNTUPLE:
            # Absorb the untuple no matter how costly the producer is:
            # the pair always collapses to one fire.
            prev[c] = p
            has_next.add(p)
        elif dest.kind is NodeKind.OP:
            spec_c = eligible[c]
            if spec_c is None:
                continue
            if not (_cheap(spec_p, threshold) and _cheap(spec_c, threshold)):
                continue
            prev[c] = p
            has_next.add(p)

    chains: list[_Chain] = []
    for tail in prev:
        if tail in has_next:
            continue  # not the end of its path
        path = [tail]
        while path[-1] in prev:
            path.append(prev[path[-1]])
        path.reverse()
        if nodes[tail].kind is NodeKind.UNTUPLE:
            members, untuple = path[:-1], tail
        else:
            members, untuple = path, None
        if len(members) + (1 if untuple is not None else 0) >= 2:
            chains.append(_Chain(members, untuple))
    return chains


def _fuse_chain(template: Template, chain: _Chain) -> None:
    """Rewrite the chain's last node in place as the fused super-node.

    Rewriting the *last* node (the untuple, when absorbed) keeps every
    downstream port reference valid — consumers already point at its
    outputs.  Interior members are deleted afterwards in one renumbering
    sweep per template."""
    nodes = template.nodes
    member_set = set(chain.members)
    step_index = {m: j for j, m in enumerate(chain.members)}

    ext_slots: dict[Port, int] = {}
    ext_ports: list[Port] = []
    steps = []
    for m in chain.members:
        refs = []
        for port in nodes[m].inputs:
            if port.node in member_set:
                refs.append(("t", step_index[port.node]))
            else:
                slot = ext_slots.get(port)
                if slot is None:
                    slot = ext_slots[port] = len(ext_ports)
                    ext_ports.append(port)
                refs.append(("i", slot))
        steps.append((nodes[m].name, tuple(refs)))

    if chain.untuple is not None:
        target = chain.untuple
        untuple_n = nodes[target].n_outputs
    else:
        target = chain.members[-1]
        untuple_n = 0

    parts = [
        f"{name}({','.join(kind + str(k) for kind, k in refs)})"
        for name, refs in steps
    ]
    if untuple_n:
        parts.append(f"untuple{untuple_n}")
    fused_name = "fused:" + ";".join(parts)
    label = "+".join(name for name, _ in steps) + (
        "+untuple" if untuple_n else ""
    )

    nodes[target] = Node(
        kind=NodeKind.OP,
        inputs=list(ext_ports),
        n_outputs=untuple_n if untuple_n else 1,
        name=fused_name,
        fused=(tuple(steps), untuple_n),
        label=label,
    )


def _remove_nodes(template: Template, removed: set[int]) -> None:
    old_nodes = template.nodes
    old2new: dict[int, int] = {}
    kept: list[Node] = []
    for old_id, node in enumerate(old_nodes):
        if old_id in removed:
            continue
        old2new[old_id] = len(kept)
        kept.append(node)
    for node in kept:
        node.inputs = [Port(old2new[p.node], p.out) for p in node.inputs]
    assert template.result is not None
    template.result = Port(old2new[template.result.node], template.result.out)
    template.nodes = kept
    template.finalize()


def run(
    graph: GraphProgram,
    registry: OperatorRegistry,
    cost_threshold: float = FUSE_COST_THRESHOLD,
) -> dict[str, int]:
    """Fuse every template in ``graph`` in place; return pass statistics.

    Statistics use the pipeline's ``pass.stat`` key convention so they
    merge into an :class:`~repro.compiler.passes.pipeline.
    OptimizationReport` unchanged: ``fuse.chains_fused``,
    ``fuse.ops_fused``, ``fuse.untuples_absorbed``, ``fuse.nodes_removed``.
    """
    chains_fused = 0
    ops_fused = 0
    untuples = 0
    nodes_removed = 0
    for template in graph.templates.values():
        chains = _find_chains(template, registry, cost_threshold)
        if not chains:
            continue
        removed: set[int] = set()
        for chain in chains:
            _fuse_chain(template, chain)
            tail = chain.untuple if chain.untuple is not None else chain.members[-1]
            for m in chain.members:
                if m != tail:
                    removed.add(m)
            chains_fused += 1
            ops_fused += len(chain.members)
            if chain.untuple is not None:
                untuples += 1
        _remove_nodes(template, removed)
        nodes_removed += len(removed)
        # Fusion changes port fan-outs, so any pre-existing last-use
        # annotations on this template are stale; drop them and let the
        # donation pass (which always runs after fusion) recompute facts
        # on the final graph shape.  Dropping is the safe direction — a
        # missing donation is just a skipped optimization.
        for node in template.nodes:
            node.donated = None
    if not chains_fused:
        return {}
    return {
        "fuse.chains_fused": chains_fused,
        "fuse.ops_fused": ops_fused,
        "fuse.untuples_absorbed": untuples,
        "fuse.nodes_removed": nodes_removed,
    }
