"""Batch lowering: extend generated codegen sources with a batch binder.

The batched execution path (``--batch``) coalesces same-node ready fires
and executes them through one :func:`~repro.runtime.operators.batch_call`.
For plain registered operators that call resolves a hand-written
``batch_fn`` or falls back to a loop over ``spec.fn``.  Fused chains
lowered by the codegen pass have neither — their callable is generated —
so this terminal pass appends a *batch binder* to every generated source::

    def _delirium_bind_batch(_f0, _f1):
        _fused = _delirium_bind(_f0, _f1)
        def _fused_batch(_calls):
            return [_fused(*_args) for _args in _calls]
        return _fused_batch

Each side (master or worker) that resolves the fused spec binds both
binders from the same source text (``node_spec`` / the worker's resolve
path call :func:`~repro.runtime.operators.bind_codegen_batch`, which
returns ``None`` for sources this pass never touched).  The loop lives
inside one generated frame next to the specialized body, so a batched
fused chain pays zero per-fire interpretation — the same property the
scalar codegen path has — and the results are bit-identical to N scalar
calls by construction: it *is* N scalar calls, re-associated.

Runs after ``codegen`` (it rewrites that pass's artifact) and is a no-op
on graphs where codegen never ran, so ``--batch --no-codegen`` stays
valid: batching then uses the interpreted fallback loop.
"""

from __future__ import annotations

from ...graph.ir import GraphProgram
from ...runtime.operators import (
    BATCH_BINDER_NAME,
    CODEGEN_BINDER_NAME,
    OperatorRegistry,
)


def generate_batch_source(n_members: int) -> str:
    """The batch-binder text appended to one generated codegen source.

    A pure function of the member count — the scalar binder's signature —
    so equal codegen sources always grow equal batch binders and stay
    safe cache/dedup keys.
    """
    fns = ", ".join(f"_f{j}" for j in range(n_members))
    return "\n".join(
        [
            "",
            f"def {BATCH_BINDER_NAME}({fns}):",
            f"    _fused = {CODEGEN_BINDER_NAME}({fns})",
            "    def _fused_batch(_calls):",
            "        return [_fused(*_args) for _args in _calls]",
            "    return _fused_batch",
            "",
        ]
    )


def run(graph: GraphProgram, registry: OperatorRegistry) -> dict[str, int]:
    """Append batch binders to every codegen source in ``graph``, in place.

    Idempotent (sources already carrying the binder are left alone) and
    keyed by fused node name like the codegen pass, so structurally
    identical recipes keep sharing one source text.  ``codegen_fn`` is
    untouched — the scalar binder's output is unchanged; only new text is
    appended.  Statistics merge into the optimization report as
    ``batch.chains_batchable`` / ``batch.unique_sources``.
    """
    extended: dict[str, str] = {}
    lowered = 0
    for template in graph.templates.values():
        for node in template.nodes:
            source = node.codegen
            if source is None or node.fused is None:
                continue
            if BATCH_BINDER_NAME in source:
                continue
            new = extended.get(node.name)
            if new is None:
                new = extended[node.name] = source + generate_batch_source(
                    len(node.fused[0])
                )
            node.codegen = new
            lowered += 1
    if not lowered:
        return {}
    return {
        "batch.chains_batchable": lowered,
        "batch.unique_sources": len(extended),
    }
