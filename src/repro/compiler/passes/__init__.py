"""The Pythia optimization passes (inline, constprop, CSE, DCE)."""

from . import constprop, cse, dce, inline
from .common import PassContext
from .pipeline import PASS_ORDER, OptimizationReport, optimize

__all__ = [
    "PASS_ORDER",
    "OptimizationReport",
    "PassContext",
    "constprop",
    "cse",
    "dce",
    "inline",
    "optimize",
]
