"""Constant propagation and folding.

Three rewrites, iterated to a local fixpoint by the pipeline:

1. **propagation** — a use of ``x`` where ``x = <literal>`` becomes the
   literal; a use of ``x`` where ``x = y`` (copy) becomes ``y``;
2. **folding** — applying a *foldable* registered operator to all-literal
   arguments is evaluated at compile time (failures leave the expression
   untouched: a division by zero must still happen at run time, on the
   machine, deterministically);
3. **branch folding** — ``if <literal> then a else b`` becomes the taken
   arm (``NULL`` counts as false, like the runtime's truthiness).

Because single assignment forbids shadowing within a function, one flat
name→value table per top-level function is sound.
"""

from __future__ import annotations

from ...lang import ast
from ...runtime.values import NULL, is_truthy
from .common import PassContext

NAME = "constprop"


def _literal_value(e: ast.Expr) -> tuple[bool, object]:
    if isinstance(e, ast.Literal):
        return True, e.value
    if isinstance(e, ast.Null):
        return True, NULL
    return False, None


def _as_literal_expr(value: object, like: ast.Expr) -> ast.Expr:
    if value is NULL:
        return ast.Null(line=like.line, column=like.column)
    return ast.Literal(value=value, line=like.line, column=like.column)


class _Folder:
    def __init__(self, ctx: PassContext) -> None:
        self.ctx = ctx
        self.changed = False
        #: name -> Literal/Null expr (propagate) or Var (copy propagate)
        self.table: dict[str, ast.Expr] = {}
        #: names bound to anything (so operator lookups are not fooled)
        self.bound: set[str] = set()

    # ------------------------------------------------------------------
    def function(self, f: ast.FunDef) -> None:
        self.bound.update(f.params)
        f.body = self.expr(f.body)

    # ------------------------------------------------------------------
    def expr(self, e: ast.Expr) -> ast.Expr:
        if isinstance(e, (ast.Literal, ast.Null)):
            return e
        if isinstance(e, ast.Var):
            replacement = self.table.get(e.name)
            if replacement is not None:
                self.changed = True
                self.ctx.bump(f"{NAME}.propagated")
                if isinstance(replacement, ast.Var):
                    return ast.Var(
                        name=replacement.name, line=e.line, column=e.column
                    )
                is_lit, value = _literal_value(replacement)
                assert is_lit
                return _as_literal_expr(value, e)
            return e
        if isinstance(e, ast.TupleExpr):
            e.items = [self.expr(i) for i in e.items]
            return e
        if isinstance(e, ast.Apply):
            return self.apply(e)
        if isinstance(e, ast.If):
            e.cond = self.expr(e.cond)
            is_lit, value = _literal_value(e.cond)
            if is_lit:
                self.changed = True
                self.ctx.bump(f"{NAME}.branches_folded")
                taken = e.then if is_truthy(value) else e.orelse
                return self.expr(taken)
            e.then = self.expr(e.then)
            e.orelse = self.expr(e.orelse)
            return e
        if isinstance(e, ast.Let):
            for b in e.bindings:
                if isinstance(b, ast.SimpleBinding):
                    b.expr = self.expr(b.expr)
                    self.bound.add(b.name)
                    is_lit, _ = _literal_value(b.expr)
                    if is_lit or isinstance(b.expr, ast.Var):
                        self.table[b.name] = b.expr
                elif isinstance(b, ast.TupleBinding):
                    b.expr = self.expr(b.expr)
                    self.bound.update(b.names)
                elif isinstance(b, ast.FunBinding):
                    self.bound.add(b.func.name)
                    self.bound.update(b.func.params)
                    b.func.body = self.expr(b.func.body)
            e.body = self.expr(e.body)
            return e
        if isinstance(e, ast.Iterate):  # pre-lowering robustness
            for lv in e.loopvars:
                lv.init = self.expr(lv.init)
                self.bound.add(lv.name)
            e.cond = self.expr(e.cond)
            for lv in e.loopvars:
                lv.update = self.expr(lv.update)
            e.result = self.expr(e.result)
            return e
        raise TypeError(f"unexpected AST node {type(e).__name__}")

    # ------------------------------------------------------------------
    def apply(self, e: ast.Apply) -> ast.Expr:
        e.callee = self.expr(e.callee)
        e.args = [self.expr(a) for a in e.args]
        if not isinstance(e.callee, ast.Var):
            return e
        name = e.callee.name
        if name in self.bound or not self.ctx.operator_is_foldable(name):
            return e
        values = []
        for a in e.args:
            is_lit, value = _literal_value(a)
            if not is_lit:
                return e
            values.append(value)
        assert self.ctx.registry is not None
        spec = self.ctx.registry.get(name)
        if spec.arity is not None and spec.arity != len(values):
            return e  # leave the arity error for env analysis / runtime
        try:
            folded = spec.fn(*values)
        except Exception:  # noqa: BLE001 - must fail at run time instead
            return e
        if not isinstance(folded, (int, float, str, bool)) and folded is not NULL:
            return e
        self.changed = True
        self.ctx.bump(f"{NAME}.folded")
        return _as_literal_expr(folded, e)


def run(program: ast.Program, ctx: PassContext) -> bool:
    """Run constant propagation over every function; True when changed."""
    changed = False
    for f in program.functions:
        folder = _Folder(ctx)
        folder.function(f)
        changed = changed or folder.changed
    return changed
