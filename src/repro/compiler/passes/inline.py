"""Inline function expansion.

Replaces a direct call to a small, non-recursive Delirium function with a
let that binds fresh copies of the parameters and the alpha-renamed body::

    double(x) add(x, x)
    main()    double(3)        =>        main() let x$1 = 3 in add(x$1, x$1)

Benefits mirror the paper's: every inlined call is one fewer call-closure
expansion (template activation) at run time, and the exposed body becomes
visible to constant propagation / CSE / DCE.  The definition itself is left
alone — dead-code elimination of unused *top-level* functions is the graph
generator's concern (templates are only expanded when referenced).

Safety conditions checked per call site:

* the callee is statically known (top-level or local function in scope);
* the callee is not part of a recursive cycle (``ProgramAnalysis``);
* the callee's body size is at most ``threshold`` AST nodes;
* no *global* name the callee's body relies on (operator or top-level
  function) is shadowed by a local binding at the call site.
"""

from __future__ import annotations

import copy

from ...lang import ast
from ..analysis import free_variables
from .common import PassContext, bound_names_in, rename_bound

NAME = "inline"

#: Default maximum callee body size (AST nodes) for inlining.
DEFAULT_THRESHOLD = 40


class _Inliner:
    def __init__(
        self, ctx: PassContext, program: ast.Program, threshold: int
    ) -> None:
        self.ctx = ctx
        self.threshold = threshold
        self.changed = False
        self.top_level = {f.name: f for f in program.functions}
        self.current: str = ""

    # ------------------------------------------------------------------
    def function(self, f: ast.FunDef) -> None:
        self.current = f.name
        f.body = self._expr(f.body, {}, set(f.params))

    # ------------------------------------------------------------------
    def _candidate(
        self, name: str, locals_in_scope: dict[str, tuple[str, ast.FunDef]]
    ) -> tuple[str, ast.FunDef] | None:
        """Resolve a callee name to (qualname, fundef) if statically known."""
        if name in locals_in_scope:
            return locals_in_scope[name]
        if name in self.top_level:
            return name, self.top_level[name]
        return None

    def _should_inline(
        self, qualname: str, fundef: ast.FunDef, visible: set[str]
    ) -> bool:
        if self.ctx.analysis.is_recursive_function(qualname):
            return False
        info = self.ctx.env.functions.get(qualname)
        if info is None:
            return False
        if fundef.body.size() > self.threshold:
            return False
        # Global names the body relies on must not be shadowed at the site.
        globals_used = [
            n
            for n in free_variables(fundef.body, set(fundef.params))
            if n not in info.free
        ]
        if any(g in visible for g in globals_used):
            return False
        # A *local* callee's captured names must be visible at the call
        # site — they always are, because the callee itself is in scope
        # only where its definition (and hence its captures) dominate.
        return True

    def _inline_call(
        self, call: ast.Apply, fundef: ast.FunDef
    ) -> ast.Expr:
        body = copy.deepcopy(fundef.body)
        mapping = {
            name: self.ctx.fresh.fresh(name)
            for name in (set(fundef.params) | bound_names_in(body))
        }
        rename_bound(body, mapping)
        bindings: list[ast.Binding] = [
            ast.SimpleBinding(
                name=mapping[p],
                expr=arg,
                line=call.line,
                column=call.column,
            )
            for p, arg in zip(fundef.params, call.args)
        ]
        self.changed = True
        self.ctx.bump(f"{NAME}.expanded")
        if not bindings:
            return body
        return ast.Let(
            bindings=bindings, body=body, line=call.line, column=call.column
        )

    # ------------------------------------------------------------------
    def _expr(
        self,
        e: ast.Expr,
        locals_in_scope: dict[str, tuple[str, ast.FunDef]],
        visible: set[str],
    ) -> ast.Expr:
        if isinstance(e, (ast.Literal, ast.Null, ast.Var)):
            return e
        if isinstance(e, ast.TupleExpr):
            e.items = [self._expr(i, locals_in_scope, visible) for i in e.items]
            return e
        if isinstance(e, ast.Apply):
            e.callee = self._expr(e.callee, locals_in_scope, visible)
            e.args = [self._expr(a, locals_in_scope, visible) for a in e.args]
            if isinstance(e.callee, ast.Var):
                name = e.callee.name
                hit = self._candidate(name, locals_in_scope)
                # A top-level candidate is shadowed when the name is bound
                # locally to something else; a local-function candidate IS
                # the local binding, so visibility never disqualifies it.
                if (
                    hit is not None
                    and name not in locals_in_scope
                    and name in visible
                ):
                    hit = None
                if hit is not None:
                    qualname, fundef = hit
                    if len(e.args) == len(fundef.params) and self._should_inline(
                        qualname, fundef, visible
                    ):
                        return self._inline_call(e, fundef)
            return e
        if isinstance(e, ast.If):
            e.cond = self._expr(e.cond, locals_in_scope, visible)
            e.then = self._expr(e.then, locals_in_scope, visible)
            e.orelse = self._expr(e.orelse, locals_in_scope, visible)
            return e
        if isinstance(e, ast.Let):
            inner_locals = dict(locals_in_scope)
            inner_visible = set(visible)
            for b in e.bindings:
                if isinstance(b, ast.SimpleBinding):
                    b.expr = self._expr(b.expr, inner_locals, inner_visible)
                    inner_visible.add(b.name)
                elif isinstance(b, ast.TupleBinding):
                    b.expr = self._expr(b.expr, inner_locals, inner_visible)
                    inner_visible.update(b.names)
                elif isinstance(b, ast.FunBinding):
                    qual = f"{self.current}.{b.func.name}"
                    inner_locals[b.func.name] = (qual, b.func)
                    inner_visible.add(b.func.name)
                    saved = self.current
                    self.current = qual
                    fn_visible = inner_visible | set(b.func.params)
                    b.func.body = self._expr(b.func.body, inner_locals, fn_visible)
                    self.current = saved
            e.body = self._expr(e.body, inner_locals, inner_visible)
            return e
        if isinstance(e, ast.Iterate):  # pre-lowering robustness
            for lv in e.loopvars:
                lv.init = self._expr(lv.init, locals_in_scope, visible)
            inner_visible = visible | {lv.name for lv in e.loopvars}
            e.cond = self._expr(e.cond, locals_in_scope, inner_visible)
            for lv in e.loopvars:
                lv.update = self._expr(lv.update, locals_in_scope, inner_visible)
            e.result = self._expr(e.result, locals_in_scope, inner_visible)
            return e
        raise TypeError(f"unexpected AST node {type(e).__name__}")


def run(
    program: ast.Program, ctx: PassContext, threshold: int = DEFAULT_THRESHOLD
) -> bool:
    """Run inline expansion over every function; True when changed."""
    inliner = _Inliner(ctx, program, threshold)
    for f in program.functions:
        inliner.function(f)
    return inliner.changed
