"""Dead-code elimination.

Removes let bindings that are never read and whose evaluation is pure
(deleting an impure operator application would change behaviour — the
paper's model allows operators with private effects like logging, and the
annotation burden is on ``modifies`` only, so we stay conservative).

A binding's liveness is judged by use counts over the whole enclosing
top-level function — exact, because single assignment makes names unique
within a function.  Function bindings never execute anything by
themselves, so an unused function binding is always removable.  Lets that
lose all their bindings collapse into their bodies.  The pass iterates to
a fixpoint internally (removing one binding can kill the uses that kept
another alive).
"""

from __future__ import annotations

from ...lang import ast
from .common import PassContext, count_uses, expr_is_pure

NAME = "dce"


class _DCE:
    def __init__(self, ctx: PassContext, function: ast.FunDef) -> None:
        self.ctx = ctx
        self.function = function
        self.changed = False

    def run(self) -> None:
        while True:
            before = self.changed
            self.function.body = self._expr(
                self.function.body, set(self.function.params)
            )
            if self.changed == before:
                return

    # ------------------------------------------------------------------
    def _expr(self, e: ast.Expr, bound: set[str]) -> ast.Expr:
        if isinstance(e, (ast.Literal, ast.Null, ast.Var)):
            return e
        if isinstance(e, ast.TupleExpr):
            e.items = [self._expr(i, bound) for i in e.items]
            return e
        if isinstance(e, ast.Apply):
            e.callee = self._expr(e.callee, bound)
            e.args = [self._expr(a, bound) for a in e.args]
            return e
        if isinstance(e, ast.If):
            e.cond = self._expr(e.cond, bound)
            e.then = self._expr(e.then, bound)
            e.orelse = self._expr(e.orelse, bound)
            return e
        if isinstance(e, ast.Let):
            inner = set(bound)
            kept: list[ast.Binding] = []
            for b in e.bindings:
                removable = False
                if isinstance(b, ast.SimpleBinding):
                    if count_uses_excluding_binding(
                        self.function, b.name, b
                    ) == 0 and expr_is_pure(b.expr, self.ctx, inner):
                        removable = True
                elif isinstance(b, ast.TupleBinding):
                    if all(
                        count_uses_excluding_binding(self.function, n, b) == 0
                        for n in b.names
                    ) and expr_is_pure(b.expr, self.ctx, inner):
                        removable = True
                elif isinstance(b, ast.FunBinding):
                    external = count_uses(
                        self.function.body, b.func.name
                    ) - count_uses(b.func.body, b.func.name)
                    if external == 0:
                        removable = True
                if removable:
                    self.changed = True
                    self.ctx.bump(f"{NAME}.removed")
                    continue
                if isinstance(b, (ast.SimpleBinding, ast.TupleBinding)):
                    b.expr = self._expr(b.expr, inner)
                elif isinstance(b, ast.FunBinding):
                    fn_bound = inner | {b.func.name} | set(b.func.params)
                    b.func.body = self._expr(b.func.body, fn_bound)
                inner.update(b.bound_names())
                kept.append(b)
            e.bindings = kept
            e.body = self._expr(e.body, inner)
            if not e.bindings:
                self.changed = True
                self.ctx.bump(f"{NAME}.lets_collapsed")
                return e.body
            return e
        if isinstance(e, ast.Iterate):  # pre-lowering robustness
            for lv in e.loopvars:
                lv.init = self._expr(lv.init, bound)
            inner = bound | {lv.name for lv in e.loopvars}
            e.cond = self._expr(e.cond, inner)
            for lv in e.loopvars:
                lv.update = self._expr(lv.update, inner)
            e.result = self._expr(e.result, inner)
            return e
        raise TypeError(f"unexpected AST node {type(e).__name__}")


def count_uses_excluding_binding(
    function: ast.FunDef, name: str, binding: ast.Binding
) -> int:
    """Reads of ``name`` in the function, excluding the binding's own RHS.

    A binding may not reference itself (single assignment), but its RHS
    legitimately references *other* names; when counting uses of ``name``
    we must not count reads inside the very binding being judged — those
    disappear together with it.
    """
    total = count_uses(function.body, name)
    if isinstance(binding, (ast.SimpleBinding, ast.TupleBinding)):
        total -= count_uses(binding.expr, name)
    elif isinstance(binding, ast.FunBinding):
        total -= count_uses(binding.func.body, name)
    return total


def run(program: ast.Program, ctx: PassContext) -> bool:
    """Run DCE over every function; True when anything was removed."""
    changed = False
    for f in program.functions:
        dce = _DCE(ctx, f)
        dce.run()
        changed = changed or dce.changed
    return changed
