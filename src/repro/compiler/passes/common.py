"""Shared utilities for the optimization passes.

All four of the paper's optimizations (constant propagation, common
sub-expression elimination, dead-code elimination, inline function
expansion) are tree-walking passes over the AST, like the original Pythia
compiler ("a fairly traditional implementation based on walking a parse
tree", section 6).  They share three facilities:

* **purity of an expression** — may it be deleted, duplicated, or folded?
  Conservative: only applications of registered *pure* operators qualify;
  direct function calls qualify only after inlining exposes their bodies.
* **uniform renaming** — alpha-rename every name *bound within* a subtree
  to a fresh name (inlining uses this to keep single assignment intact).
* **use counting** — how many times a name is read in a subtree.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...lang import ast
from ...runtime.operators import OperatorRegistry
from ..analysis import FreshNames, ProgramAnalysis
from ..symtab import EnvAnalysis


@dataclass
class PassContext:
    """Everything a pass may consult; rebuilt between pipeline rounds."""

    registry: OperatorRegistry | None
    env: EnvAnalysis
    analysis: ProgramAnalysis
    fresh: FreshNames
    stats: dict[str, int] = field(default_factory=dict)

    def bump(self, key: str, n: int = 1) -> None:
        self.stats[key] = self.stats.get(key, 0) + n

    def operator_is_pure(self, name: str) -> bool:
        if self.registry is None or name not in self.registry:
            return False
        return self.registry.get(name).pure

    def operator_is_foldable(self, name: str) -> bool:
        if self.registry is None or name not in self.registry:
            return False
        return self.registry.get(name).foldable


def expr_is_pure(e: ast.Expr, ctx: PassContext, bound: set[str]) -> bool:
    """Conservatively decide whether evaluating ``e`` has no effects.

    ``bound`` holds names bound in enclosing scopes — an applied name that
    is bound is a first-class function value whose purity we cannot see, so
    the application is treated as impure.
    """
    if isinstance(e, (ast.Literal, ast.Null, ast.Var)):
        return True
    if isinstance(e, ast.TupleExpr):
        return all(expr_is_pure(i, ctx, bound) for i in e.items)
    if isinstance(e, ast.Apply):
        if not isinstance(e.callee, ast.Var):
            return False
        name = e.callee.name
        if name in bound or not ctx.operator_is_pure(name):
            return False
        return all(expr_is_pure(a, ctx, bound) for a in e.args)
    if isinstance(e, ast.If):
        return (
            expr_is_pure(e.cond, ctx, bound)
            and expr_is_pure(e.then, ctx, bound)
            and expr_is_pure(e.orelse, ctx, bound)
        )
    if isinstance(e, ast.Let):
        inner = set(bound)
        for b in e.bindings:
            if isinstance(b, (ast.SimpleBinding, ast.TupleBinding)):
                if not expr_is_pure(b.expr, ctx, inner):
                    return False
            inner.update(b.bound_names())
        return expr_is_pure(e.body, ctx, inner)
    if isinstance(e, ast.Iterate):
        return False  # lowered away before optimization; stay conservative
    return False


def count_uses(e: ast.Node, name: str) -> int:
    """Number of reads of ``name`` inside subtree ``e``.

    Within one top-level function names are globally unique (the single
    assignment rule forbids shadowing), so a plain occurrence count is a
    correct use count.
    """
    return sum(
        1 for n in e.walk() if isinstance(n, ast.Var) and n.name == name
    )


def bound_names_in(e: ast.Node) -> set[str]:
    """Every name bound anywhere inside subtree ``e``."""
    out: set[str] = set()
    for n in e.walk():
        if isinstance(n, (ast.SimpleBinding, ast.TupleBinding)):
            out.update(n.bound_names())
        elif isinstance(n, ast.FunBinding):
            out.add(n.func.name)
        elif isinstance(n, ast.FunDef):
            out.update(n.params)
        elif isinstance(n, ast.LoopVar):
            out.add(n.name)
    return out


def rename_bound(e: ast.Expr, mapping: dict[str, str]) -> ast.Expr:
    """Alpha-rename: rewrite binders and uses per ``mapping`` (in place).

    Only names present in ``mapping`` change; free names pass through.
    Because all names in ``mapping`` are bound *within* the subtree being
    renamed, this preserves meaning.
    """
    for n in e.walk():
        if isinstance(n, ast.Var) and n.name in mapping:
            n.name = mapping[n.name]
        elif isinstance(n, ast.SimpleBinding) and n.name in mapping:
            n.name = mapping[n.name]
        elif isinstance(n, ast.TupleBinding):
            n.names = [mapping.get(x, x) for x in n.names]
        elif isinstance(n, ast.FunDef):
            if n.name in mapping:
                n.name = mapping[n.name]
            n.params = [mapping.get(p, p) for p in n.params]
        elif isinstance(n, ast.LoopVar) and n.name in mapping:
            n.name = mapping[n.name]
    return e


def replace_child(parent: ast.Node, old: ast.Expr, new: ast.Expr) -> None:
    """Replace ``old`` (by identity) with ``new`` among ``parent``'s fields."""
    from dataclasses import fields as dc_fields

    for f in dc_fields(parent):
        v = getattr(parent, f.name)
        if v is old:
            setattr(parent, f.name, new)
            return
        if isinstance(v, list):
            for i, item in enumerate(v):
                if item is old:
                    v[i] = new
                    return
    raise ValueError("old is not a direct child of parent")
