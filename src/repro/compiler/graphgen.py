"""Graph conversion: AST functions become coordination-graph templates.

This is the last pass of the Pythia pipeline ("Graph Conversion" in
Table 1).  Each Delirium function becomes a :class:`~repro.graph.ir.Template`;
conditional arms and local functions become auxiliary templates referenced
by ``IF`` and ``CLOSURE`` nodes.  The generated graphs obey the runtime's
two execution assumptions (every node fires exactly once; inputs appear
exactly once), because no control flow remains *inside* a template —
conditionals expand one arm lazily and calls expand callee templates.

Closure conversion: the free variables of a local function or conditional
arm that are bound to *values* in the enclosing template (parameters, let
bindings, other closures) become captures; names that resolve globally
(top-level functions, operators) are re-materialized inside the nested
template with fresh ``CLOSURE``/``OPREF`` nodes instead, so capture lists
stay small.  A recursive local function captures itself through a
placeholder that the runtime ties off when the closure is created.

Tail positions are marked structurally: a ``CALL`` or ``IF`` node whose
output is the template result inherits the parent's continuation at run
time, which is what makes lowered ``iterate`` loops run in constant
activation space.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ArityError, CompileError, UnboundNameError
from ..graph.ir import GraphProgram, Node, NodeKind, Port, Template
from ..lang import ast
from ..runtime.operators import OperatorRegistry
from ..runtime.values import NULL, _SELF
from .analysis import ProgramAnalysis, free_variables
from .symtab import EnvAnalysis


@dataclass
class _Env:
    """Code-generation environment: name -> value location."""

    ports: dict[str, Port] = field(default_factory=dict)
    #: Qualified template name for names bound to local functions (the
    #: closure value itself also lives in ``ports``); used for recursion
    #: and arity facts.
    local_funcs: dict[str, str] = field(default_factory=dict)

    def child(self) -> "_Env":
        return _Env(dict(self.ports), dict(self.local_funcs))


class _TemplateBuilder:
    """Accumulates nodes for one template."""

    def __init__(
        self, name: str, params: list[str], captures: list[str], source: str
    ) -> None:
        self.template = Template(
            name=name,
            params=list(params),
            captures=list(captures),
            source_function=source,
        )
        for p in params:
            self.template.nodes.append(
                Node(kind=NodeKind.PARAM, name=p, label=f"{name}:{p}")
            )
        for c in captures:
            self.template.nodes.append(
                Node(kind=NodeKind.CAPTURE, name=c, label=f"{name}:^{c}")
            )
        self._const_cache: dict[tuple[type, object], Port] = {}

    def add(self, node: Node) -> Port:
        self.template.nodes.append(node)
        return Port(len(self.template.nodes) - 1, 0)

    def const(self, value: object) -> Port:
        key = None
        if isinstance(value, (int, float, str, bool)):
            key = (type(value), value)
            cached = self._const_cache.get(key)
            if cached is not None:
                return cached
        port = self.add(
            Node(kind=NodeKind.CONST, value=value, label=f"const:{value!r}")
        )
        if key is not None:
            self._const_cache[key] = port
        return port

    def placeholder_port(self, name: str) -> Port:
        names = self.template.placeholder_names()
        return Port(names.index(name), 0)

    def finish(self, result: Port) -> Template:
        self.template.result = result
        node = self.template.nodes[result.node]
        if node.kind in (NodeKind.CALL, NodeKind.IF) and result.out == 0:
            node.tail = True
        return self.template.finalize()


class GraphGenerator:
    """Generates a :class:`GraphProgram` from a lowered AST program."""

    def __init__(
        self,
        program: ast.Program,
        env_analysis: EnvAnalysis,
        prog_analysis: ProgramAnalysis,
        registry: OperatorRegistry | None = None,
        strict: bool = True,
    ) -> None:
        self.program = program
        self.env_analysis = env_analysis
        self.prog_analysis = prog_analysis
        self.registry = registry
        self.strict = strict
        self.graph = GraphProgram(entry="main")
        self.top_level = {f.name: f for f in program.functions}
        self._arm_counter: dict[str, int] = {}

    # ------------------------------------------------------------------
    def run(self) -> GraphProgram:
        for f in self.program.functions:
            self._compile_function(f, f.name, captures=[], outer_env=_Env())
        return self.graph

    # ------------------------------------------------------------------
    def _compile_function(
        self,
        f: ast.FunDef,
        qualname: str,
        captures: list[str],
        outer_env: _Env,
        context: str | None = None,
    ) -> Template:
        """Compile one function (or arm) into a template.

        ``context`` is the *logical* enclosing function for recursion
        queries: conditional-arm templates pass their host function's
        qualname, because the environment analysis attributes their calls
        to the host (arms are just expressions of the host's body).
        """
        builder = _TemplateBuilder(
            qualname, f.params, captures, source=qualname.split(".")[0]
        )
        env = _Env(local_funcs=dict(outer_env.local_funcs))
        for p in f.params:
            env.ports[p] = builder.placeholder_port(p)
        for c in captures:
            env.ports[c] = builder.placeholder_port(c)
            # A capture of a local-function closure keeps its identity so
            # recursion facts survive into the nested template.
        result = self._emit(f.body, builder, env, context=context or qualname)
        template = builder.finish(result)
        self.graph.add(template)
        return template

    # ------------------------------------------------------------------
    def _is_operator(self, name: str) -> bool:
        if self.registry is not None:
            return name in self.registry
        return True  # without a registry, any unknown name may be one

    def _resolve_value(
        self, var: ast.Var, builder: _TemplateBuilder, env: _Env, context: str
    ) -> Port:
        """Emit the port carrying the value of ``var``."""
        port = env.ports.get(var.name)
        if port is not None:
            return port
        if var.name in self.top_level:
            return builder.add(
                Node(
                    kind=NodeKind.CLOSURE,
                    template=var.name,
                    label=f"closure:{var.name}",
                )
            )
        if self._is_operator(var.name) or not self.strict:
            # Lenient mode defers the existence check to the runtime
            # (UnknownOperatorError), like linking against a missing symbol.
            return builder.add(
                Node(kind=NodeKind.OPREF, name=var.name, label=f"opref:{var.name}")
            )
        raise UnboundNameError(
            f"{var.name!r} is not bound, not a function, and not a registered "
            "operator",
            var.line,
            var.column,
        )

    # ------------------------------------------------------------------
    def _emit(
        self, e: ast.Expr, builder: _TemplateBuilder, env: _Env, context: str
    ) -> Port:
        if isinstance(e, ast.Literal):
            return builder.const(e.value)
        if isinstance(e, ast.Null):
            return builder.const(NULL)
        if isinstance(e, ast.Var):
            return self._resolve_value(e, builder, env, context)
        if isinstance(e, ast.TupleExpr):
            ports = [self._emit(i, builder, env, context) for i in e.items]
            return builder.add(
                Node(kind=NodeKind.TUPLE, inputs=ports, label=f"tuple/{len(ports)}")
            )
        if isinstance(e, ast.Apply):
            return self._emit_apply(e, builder, env, context)
        if isinstance(e, ast.If):
            return self._emit_if(e, builder, env, context)
        if isinstance(e, ast.Let):
            return self._emit_let(e, builder, env, context)
        if isinstance(e, ast.Iterate):
            raise CompileError(
                "iterate reached graph generation; run lowering first",
                e.line,
                e.column,
            )
        raise TypeError(f"unexpected AST node {type(e).__name__}")

    # ------------------------------------------------------------------
    def _emit_apply(
        self, e: ast.Apply, builder: _TemplateBuilder, env: _Env, context: str
    ) -> Port:
        arg_ports_later = e.args  # emitted below per branch
        if isinstance(e.callee, ast.Var):
            name = e.callee.name
            # Direct call to a statically known function?
            callee_qual: str | None = None
            if name in env.local_funcs:
                callee_qual = env.local_funcs[name]
            elif name not in env.ports and name in self.top_level:
                callee_qual = name
            if callee_qual is not None:
                callee_port = self._resolve_value(e.callee, builder, env, context)
                args = [self._emit(a, builder, env, context) for a in arg_ports_later]
                recursive = self.prog_analysis.is_recursive_call(
                    context, callee_qual
                )
                return builder.add(
                    Node(
                        kind=NodeKind.CALL,
                        inputs=[callee_port, *args],
                        recursive=recursive,
                        label=f"call:{name}",
                    )
                )
            if name not in env.ports and (
                self._is_operator(name) or not self.strict
            ):
                spec = (
                    self.registry.get(name)
                    if self.registry is not None and name in self.registry
                    else None
                )
                if (
                    spec is not None
                    and spec.arity is not None
                    and spec.arity != len(e.args)
                ):
                    raise ArityError(
                        f"operator {name!r} takes {spec.arity} argument(s), "
                        f"got {len(e.args)}",
                        e.line,
                        e.column,
                    )
                args = [self._emit(a, builder, env, context) for a in arg_ports_later]
                return builder.add(
                    Node(kind=NodeKind.OP, name=name, inputs=args, label=name)
                )
        # General case: computed callee (first-class function value).
        callee_port = self._emit(e.callee, builder, env, context)
        args = [self._emit(a, builder, env, context) for a in arg_ports_later]
        return builder.add(
            Node(
                kind=NodeKind.CALL,
                inputs=[callee_port, *args],
                recursive=False,
                label="call:<dynamic>",
            )
        )

    # ------------------------------------------------------------------
    def _captures_for(
        self, expr_free: list[str], env: _Env
    ) -> list[str]:
        """Free names that must be captured (port-valued in ``env``)."""
        return [name for name in expr_free if name in env.ports]

    def _emit_if(
        self, e: ast.If, builder: _TemplateBuilder, env: _Env, context: str
    ) -> Port:
        cond = self._emit(e.cond, builder, env, context)
        host = builder.template.name
        k = self._arm_counter.get(host, 0) + 1
        self._arm_counter[host] = k

        def make_arm(arm: ast.Expr, which: str) -> tuple[str, list[str]]:
            captures = self._captures_for(free_variables(arm, set()), env)
            name = f"{host}.if${k}.{which}"
            arm_fun = ast.FunDef(
                name=name, params=[], body=arm, line=arm.line, column=arm.column
            )
            self._compile_function(
                arm_fun, name, captures=captures, outer_env=env, context=context
            )
            return name, captures

        then_name, then_caps = make_arm(e.then, "then")
        else_name, else_caps = make_arm(e.orelse, "else")
        inputs = [cond]
        inputs += [env.ports[c] for c in then_caps]
        inputs += [env.ports[c] for c in else_caps]
        return builder.add(
            Node(
                kind=NodeKind.IF,
                inputs=inputs,
                then_template=then_name,
                else_template=else_name,
                n_then_captures=len(then_caps),
                label=f"if${k}",
            )
        )

    # ------------------------------------------------------------------
    def _emit_let(
        self, e: ast.Let, builder: _TemplateBuilder, env: _Env, context: str
    ) -> Port:
        inner = env.child()
        for b in e.bindings:
            if isinstance(b, ast.SimpleBinding):
                inner.ports[b.name] = self._emit(b.expr, builder, inner, context)
            elif isinstance(b, ast.TupleBinding):
                src = self._emit(b.expr, builder, inner, context)
                untuple = Node(
                    kind=NodeKind.UNTUPLE,
                    inputs=[src],
                    n_outputs=len(b.names),
                    label=f"untuple/{len(b.names)}",
                )
                builder.template.nodes.append(untuple)
                node_id = len(builder.template.nodes) - 1
                for i, nm in enumerate(b.names):
                    inner.ports[nm] = Port(node_id, i)
            elif isinstance(b, ast.FunBinding):
                self._emit_funbinding(b, builder, inner, context)
            else:  # pragma: no cover
                raise TypeError(f"unexpected binding {type(b).__name__}")
        return self._emit(e.body, builder, inner, context)

    def _emit_funbinding(
        self,
        b: ast.FunBinding,
        builder: _TemplateBuilder,
        env: _Env,
        context: str,
    ) -> None:
        f = b.func
        qualname = f"{context}.{f.name}"
        bound_here = set(f.params)
        raw_free = free_variables(f.body, bound_here)
        captures: list[str] = []
        self_capture = False
        for name in raw_free:
            if name == f.name:
                self_capture = True
                captures.append(name)
            elif name in env.ports:
                captures.append(name)
        nested_env = env.child()
        nested_env.local_funcs[f.name] = qualname
        self._compile_function(f, qualname, captures=captures, outer_env=nested_env)
        capture_ports: list[Port] = []
        for name in captures:
            if self_capture and name == f.name:
                capture_ports.append(builder.const(_SELF))
            else:
                capture_ports.append(env.ports[name])
        closure_port = builder.add(
            Node(
                kind=NodeKind.CLOSURE,
                template=qualname,
                inputs=capture_ports,
                label=f"closure:{f.name}",
            )
        )
        env.ports[f.name] = closure_port
        env.local_funcs[f.name] = qualname


def generate_graphs(
    program: ast.Program,
    env_analysis: EnvAnalysis,
    prog_analysis: ProgramAnalysis,
    registry: OperatorRegistry | None = None,
    strict: bool = True,
) -> GraphProgram:
    """Convert a lowered, analyzed AST program to coordination graphs."""
    return GraphGenerator(
        program, env_analysis, prog_analysis, registry, strict
    ).run()
