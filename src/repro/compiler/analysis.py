"""Whole-program analyses: recursion detection, purity, free variables.

Built on top of :mod:`repro.compiler.symtab`'s per-function facts:

* **Recursion detection** — strongly connected components of the static
  call graph.  A call from ``f`` to ``g`` is *recursive* when ``f`` and
  ``g`` share an SCC (this covers self-recursion and mutual recursion).
  The runtime's three-level priority queue schedules recursive
  call-closure expansions last, which is what keeps parallel backtracking
  programs like eight queens from exploding into unbounded activations
  (sections 3 and 7 of the paper).
* **Purity** — a function is pure when every operator it applies is
  registered pure and every callee is pure; computed as a greatest
  fixpoint (assume pure, strike out).  Dynamic calls are conservatively
  impure.  Purity licenses common-subexpression and dead-code elimination.
* **Free variables of an arbitrary expression** — used by graph generation
  when closure-converting conditional arms and local functions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..lang import ast
from .symtab import EnvAnalysis


# ---------------------------------------------------------------------------
# Strongly connected components (iterative Tarjan)
# ---------------------------------------------------------------------------


def strongly_connected_components(
    graph: dict[str, set[str]]
) -> list[list[str]]:
    """Tarjan's algorithm, iterative to survive deep recursion chains.

    ``graph`` maps each vertex to its successor set; successors that are
    not themselves vertices are ignored (calls to operators).
    Returns components in reverse topological order.
    """
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    components: list[list[str]] = []
    counter = 0

    for root in graph:
        if root in index:
            continue
        work: list[tuple[str, list[str], int]] = [
            (root, sorted(s for s in graph[root] if s in graph), 0)
        ]
        while work:
            v, succs, i = work.pop()
            if i == 0:
                index[v] = lowlink[v] = counter
                counter += 1
                stack.append(v)
                on_stack.add(v)
            advanced = False
            while i < len(succs):
                w = succs[i]
                i += 1
                if w not in index:
                    work.append((v, succs, i))
                    work.append((w, sorted(s for s in graph[w] if s in graph), 0))
                    advanced = True
                    break
                if w in on_stack:
                    lowlink[v] = min(lowlink[v], index[w])
            if advanced:
                continue
            if lowlink[v] == index[v]:
                component: list[str] = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    component.append(w)
                    if w == v:
                        break
                components.append(component)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[v])
    return components


# ---------------------------------------------------------------------------
# Program-level analysis results
# ---------------------------------------------------------------------------


@dataclass
class ProgramAnalysis:
    """Recursion and purity facts derived from an :class:`EnvAnalysis`."""

    env: EnvAnalysis
    #: Map function qualname -> SCC id.
    scc_of: dict[str, int] = field(default_factory=dict)
    #: SCC ids that contain a cycle (size > 1, or a self loop).
    cyclic_sccs: set[int] = field(default_factory=set)
    #: Function qualnames proven pure.
    pure_functions: set[str] = field(default_factory=set)

    def is_recursive_call(self, caller: str, callee: str) -> bool:
        """True when a static call ``caller -> callee`` closes a cycle."""
        a = self.scc_of.get(caller)
        b = self.scc_of.get(callee)
        return a is not None and a == b and a in self.cyclic_sccs

    def is_recursive_function(self, qualname: str) -> bool:
        scc = self.scc_of.get(qualname)
        return scc is not None and scc in self.cyclic_sccs

    def is_pure_function(self, qualname: str) -> bool:
        return qualname in self.pure_functions


def analyze_program(
    env: EnvAnalysis, pure_operators: set[str] | None = None
) -> ProgramAnalysis:
    """Compute recursion SCCs and the purity fixpoint.

    Parameters
    ----------
    env:
        The environment analysis (provides the call graph).
    pure_operators:
        Names of operators registered as pure.  ``None`` means "assume all
        operators pure", which is only safe for tests; the driver always
        passes the registry's actual pure set.
    """
    result = ProgramAnalysis(env=env)
    graph = {q: set(info.calls) for q, info in env.functions.items()}
    components = strongly_connected_components(graph)
    for scc_id, component in enumerate(components):
        cyclic = len(component) > 1 or (
            component[0] in graph.get(component[0], set())
        )
        for name in component:
            result.scc_of[name] = scc_id
        if cyclic:
            result.cyclic_sccs.add(scc_id)

    # Purity fixpoint: start optimistic, strike impure until stable.
    pure = set(env.functions)
    changed = True
    while changed:
        changed = False
        for qualname, info in env.functions.items():
            if qualname not in pure:
                continue
            impure = info.has_dynamic_calls
            if not impure and pure_operators is not None:
                impure = any(op not in pure_operators for op in info.op_calls)
            if not impure:
                impure = any(callee not in pure for callee in info.calls)
            if impure:
                pure.discard(qualname)
                changed = True
    result.pure_functions = pure
    return result


# ---------------------------------------------------------------------------
# Free variables of an expression
# ---------------------------------------------------------------------------


def free_variables(expr: ast.Expr, bound: set[str]) -> list[str]:
    """Names read by ``expr`` that are not in ``bound``, in first-use order.

    Function names and operator names count as free too — the caller
    decides which of them are globally resolvable (top-level functions and
    operators need no capture; everything else does).
    """
    out: list[str] = []
    seen: set[str] = set()

    def visit(e: ast.Expr, bound: frozenset[str]) -> None:
        if isinstance(e, ast.Var):
            if e.name not in bound and e.name not in seen:
                seen.add(e.name)
                out.append(e.name)
            return
        if isinstance(e, (ast.Literal, ast.Null)):
            return
        if isinstance(e, ast.TupleExpr):
            for item in e.items:
                visit(item, bound)
            return
        if isinstance(e, ast.Apply):
            visit(e.callee, bound)
            for a in e.args:
                visit(a, bound)
            return
        if isinstance(e, ast.If):
            visit(e.cond, bound)
            visit(e.then, bound)
            visit(e.orelse, bound)
            return
        if isinstance(e, ast.Let):
            inner = set(bound)
            for b in e.bindings:
                if isinstance(b, ast.SimpleBinding):
                    visit(b.expr, frozenset(inner))
                    inner.add(b.name)
                elif isinstance(b, ast.TupleBinding):
                    visit(b.expr, frozenset(inner))
                    inner.update(b.names)
                elif isinstance(b, ast.FunBinding):
                    inner.add(b.func.name)
                    fn_bound = inner | set(b.func.params)
                    visit(b.func.body, frozenset(fn_bound))
            visit(e.body, frozenset(inner))
            return
        if isinstance(e, ast.Iterate):
            for lv in e.loopvars:
                visit(lv.init, bound)
            inner = frozenset(bound | {lv.name for lv in e.loopvars})
            visit(e.cond, inner)
            for lv in e.loopvars:
                visit(lv.update, inner)
            visit(e.result, inner)
            return
        raise TypeError(f"unexpected AST node {type(e).__name__}")

    visit(expr, frozenset(bound))
    return out


class FreshNames:
    """Generator of names guaranteed not to collide with program names.

    Compiler-generated names contain ``$`` which the scanner accepts inside
    identifiers but user programs conventionally avoid; uniqueness is still
    enforced against the provided used-name set.
    """

    def __init__(self, used: set[str]) -> None:
        self._used = set(used)
        self._counters: dict[str, int] = {}

    def fresh(self, stem: str) -> str:
        n = self._counters.get(stem, 0)
        while True:
            n += 1
            candidate = f"{stem}${n}"
            if candidate not in self._used:
                self._counters[stem] = n
                self._used.add(candidate)
                return candidate
