"""Metrics exposition: Prometheus text format and a scrape endpoint.

Renders a :class:`~repro.obs.metrics.MetricsRegistry` in the Prometheus
text exposition format (version 0.0.4) and, opt-in, serves it over a
stdlib-only HTTP endpoint — the scrape surface long-running runs and the
future server mode need.  No third-party client library: the format is a
few lines of text per metric and the server is ``http.server``.

Mapping from registry to families (all names get the ``delirium_``
namespace and are sanitized to ``[a-zA-Z0-9_:]``):

* counters — ``delirium_<name>`` (a ``counter``); per-label attribution
  is emitted as a parallel ``delirium_<name>_by_label{label="..."}``
  family so the bare total and the breakdown never mix samples;
* gauges — ``delirium_<name>`` plus ``delirium_<name>_high`` for the
  high-water mark;
* histograms — the standard cumulative ``_bucket{le="..."}`` / ``_sum``
  / ``_count`` triple.  Registry names of the form ``family/key`` (e.g.
  ``op_ticks/convol``) become one family with a ``key`` label;
* series are skipped — a scrape is a point sample, the time dimension is
  Prometheus's job.

:class:`MetricsServer` serves ``/metrics`` (the rendering) and
``/healthz`` (a JSON liveness document) from a daemon thread; bind port
``0`` to let the OS pick (``server.port`` reports the real one).
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable

from .metrics import MetricsRegistry

#: Prefix for every exported family.
NAMESPACE = "delirium"

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_VALID_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? [^ ]+( [0-9]+)?$"
)


def _metric_name(raw: str) -> str:
    name = _NAME_RE.sub("_", raw)
    if name and name[0].isdigit():
        name = "_" + name
    return f"{NAMESPACE}_{name}"


def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r'\"').replace("\n", r"\n")


def _fmt(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value != value:  # NaN
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class _Family:
    """One metric family: TYPE header plus its sample lines, in order."""

    def __init__(self, name: str, kind: str) -> None:
        self.name = name
        self.kind = kind
        self.samples: list[str] = []

    def add(
        self,
        value: float,
        labels: dict[str, str] | None = None,
        suffix: str = "",
    ) -> None:
        if labels:
            inner = ",".join(
                f'{k}="{_escape_label(v)}"' for k, v in labels.items()
            )
            self.samples.append(
                f"{self.name}{suffix}{{{inner}}} {_fmt(value)}"
            )
        else:
            self.samples.append(f"{self.name}{suffix} {_fmt(value)}")

    def render(self) -> list[str]:
        return [f"# TYPE {self.name} {self.kind}", *self.samples]


def render_prometheus(registry: MetricsRegistry) -> str:
    """Render the registry as Prometheus text exposition format 0.0.4."""
    families: dict[str, _Family] = {}

    def family(name: str, kind: str) -> _Family:
        fam = families.get(name)
        if fam is None:
            fam = families[name] = _Family(name, kind)
        return fam

    for raw, counter in sorted(registry.counters.items()):
        fam = family(_metric_name(raw), "counter")
        fam.add(counter.value)
        if counter.by_label:
            by = family(_metric_name(raw) + "_by_label", "counter")
            for label, v in sorted(counter.by_label.items()):
                by.add(v, {"label": label})

    for raw, gauge in sorted(registry.gauges.items()):
        base, _, key = raw.partition("/")
        labels = {"key": key} if key else None
        fam = family(_metric_name(base), "gauge")
        fam.add(gauge.value, labels)
        high = family(_metric_name(base) + "_high", "gauge")
        high.add(gauge.high, labels)

    for raw, hist in sorted(registry.histograms.items()):
        base, _, key = raw.partition("/")
        fam = family(_metric_name(base), "histogram")
        labels = {"key": key} if key else {}
        cumulative = 0
        for bound, n in zip(hist.bounds, hist.counts):
            cumulative += n
            fam.add(cumulative, {**labels, "le": _fmt(bound)}, "_bucket")
        fam.add(hist.count, {**labels, "le": "+Inf"}, "_bucket")
        fam.add(hist.sum, labels or None, "_sum")
        fam.add(hist.count, labels or None, "_count")

    lines: list[str] = []
    for fam in families.values():
        lines.extend(fam.render())
    return "\n".join(lines) + ("\n" if lines else "")


def validate_prometheus_text(text: str) -> list[str]:
    """Lint a text-format exposition; returns problems (empty = valid).

    A conservative subset of what promtool checks: line syntax, TYPE
    headers preceding their samples, and cumulative (non-decreasing)
    histogram buckets.  Used by the test suite so validity is asserted
    without a Prometheus client dependency.
    """
    problems: list[str] = []
    typed: set[str] = set()
    bucket_runs: dict[str, float] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                typed.add(parts[2])
            continue
        if not _VALID_LINE.match(line):
            problems.append(f"line {lineno}: malformed sample {line!r}")
            continue
        name = re.split(r"[{ ]", line, maxsplit=1)[0]
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in typed:
                base = name[: -len(suffix)]
        if base not in typed and name not in typed:
            problems.append(f"line {lineno}: sample {name!r} has no TYPE")
        if name.endswith("_bucket") and '{' in line:
            series = line[: line.rindex("}") + 1]
            key = re.sub(r'le="[^"]*",?', "", series)
            value = float(line.rsplit(" ", 1)[1])
            if value < bucket_runs.get(key, 0.0):
                problems.append(
                    f"line {lineno}: histogram buckets not cumulative"
                )
            bucket_runs[key] = value
    return problems


class MetricsServer:
    """Opt-in stdlib HTTP endpoint serving ``/metrics`` and ``/healthz``.

    Parameters
    ----------
    registry:
        The registry to render, or a zero-argument callable returning
        one (server mode swaps registries per run).
    port:
        TCP port; ``0`` picks a free one (read it back from ``.port``).
    host:
        Bind address (default loopback).
    health:
        Optional zero-argument callable returning a JSON-serializable
        dict merged into the ``/healthz`` document.
    """

    def __init__(
        self,
        registry: MetricsRegistry | Callable[[], MetricsRegistry],
        port: int = 0,
        host: str = "127.0.0.1",
        health: Callable[[], dict[str, Any]] | None = None,
    ) -> None:
        self._registry = registry
        self._health = health
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self._host = host
        self._port = port

    @property
    def port(self) -> int:
        """The bound port (valid after :meth:`start`)."""
        if self._httpd is not None:
            return self._httpd.server_address[1]
        return self._port

    def render(self) -> str:
        registry = self._registry
        if callable(registry):
            registry = registry()
        return render_prometheus(registry)

    def health(self) -> dict[str, Any]:
        doc: dict[str, Any] = {"status": "ok"}
        if self._health is not None:
            doc.update(self._health())
        return doc

    def start(self) -> "MetricsServer":
        if self._httpd is not None:
            return self
        server = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                if self.path.split("?")[0] == "/metrics":
                    body = server.render().encode()
                    ctype = "text/plain; version=0.0.4; charset=utf-8"
                elif self.path.split("?")[0] == "/healthz":
                    body = json.dumps(server.health()).encode()
                    ctype = "application/json"
                else:
                    self.send_error(404)
                    return
                self.send_response(200)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args: Any) -> None:
                pass  # scrapes must not spam the run's stderr

        self._httpd = ThreadingHTTPServer((self._host, self._port), Handler)
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="delirium-metrics",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()
