"""Runtime observability: event bus, metrics registry, trace export.

The inspectability layer the paper's environment hinted at (per-node
timing dumps, section 5.2/6.3) generalized into three composable pieces:

* :mod:`repro.obs.events` — typed lifecycle events on an
  :class:`EventBus` that every runtime layer publishes through an
  optional hook (near-zero cost with no subscribers);
* :mod:`repro.obs.metrics` — counters / gauges / histograms / series fed
  by the standard subscriber (:func:`attach_metrics`);
* :mod:`repro.obs.chrome_trace` — Chrome trace-event JSON export,
  loadable in Perfetto, one track per (simulated) processor.

Typical use::

    from repro.obs import ChromeTraceCollector, EventBus, attach_metrics

    bus = EventBus()
    metrics = attach_metrics(bus)
    collector = ChromeTraceCollector()
    collector.attach(bus)
    result = SimulatedExecutor(cray_2(4), bus=bus).run(program)
    collector.write("run.trace.json")
    print(metrics.summary_table())

See ``docs/OBSERVABILITY.md`` for the full event taxonomy.
"""

from .chrome_trace import (
    TICK_SCALE,
    WALL_SCALE,
    ChromeTraceCollector,
    validate_trace,
)
from .critpath import (
    CriticalPathReport,
    FiringRecord,
    compare_critical_paths,
    critical_path,
)
from .events import (
    ALL_EVENTS,
    EVENT_LOG_MAXLEN,
    ActivationAllocated,
    ActivationRecycled,
    BlockAllocated,
    BlockReleased,
    BlockRetained,
    BufferRecycled,
    CheckpointWritten,
    CowCopy,
    DonationApplied,
    Event,
    EventBus,
    EventLog,
    ExecutorDegraded,
    Expansion,
    FireBatchFormed,
    FireRetried,
    FireTimedOut,
    OpFinished,
    OpStarted,
    OperatorsFused,
    QueueDepthSample,
    QueueSaturated,
    ResultReceived,
    RunFinished,
    RunResumed,
    RunStarted,
    ShmBlockCreated,
    ShmSegmentReclaimed,
    TailExpansion,
    TaskDispatched,
    TaskEnqueued,
    TaskFired,
    WorkerCrashed,
    WorkerRespawned,
    observe_blocks,
)
from .expo import (
    MetricsServer,
    render_prometheus,
    validate_prometheus_text,
)
from .flightrec import (
    DEFAULT_CAPACITY,
    FlightRecorder,
    encode_event,
)
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Series,
    attach_metrics,
)
from .runctx import RunContext, next_run_id

__all__ = [
    "ALL_EVENTS",
    "ActivationAllocated",
    "ActivationRecycled",
    "BlockAllocated",
    "BlockReleased",
    "BlockRetained",
    "BufferRecycled",
    "CheckpointWritten",
    "ChromeTraceCollector",
    "Counter",
    "CowCopy",
    "CriticalPathReport",
    "DEFAULT_BUCKETS",
    "DEFAULT_CAPACITY",
    "DonationApplied",
    "EVENT_LOG_MAXLEN",
    "Event",
    "EventBus",
    "EventLog",
    "ExecutorDegraded",
    "Expansion",
    "FireBatchFormed",
    "FireRetried",
    "FireTimedOut",
    "FiringRecord",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsServer",
    "OpFinished",
    "OpStarted",
    "OperatorsFused",
    "QueueDepthSample",
    "QueueSaturated",
    "ResultReceived",
    "RunContext",
    "RunFinished",
    "RunResumed",
    "RunStarted",
    "Series",
    "ShmBlockCreated",
    "ShmSegmentReclaimed",
    "TICK_SCALE",
    "TailExpansion",
    "TaskDispatched",
    "TaskEnqueued",
    "TaskFired",
    "WALL_SCALE",
    "WorkerCrashed",
    "WorkerRespawned",
    "attach_metrics",
    "compare_critical_paths",
    "critical_path",
    "encode_event",
    "next_run_id",
    "observe_blocks",
    "render_prometheus",
    "validate_prometheus_text",
    "validate_trace",
]
