"""Critical-path profiler: causal time attribution over one run's events.

The paper's timing dump (§5.2) sums time per operator; that view found
``post_up`` but cannot answer the question ROADMAP item 2 asks: *which
sequence of firings determined the makespan, and where does the master's
overhead fraction actually live?*  This module reconstructs the causal
DAG of one run from its event stream and answers both.

Causality reconstruction
------------------------
Single-assignment semantics make the causal parent of a firing precise:
a task enters the ready queue the moment the firing that delivered its
*last missing input* commits.  Every executor serializes engine
bookkeeping (the sequential executor trivially, the process executor's
master loop by construction), and each firing's
:class:`~repro.obs.events.TaskEnqueued` children are emitted *before*
that firing's own :class:`~repro.obs.events.TaskFired` span — so in
stream order, a ``TaskFired`` claims every unclaimed enqueue before it.
``TaskEnqueued.seq`` / ``TaskFired.seq`` join the two halves of each
task, and :class:`~repro.obs.events.TaskDispatched` /
:class:`~repro.obs.events.ResultReceived` (joined on ``call_id``) add
the IPC legs of remote firings.

The **critical path** is then the parent chain from the last-finishing
firing back to a root: the one sequence of causally ordered work whose
durations bound the makespan from below.  **Slack** per firing is how
long its commit could have been delayed before its earliest dependent
(or the end of the run) would have noticed.

Master-overhead attribution
---------------------------
Master-track spans (``processor == 0``) tile the master's timeline, so
the run's wall time decomposes into three wall-additive parts —
operator bodies run on the master, engine overhead inside master spans
(dispatch + commit + bookkeeping), and master wait (gaps between master
spans: blocking on workers, or pure scheduler cost between fires).  The
decomposition is *measured*, not defined: bodies come from
``OpFinished``, spans from ``TaskFired``, wall from the run — so
``reconciliation_error`` is a genuine cross-check that the accounting
explains the measured wallclock (the acceptance bound is 5% on the
retina benchmark).  Worker bodies and per-call IPC latency are reported
alongside (they overlap the master timeline, so they are informational,
not additive).

Scope: built for the sequential and process executors, whose masters
serialize bookkeeping.  Threaded runs produce op spans only; the
profiler degrades to body/IPC accounting there.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from .events import (
    Event,
    OpFinished,
    ResultReceived,
    TaskDispatched,
    TaskEnqueued,
    TaskFired,
)

#: Reconciliation bound the benchmarks commit to: attributed time must
#: explain measured wallclock to within this fraction.
RECONCILIATION_TOLERANCE = 0.05


@dataclass
class FiringRecord:
    """One task firing, with its causal parent and queue timing."""

    seq: int
    label: str
    kind: str
    template: str
    aid: int
    node_id: int
    start: float
    duration: float
    processor: int
    enqueued: float | None = None
    parent_seq: int | None = None

    @property
    def end(self) -> float:
        return self.start + self.duration

    @property
    def queue_wait(self) -> float:
        if self.enqueued is None:
            return 0.0
        return max(0.0, self.start - self.enqueued)


@dataclass
class CriticalPathReport:
    """Everything :func:`critical_path` derives from one run's events."""

    #: Measured run wall time (supplied, or the last event timestamp).
    wall_seconds: float
    #: Firings with known identity (``seq >= 0``).
    n_firings: int
    #: Root-to-final chain of causally ordered firings.
    path: list[FiringRecord] = field(default_factory=list)
    #: seq -> slack seconds (how late the firing could have finished).
    slack: dict[int, float] = field(default_factory=dict)
    #: Wall-additive master-timeline decomposition plus informational
    #: (overlapping) terms; see the module docstring.
    attribution: dict[str, float] = field(default_factory=dict)

    @property
    def path_seconds(self) -> float:
        return sum(r.duration for r in self.path)

    @property
    def path_queue_wait(self) -> float:
        return sum(r.queue_wait for r in self.path)

    @property
    def explained_seconds(self) -> float:
        """The wall-additive attribution terms, summed."""
        return (
            self.attribution.get("operator_body", 0.0)
            + self.attribution.get("engine_overhead", 0.0)
            + self.attribution.get("master_wait", 0.0)
        )

    @property
    def reconciliation_error(self) -> float:
        """|explained − wall| / wall: 0 means perfect accounting."""
        if self.wall_seconds <= 0:
            return 0.0
        return abs(self.explained_seconds - self.wall_seconds) / self.wall_seconds

    @property
    def master_overhead_fraction(self) -> float:
        """Engine overhead over wall — ROADMAP item 2's number."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.attribution.get("engine_overhead", 0.0) / self.wall_seconds

    def top_slack(self, n: int = 5) -> list[tuple[str, float]]:
        """The ``n`` slackest firings: (label, slack seconds)."""
        by_seq = {r.seq: r for r in self.path}
        ranked = sorted(
            (
                (seq, s)
                for seq, s in self.slack.items()
                if seq not in by_seq
            ),
            key=lambda kv: -kv[1],
        )[:n]
        labels = self._labels_by_seq()
        return [(labels.get(seq, f"seq {seq}"), s) for seq, s in ranked]

    def _labels_by_seq(self) -> dict[int, str]:
        return getattr(self, "_label_cache", {})

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready summary (``BENCH_wallclock.json``, compare_runs)."""
        return {
            "wall_seconds": self.wall_seconds,
            "n_firings": self.n_firings,
            "path_seconds": self.path_seconds,
            "path_length": len(self.path),
            "path_queue_wait": self.path_queue_wait,
            "path_labels": [r.label for r in self.path],
            "attribution": dict(self.attribution),
            "explained_seconds": self.explained_seconds,
            "reconciliation_error": self.reconciliation_error,
            "master_overhead_fraction": self.master_overhead_fraction,
        }

    def describe(self, unit: str = "seconds", top: int = 12) -> str:
        """Human rendering for ``delirium profile --critical-path``."""
        fmt = (lambda v: f"{v:.6f}") if unit == "seconds" else (
            lambda v: f"{v:.0f}"
        )
        lines = [
            f"critical path: {len(self.path)} of {self.n_firings} firings, "
            f"{fmt(self.path_seconds)} busy + {fmt(self.path_queue_wait)} "
            f"queued of {fmt(self.wall_seconds)} wall"
        ]
        shown = self.path if len(self.path) <= top else (
            self.path[: top // 2] + self.path[-(top - top // 2):]
        )
        lines.append(
            f"  {'label':<22} {'kind':<6} {'start':>12} {'dur':>12} "
            f"{'wait':>12} {'proc':>4}"
        )
        for i, r in enumerate(shown):
            if len(self.path) > top and i == top // 2:
                lines.append(f"  ... {len(self.path) - top} more ...")
            lines.append(
                f"  {r.label:<22} {r.kind:<6} {fmt(r.start):>12} "
                f"{fmt(r.duration):>12} {fmt(r.queue_wait):>12} "
                f"{r.processor:>4}"
            )
        lines.append("attribution:")
        wall = self.wall_seconds or 1.0
        for key in (
            "operator_body",
            "engine_overhead",
            "master_wait",
            "worker_body",
            "ipc_latency",
            "queue_wait",
        ):
            if key in self.attribution:
                v = self.attribution[key]
                note = (
                    ""
                    if key in ("operator_body", "engine_overhead", "master_wait")
                    else "  (overlaps)"
                )
                lines.append(
                    f"  {key:<18} {fmt(v):>12}  {v / wall:>6.1%}{note}"
                )
        lines.append(
            f"explained {fmt(self.explained_seconds)} vs wall "
            f"{fmt(self.wall_seconds)} "
            f"(reconciliation error {self.reconciliation_error:.1%})"
        )
        return "\n".join(lines)


def critical_path(
    events: Iterable[Event], wall_seconds: float | None = None
) -> CriticalPathReport:
    """Reconstruct the causal DAG of one run and attribute its time.

    ``events`` is the run's stream in emission order (an
    :class:`~repro.obs.events.EventLog`'s ``.events`` or any iterable);
    ``wall_seconds`` the measured wall time (defaults to the latest span
    end seen, which under-reads by the final commit's tail).
    """
    firings: dict[int, FiringRecord] = {}
    order: list[int] = []
    enqueues: dict[int, float] = {}
    unclaimed: list[int] = []
    parent: dict[int, int] = {}
    op_body = 0.0
    worker_body = 0.0
    dispatched_at: dict[int, float] = {}
    ipc_latency = 0.0
    queue_wait_total = 0.0
    last_ts = 0.0

    for e in events:
        if isinstance(e, TaskEnqueued):
            enqueues[e.seq] = e.ts
            unclaimed.append(e.seq)
        elif isinstance(e, TaskFired):
            last_ts = max(last_ts, e.ts + e.duration)
            if e.seq < 0:
                continue  # unattributed span (legacy threaded emitters)
            rec = FiringRecord(
                e.seq,
                e.label,
                e.kind,
                e.template,
                e.aid,
                e.node_id,
                e.ts,
                e.duration,
                e.processor,
                enqueued=enqueues.get(e.seq),
            )
            firings[e.seq] = rec
            order.append(e.seq)
            # Claim the enqueues this firing emitted: they arrive in
            # stream order just before this span, and are stamped after
            # the span's start.  Anything earlier (root enqueues from
            # ``state.start``, or a sibling's leftovers) stays unclaimed
            # rather than being mis-parented.
            still: list[int] = []
            for child in unclaimed:
                if child != e.seq and enqueues[child] >= e.ts:
                    parent[child] = e.seq
                else:
                    still.append(child)
            unclaimed = still
        elif isinstance(e, OpFinished):
            op_body += e.duration
            last_ts = max(last_ts, e.ts)
        elif isinstance(e, ResultReceived):
            worker_body += e.duration
            t_sent = dispatched_at.pop(e.call_id, None)
            if t_sent is not None:
                ipc_latency += max(0.0, (e.ts - t_sent) - e.duration)
            last_ts = max(last_ts, e.ts)
        elif isinstance(e, TaskDispatched):
            dispatched_at[e.call_id] = e.ts

    for rec in firings.values():
        p = parent.get(rec.seq)
        if p is not None and p in firings:
            rec.parent_seq = p
        queue_wait_total += rec.queue_wait

    wall = wall_seconds if wall_seconds is not None else last_ts

    # -- critical path: parent chain from the last-finishing firing -----
    path: list[FiringRecord] = []
    if firings:
        cur: FiringRecord | None = max(firings.values(), key=lambda r: r.end)
        seen: set[int] = set()
        while cur is not None and cur.seq not in seen:
            seen.add(cur.seq)
            path.append(cur)
            cur = (
                firings.get(cur.parent_seq)
                if cur.parent_seq is not None
                else None
            )
        path.reverse()

    # -- per-firing slack ------------------------------------------------
    children: dict[int, list[FiringRecord]] = {}
    for rec in firings.values():
        if rec.parent_seq is not None:
            children.setdefault(rec.parent_seq, []).append(rec)
    run_end = max((r.end for r in firings.values()), default=wall)
    slack: dict[int, float] = {}
    for rec in firings.values():
        kids = children.get(rec.seq)
        if kids:
            slack[rec.seq] = max(
                0.0, min(k.start for k in kids) - rec.end
            )
        else:
            slack[rec.seq] = max(0.0, run_end - rec.end)

    # -- master-timeline decomposition -----------------------------------
    # Master spans (processor 0) are serialized; local bodies are the
    # OpFinished total minus the worker-reported share.
    master = sorted(
        (r for r in firings.values() if r.processor == 0),
        key=lambda r: r.start,
    )
    master_busy = sum(r.duration for r in master)
    local_body = max(0.0, op_body - worker_body)
    master_wait = 0.0
    if master:
        master_wait += max(0.0, master[0].start)
        cursor = master[0].end
        for r in master[1:]:
            master_wait += max(0.0, r.start - cursor)
            cursor = max(cursor, r.end)
        master_wait += max(0.0, wall - cursor)
    attribution = {
        "operator_body": local_body,
        "engine_overhead": max(0.0, master_busy - local_body),
        "master_wait": master_wait,
        "queue_wait": queue_wait_total,
    }
    if worker_body or ipc_latency:
        attribution["worker_body"] = worker_body
        attribution["ipc_latency"] = ipc_latency

    report = CriticalPathReport(
        wall_seconds=wall,
        n_firings=len(firings),
        path=path,
        slack=slack,
        attribution=attribution,
    )
    report._label_cache = {  # type: ignore[attr-defined]
        seq: rec.label for seq, rec in firings.items()
    }
    return report


def compare_critical_paths(
    baseline: CriticalPathReport, candidate: CriticalPathReport
) -> str:
    """Diff two critical-path summaries (regression-triage view).

    Used by :mod:`repro.tools.compare_runs`; answers "did the path get
    longer, and which attribution bucket moved?".
    """
    lines = [
        f"wall:          {baseline.wall_seconds:.6f} -> "
        f"{candidate.wall_seconds:.6f} "
        f"({_delta(baseline.wall_seconds, candidate.wall_seconds)})",
        f"critical path: {baseline.path_seconds:.6f} -> "
        f"{candidate.path_seconds:.6f} "
        f"({_delta(baseline.path_seconds, candidate.path_seconds)}), "
        f"{len(baseline.path)} -> {len(candidate.path)} firings",
        f"overhead frac: {baseline.master_overhead_fraction:.1%} -> "
        f"{candidate.master_overhead_fraction:.1%}",
    ]
    keys = sorted(set(baseline.attribution) | set(candidate.attribution))
    for key in keys:
        before = baseline.attribution.get(key, 0.0)
        after = candidate.attribution.get(key, 0.0)
        if before or after:
            lines.append(
                f"  {key:<18} {before:>12.6f} -> {after:>12.6f} "
                f"({_delta(before, after)})"
            )
    before_ops = [r.label for r in baseline.path if r.kind == "op"]
    after_ops = [r.label for r in candidate.path if r.kind == "op"]
    if before_ops != after_ops:
        lines.append(
            f"path operators changed: {_summarize(before_ops)} -> "
            f"{_summarize(after_ops)}"
        )
    return "\n".join(lines)


def _delta(before: float, after: float) -> str:
    if before <= 0:
        return "n/a"
    return f"{(after - before) / before:+.1%}"


def _summarize(labels: list[str], limit: int = 6) -> str:
    if len(labels) <= limit:
        return ",".join(labels) or "(none)"
    return ",".join(labels[:limit]) + f",...({len(labels) - limit} more)"
