"""Chrome trace-event JSON export (loadable in Perfetto / chrome://tracing).

The paper's environment answered "where did the time go?" with text dumps;
modern trace viewers answer it visually.  :class:`ChromeTraceCollector`
subscribes to the event bus and renders the run in the Trace Event Format
(the JSON dialect both ``chrome://tracing`` and https://ui.perfetto.dev
load):

* each :class:`~repro.obs.events.TaskFired` span becomes a ``B``/``E``
  duration pair on the track of its processor — one Perfetto track per
  simulated processor (or worker thread), so the retina's three-idle-
  processors-while-``post_up``-grinds picture is one glance;
* ready-queue depth samples become ``C`` counter events (plotted as an
  area chart above the tracks);
* copy-on-write copies become instant events (``i``) on their track.

Timestamps: the Trace Event Format wants microseconds.  Real executors
record wall seconds (``time_scale=1e6``); the simulator records ticks,
which export 1:1 (``time_scale=1.0``) so the viewer's "µs" read as ticks.
"""

from __future__ import annotations

import json
from typing import Any, Callable

from .events import (
    CowCopy,
    Event,
    EventBus,
    QueueDepthSample,
    ResultReceived,
    ShmBlockCreated,
    TaskDispatched,
    TaskFired,
)

#: Scale for wall-second timestamps (seconds -> microseconds).
WALL_SCALE = 1e6
#: Scale for simulated ticks (exported 1:1 as "microseconds").
TICK_SCALE = 1.0


class ChromeTraceCollector:
    """Accumulate bus events and serialize them as a Chrome trace.

    Parameters
    ----------
    time_scale:
        Multiplier from the executor's time unit to exported ``ts``
        microseconds: :data:`WALL_SCALE` for real executors,
        :data:`TICK_SCALE` for simulated ticks.
    process_name:
        Shown as the process label in the viewer.
    track_names:
        Optional ``{tid: label}`` overrides for track names.  The
        :class:`~repro.runtime.executors.ProcessExecutor` convention is
        track 0 = master, track ``n`` = worker ``n - 1``; pass e.g.
        ``{0: "master", 1: "worker 0", ...}`` to label them that way.
    """

    def __init__(
        self,
        time_scale: float = WALL_SCALE,
        process_name: str = "delirium",
        track_names: dict[int, str] | None = None,
    ) -> None:
        self.time_scale = time_scale
        self.process_name = process_name
        self.track_names = dict(track_names or {})
        self.spans: list[TaskFired] = []
        self.counter_samples: list[QueueDepthSample] = []
        self.instants: list[CowCopy] = []
        self.dispatches: list[TaskDispatched] = []
        self.receipts: list[ResultReceived] = []
        self.shm_blocks: list[ShmBlockCreated] = []

    # -- collection ----------------------------------------------------
    def attach(self, bus: EventBus) -> Callable[[], None]:
        """Subscribe to ``bus``; returns the unsubscribe callable."""
        return bus.subscribe(
            self._on_event,
            events=(
                TaskFired,
                QueueDepthSample,
                CowCopy,
                TaskDispatched,
                ResultReceived,
                ShmBlockCreated,
            ),
        )

    def _on_event(self, event: Event) -> None:
        if isinstance(event, TaskFired):
            self.spans.append(event)
        elif isinstance(event, QueueDepthSample):
            self.counter_samples.append(event)
        elif isinstance(event, CowCopy):
            self.instants.append(event)
        elif isinstance(event, TaskDispatched):
            self.dispatches.append(event)
        elif isinstance(event, ResultReceived):
            self.receipts.append(event)
        elif isinstance(event, ShmBlockCreated):
            self.shm_blocks.append(event)

    @classmethod
    def from_tracer(
        cls, tracer: Any, time_scale: float = TICK_SCALE, **kwargs: Any
    ) -> "ChromeTraceCollector":
        """Build a collector from an already-recorded Tracer's records."""
        self = cls(time_scale=time_scale, **kwargs)
        for i, r in enumerate(tracer.records):
            self.spans.append(
                TaskFired(
                    ts=r.start,
                    label=r.label,
                    kind=r.kind,
                    priority=0,
                    template="",
                    aid=-1,
                    node_id=-1,
                    seq=i,
                    duration=r.ticks,
                    processor=r.processor,
                )
            )
        return self

    # -- export --------------------------------------------------------
    def trace_events(self) -> list[dict[str, Any]]:
        """The ``traceEvents`` array, per-track ``B``/``E`` well nested.

        Spans within one track are emitted in start order as an adjacent
        ``B`` then ``E`` pair; the coordination model runs one task per
        processor at a time, so tracks never need nested or overlapping
        spans.  Batched fires tile one measured interval into per-fire
        shares (``base + i*per``), and the two float expressions for a
        tile's end and its successor's start can disagree by one ulp —
        each span's start is clamped to the previous end so the ``B``/``E``
        sequence stays monotonic.
        """
        scale = self.time_scale
        pid = 0
        events: list[dict[str, Any]] = [
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "ts": 0,
                "args": {"name": self.process_name},
            }
        ]
        by_track: dict[int, list[TaskFired]] = {}
        for span in self.spans:
            by_track.setdefault(span.processor, []).append(span)
        for tid in sorted(by_track):
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid,
                    "tid": tid,
                    "ts": 0,
                    "args": {
                        "name": self.track_names.get(tid, f"processor {tid}")
                    },
                }
            )
            last_end = float("-inf")
            for span in sorted(by_track[tid], key=lambda s: (s.ts, s.seq)):
                start = max(span.ts * scale, last_end)
                end = max((span.ts + span.duration) * scale, start)
                last_end = end
                common = {
                    "pid": pid,
                    "tid": tid,
                    "name": span.label,
                    "cat": span.kind,
                }
                events.append(
                    {
                        "ph": "B",
                        "ts": start,
                        "args": {
                            "template": span.template,
                            "activation": span.aid,
                            "priority": span.priority,
                        },
                        **common,
                    }
                )
                events.append({"ph": "E", "ts": end, **common})
        for sample in self.counter_samples:
            events.append(
                {
                    "ph": "C",
                    "name": "ready_queue",
                    "pid": pid,
                    "tid": 0,
                    "ts": sample.ts * scale,
                    "args": {
                        f"p{level}": depth
                        for level, depth in enumerate(sample.depths)
                    },
                }
            )
        for copy_event in self.instants:
            events.append(
                {
                    "ph": "i",
                    "s": "p",
                    "name": f"cow:{copy_event.operator}",
                    "pid": pid,
                    "tid": 0,
                    "ts": copy_event.ts * scale,
                    "args": {"bytes": copy_event.nbytes},
                }
            )
        for disp in self.dispatches:
            events.append(
                {
                    "ph": "i",
                    "s": "t",
                    "name": f"dispatch:{disp.operator}",
                    "pid": pid,
                    "tid": 0,
                    "ts": disp.ts * scale,
                    "args": {
                        "call_id": disp.call_id,
                        "bytes": disp.nbytes,
                        "via_shm": disp.via_shm,
                    },
                }
            )
        for recv in self.receipts:
            events.append(
                {
                    "ph": "i",
                    "s": "t",
                    "name": f"result:{recv.operator}",
                    "pid": pid,
                    "tid": recv.worker + 1,
                    "ts": recv.ts * scale,
                    "args": {
                        "call_id": recv.call_id,
                        "bytes": recv.nbytes,
                        "worker_seconds": recv.duration,
                        "via_shm": recv.via_shm,
                    },
                }
            )
        for shm in self.shm_blocks:
            events.append(
                {
                    "ph": "i",
                    "s": "p",
                    "name": "shm_block",
                    "pid": pid,
                    "tid": 0,
                    "ts": shm.ts * scale,
                    "args": {"name": shm.name, "bytes": shm.nbytes},
                }
            )
        return events

    def to_dict(self) -> dict[str, Any]:
        return {
            "traceEvents": self.trace_events(),
            "displayTimeUnit": "ms",
            "otherData": {
                "producer": "repro.obs.chrome_trace",
                "time_scale": self.time_scale,
            },
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def write(self, path: str, indent: int | None = None) -> None:
        """Write the trace JSON; open the file at ui.perfetto.dev."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json(indent=indent))


def validate_trace(trace: dict[str, Any]) -> list[str]:
    """Schema check used by tests and by consumers of foreign traces.

    Returns a list of problems (empty = valid): every event must carry
    ``ph``/``ts``/``pid``/``tid``/``name``, and each track's ``B``/``E``
    sequence must be balanced with monotonically nondecreasing ``ts``.
    """
    problems: list[str] = []
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    tracks: dict[tuple[Any, Any], list[dict[str, Any]]] = {}
    for i, ev in enumerate(events):
        for key in ("ph", "ts", "pid", "tid", "name"):
            if key not in ev:
                problems.append(f"event {i} missing key {key!r}")
        if ev.get("ph") in ("B", "E"):
            tracks.setdefault((ev.get("pid"), ev.get("tid")), []).append(ev)
    for (pid, tid), track in tracks.items():
        depth = 0
        last_ts = float("-inf")
        for ev in track:
            if ev["ts"] < last_ts:
                problems.append(
                    f"track pid={pid} tid={tid}: ts went backwards at "
                    f"{ev['name']!r} ({ev['ts']} < {last_ts})"
                )
            last_ts = ev["ts"]
            if ev["ph"] == "B":
                depth += 1
            else:
                depth -= 1
                if depth < 0:
                    problems.append(
                        f"track pid={pid} tid={tid}: E without matching B "
                        f"at {ev['name']!r}"
                    )
                    depth = 0
        if depth != 0:
            problems.append(
                f"track pid={pid} tid={tid}: {depth} unclosed B event(s)"
            )
    return problems
