"""Typed runtime lifecycle events and the :class:`EventBus`.

The paper's programming environment was built around *visibility*: per-node
timing dumps exposed the retina model's ``post_up`` bottleneck (section
5.2) and the compiler's unbalanced tree division (section 6.3).  This
module generalizes that one tool into an event stream over the whole
coordination layer: every interesting runtime transition — a task becoming
ready, a node firing, an operator running, an activation being allocated
or recycled, a copy-on-write copy, a template expansion — is a typed event
published on a bus that any number of subscribers can observe.

Design constraints, in order:

1. **Near-zero overhead when nobody is listening.**  Emit sites in the
   engine, executors, scheduler, and activation pool hold a bus reference
   only when the bus has at least one subscriber at run start; the
   no-subscriber hot path is a single ``is not None`` check.  A guard test
   (``tests/test_obs_overhead.py``) enforces this stays true.
2. **Events carry data, not behavior.**  Every event is a frozen slotted
   dataclass; subscribers aggregate (metrics), record (tracer), or export
   (Chrome trace) — the runtime never depends on what they do.
3. **The executor owns time.**  Events are stamped from the bus clock,
   which the executor configures: wall seconds since run start for the
   real executors, simulated ticks for the machine simulator.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Iterable


@dataclass(frozen=True, slots=True)
class Event:
    """Base class: every event carries a timestamp in the executor's unit."""

    ts: float


# ----------------------------------------------------------------------
# Run lifecycle (run-scoped observability contexts)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class RunStarted(Event):
    """An executor began driving a program under a
    :class:`~repro.obs.runctx.RunContext` — every event that follows on
    this bus until the matching :class:`RunFinished` belongs to
    ``run_id``."""

    run_id: str
    executor: str


@dataclass(frozen=True, slots=True)
class RunFinished(Event):
    """The run completed (``ok=True``) or raised (``ok=False``)."""

    run_id: str
    executor: str
    wall_seconds: float
    ok: bool


# ----------------------------------------------------------------------
# Task lifecycle
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class TaskEnqueued(Event):
    """A node's inputs all arrived; it entered the ready queue."""

    label: str
    kind: str
    priority: int
    template: str
    aid: int
    node_id: int
    seq: int


@dataclass(frozen=True, slots=True)
class TaskFired(Event):
    """One node firing, as a completed span (``ts`` = start time).

    Emitted by the *executor* (which owns the notion of time and of
    processor placement), not the engine.  ``duration`` is in the
    executor's unit; ``processor`` is the simulated processor or worker
    thread index (0 for the sequential executor).
    """

    label: str
    kind: str
    priority: int
    template: str
    aid: int
    node_id: int
    seq: int
    duration: float
    processor: int


# ----------------------------------------------------------------------
# Operator execution (engine-side truth, matches EngineStats.ops_executed)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class OpStarted(Event):
    """The engine is about to invoke an operator function.

    ``fused_ops`` is how many source-graph operators this invocation
    represents: 1 for an ordinary operator, the chain length (absorbed
    ``untuple`` included) for a fused super-node.
    """

    name: str
    fused_ops: int = 1


@dataclass(frozen=True, slots=True)
class OpFinished(Event):
    """The operator function returned.  ``duration`` is bus-clock delta
    (wall seconds on real executors; 0 on the simulator, where operator
    *cost* is modeled separately and reported via :class:`TaskFired`)."""

    name: str
    duration: float


# ----------------------------------------------------------------------
# Activation pool
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class ActivationAllocated(Event):
    """An activation was acquired (fresh or recycled) from the pool."""

    template: str
    aid: int
    reused: bool
    live: int


@dataclass(frozen=True, slots=True)
class ActivationRecycled(Event):
    """An activation finished and returned to its template's free list."""

    template: str
    aid: int
    live: int


# ----------------------------------------------------------------------
# Data blocks
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class BlockAllocated(Event):
    """A fresh :class:`~repro.runtime.blocks.DataBlock` was constructed
    (COW copies included; recycled-buffer copies construct one too, but
    reuse the payload allocation)."""

    nbytes: int


@dataclass(frozen=True, slots=True)
class BlockRetained(Event):
    """``n`` references added to a data block (``rc`` = count after)."""

    nbytes: int
    n: int
    rc: int


@dataclass(frozen=True, slots=True)
class BlockReleased(Event):
    """``n`` references dropped from a data block (``rc`` = count after)."""

    nbytes: int
    n: int
    rc: int


@dataclass(frozen=True, slots=True)
class CowCopy(Event):
    """A copy-on-write copy, attributed to the operator that forced it."""

    operator: str
    nbytes: int


@dataclass(frozen=True, slots=True)
class DonationApplied(Event):
    """A statically donated edge let the engine hand a block to its
    operator in place — the copy-on-write decision was discharged at
    compile time by the donation pass."""

    operator: str
    nbytes: int


@dataclass(frozen=True, slots=True)
class BufferRecycled(Event):
    """A copy-on-write copy reused a pooled buffer (``np.copyto`` into a
    recycled allocation) instead of allocating fresh memory."""

    operator: str
    nbytes: int


# ----------------------------------------------------------------------
# Template expansion
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class Expansion(Event):
    """A CALL/IF node expanded a template into a child activation."""

    template: str
    aid: int


@dataclass(frozen=True, slots=True)
class TailExpansion(Expansion):
    """An expansion in tail position: the child inherited the parent's
    continuation (subscribing to :class:`Expansion` receives these too)."""


# ----------------------------------------------------------------------
# Process-worker dispatch (ProcessExecutor)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class TaskDispatched(Event):
    """An operator body was serialized and staged for a worker process.

    ``nbytes`` counts the serialized argument payloads (pickle bytes plus
    any shared-memory segment bytes); ``via_shm`` is true when at least
    one argument traveled through a shared-memory block.  ``node_id`` is
    the graph node the firing belongs to (``-1`` on old emitters), which
    lets the critical-path profiler join a dispatch to its
    :class:`ResultReceived` and back to the firing.
    """

    operator: str
    call_id: int
    nbytes: int
    via_shm: bool
    node_id: int = -1


@dataclass(frozen=True, slots=True)
class ResultReceived(Event):
    """A worker returned an operator result to the master.

    ``worker`` is the worker index (Perfetto track ``worker+1``; the
    master is track 0), ``duration`` the worker-side wall seconds spent in
    the operator function, ``nbytes`` the serialized result size.
    """

    operator: str
    call_id: int
    worker: int
    duration: float
    nbytes: int
    via_shm: bool


@dataclass(frozen=True, slots=True)
class ShmBlockCreated(Event):
    """A shared-memory block was created to carry a large NumPy payload."""

    name: str
    nbytes: int


@dataclass(frozen=True, slots=True)
class FireBatchFormed(Event):
    """Same-node ready fires were coalesced into one batched execution.

    ``size`` is the number of firings in the group; ``remote`` is true
    when the group shipped to a worker as one IPC message (false for an
    in-process vectorized batch).  Per-fire ``TaskDispatched`` /
    ``ResultReceived`` / ``TaskFired`` events are still emitted for every
    member, so timelines and the critical-path join stay per-firing.
    """

    operator: str
    node_id: int
    size: int
    remote: bool


# ----------------------------------------------------------------------
# Fault tolerance (supervised ProcessExecutor)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class WorkerCrashed(Event):
    """A worker process died (exit signal or code) with fires in flight."""

    worker: int
    pid: int
    exitcode: int | None
    in_flight: int


@dataclass(frozen=True, slots=True)
class WorkerRespawned(Event):
    """The supervisor replaced a dead worker with a fresh process."""

    worker: int
    pid: int
    respawns: int


@dataclass(frozen=True, slots=True)
class FireRetried(Event):
    """An in-flight firing is being re-executed after a fault.

    ``reason`` is ``"crash"``, ``"timeout"``, or ``"error"``; ``attempt``
    is the 1-based number of the attempt *about to run*.
    """

    operator: str
    call_id: int
    node_id: int
    attempt: int
    reason: str
    backoff: float


@dataclass(frozen=True, slots=True)
class FireTimedOut(Event):
    """A dispatched firing exceeded the per-fire timeout; its worker is
    presumed hung and will be killed and respawned."""

    operator: str
    call_id: int
    worker: int
    timeout: float


@dataclass(frozen=True, slots=True)
class ExecutorDegraded(Event):
    """The executor fell down the degradation ladder (process → threaded
    → sequential) because its machinery was irrecoverable."""

    from_executor: str
    to_executor: str
    reason: str


@dataclass(frozen=True, slots=True)
class ShmSegmentReclaimed(Event):
    """The supervisor reclaimed a shared-memory segment that was checked
    out to a worker which died mid-fire (returned to the arena free list
    or unlinked)."""

    name: str
    nbytes: int
    pid: int


# ----------------------------------------------------------------------
# Locality (process executor with an affinity policy)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class BlockCached(Event):
    """A worker now holds a resident decoded copy of a block.

    ``kind`` is ``"arg"`` when the copy was created by decoding a
    shipped argument, ``"result"`` when the worker kept its own operator
    result under the master-assigned id.
    """

    bid: int
    nbytes: int
    worker: int
    kind: str


@dataclass(frozen=True, slots=True)
class BlockRefShipped(Event):
    """An input block crossed the wire as a ``("ref", bid)`` token —
    no pickle, no shared-memory segment — because the target worker
    holds a resident copy."""

    bid: int
    nbytes: int
    worker: int
    operator: str


@dataclass(frozen=True, slots=True)
class AffinityMiss(Event):
    """A worker's block cache missed on a ref-shipped input (eviction,
    injected fault, or stale residency); the master re-dispatches the
    fire with full encodings."""

    operator: str
    call_id: int
    worker: int
    missing: int


# ----------------------------------------------------------------------
# Compiler fusion (emitted once per run, at start)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class OperatorsFused(Event):
    """The program being executed contains fused super-nodes.

    ``fused_nodes`` is how many fused nodes exist across the program's
    templates; ``ops_absorbed`` is how many source-graph nodes (member
    operators plus absorbed untuples) those fused nodes replace.
    """

    fused_nodes: int
    ops_absorbed: int


# ----------------------------------------------------------------------
# Scheduler
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class QueueDepthSample(Event):
    """Ready-queue depth per priority class, sampled at a push or pop."""

    depths: tuple[int, int, int]

    @property
    def total(self) -> int:
        return sum(self.depths)


@dataclass(frozen=True, slots=True)
class QueueSaturated(Event):
    """The ready queue crossed its ``max_ready`` watermark.

    Emitted once per upward crossing (re-armed when the depth falls back
    under the watermark), so a saturated hot loop produces one event, not
    one per push.  Streaming sources treat the saturated state as
    backpressure and stop pulling input until it clears.
    """

    depth: int
    max_ready: int


# ----------------------------------------------------------------------
# Streaming / checkpoint (runtime.stream, runtime.checkpoint)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class CheckpointWritten(Event):
    """A crash-consistent snapshot reached durable storage.

    Emitted after the atomic rename, so an event implies the file named
    by ``path`` is complete and verifiable.  ``seconds`` is the wall
    time spent flushing the sink plus serializing and fsyncing the
    snapshot — the cost the <5% overhead budget is measured against.
    """

    path: str
    seq: int
    items: int
    fires: int
    nbytes: int
    seconds: float


@dataclass(frozen=True, slots=True)
class RunResumed(Event):
    """A streaming run was rebuilt from a checkpoint instead of scratch.

    ``items``/``fires`` are the restored frontier: everything before it
    is committed (single-assignment makes it final) and is never
    re-fired.
    """

    path: str
    items: int
    fires: int


#: Every concrete event type, for subscribers that want the full stream.
ALL_EVENTS: tuple[type, ...] = (
    RunStarted,
    RunFinished,
    TaskEnqueued,
    TaskFired,
    OpStarted,
    OpFinished,
    ActivationAllocated,
    ActivationRecycled,
    BlockAllocated,
    BlockRetained,
    BlockReleased,
    CowCopy,
    DonationApplied,
    BufferRecycled,
    Expansion,
    TailExpansion,
    TaskDispatched,
    ResultReceived,
    ShmBlockCreated,
    FireBatchFormed,
    WorkerCrashed,
    WorkerRespawned,
    FireRetried,
    FireTimedOut,
    ExecutorDegraded,
    ShmSegmentReclaimed,
    BlockCached,
    BlockRefShipped,
    AffinityMiss,
    OperatorsFused,
    QueueDepthSample,
    QueueSaturated,
    CheckpointWritten,
    RunResumed,
)


Subscriber = Callable[[Event], None]


class EventBus:
    """Synchronous publish/subscribe hub for runtime events.

    Subscribers run inline at the emit site (under the engine lock on the
    threaded executor), so they must be fast and must not re-enter the
    runtime.  Subscribe *before* the run starts: executors snapshot
    ``active`` once, and a bus with no subscribers costs the run nothing
    beyond an attribute check per emit site.
    """

    __slots__ = ("_subs", "_dispatch", "_clock", "_time")

    def __init__(self) -> None:
        self._subs: list[tuple[tuple[type, ...] | None, Subscriber]] = []
        #: Per-concrete-event-type subscriber lists, built lazily on first
        #: emit of each type and invalidated on (un)subscribe.  Turns the
        #: per-emit linear isinstance scan into one dict hit — an emit no
        #: subscriber wants costs a lookup plus an empty loop, which is
        #: what keeps instrumented runs close to uninstrumented ones.
        self._dispatch: dict[type, list[Subscriber]] = {}
        self._clock: Callable[[], float] | None = None
        self._time = 0.0

    # -- time ----------------------------------------------------------
    def now(self) -> float:
        """Current time in the executor's unit."""
        clock = self._clock
        return clock() if clock is not None else self._time

    def set_clock(self, clock: Callable[[], float] | None) -> None:
        """Install a live clock (real executors: wall seconds since start)."""
        self._clock = clock

    def set_time(self, t: float) -> None:
        """Advance manual time (the simulator sets this to ``now`` ticks)."""
        self._clock = None
        self._time = t

    # -- subscription --------------------------------------------------
    @property
    def active(self) -> bool:
        """True when at least one subscriber is attached."""
        return bool(self._subs)

    def subscribe(
        self,
        fn: Subscriber,
        events: Iterable[type] | None = None,
    ) -> Callable[[], None]:
        """Attach ``fn``; restrict to ``events`` types (subclasses match).

        Returns an unsubscribe callable.
        """
        entry = (tuple(events) if events is not None else None, fn)
        self._subs.append(entry)
        self._dispatch.clear()

        def unsubscribe() -> None:
            try:
                self._subs.remove(entry)
            except ValueError:
                pass
            self._dispatch.clear()

        return unsubscribe

    # -- emission ------------------------------------------------------
    def _resolve(self, event_type: type) -> list[Subscriber]:
        subs = [
            fn
            for types, fn in self._subs
            if types is None or issubclass(event_type, types)
        ]
        self._dispatch[event_type] = subs
        return subs

    def wants(self, event_type: type) -> bool:
        """Whether any subscriber would receive events of this type.

        Emit sites constructing expensive events may check this first and
        skip construction entirely when nobody is listening.
        """
        subs = self._dispatch.get(event_type)
        if subs is None:
            subs = self._resolve(event_type)
        return bool(subs)

    def emit(self, event: Event) -> None:
        subs = self._dispatch.get(type(event))
        if subs is None:
            subs = self._resolve(type(event))
        for fn in subs:
            fn(event)


#: Default :class:`EventLog` bound.  A long process-executor run emits a
#: few thousand events per second of wall time, so a million-event ring
#: holds minutes of history while bounding memory at roughly 100 MB of
#: event objects even if a run is left instrumented indefinitely.
EVENT_LOG_MAXLEN = 1_048_576


class EventLog:
    """The simplest subscriber: record events in emission order.

    Used by tests (causal-consistency checks), ad-hoc debugging, and —
    with a small ``maxlen`` — as the ring buffer inside the flight
    recorder (:mod:`repro.obs.flightrec`); the production aggregating
    subscribers are :mod:`repro.obs.metrics` and
    :mod:`repro.obs.chrome_trace`.

    Storage is a ``deque`` bounded at ``maxlen`` (default
    :data:`EVENT_LOG_MAXLEN`): once full, the oldest events are silently
    dropped, so an always-attached log never grows without limit.  Pass
    ``maxlen=None`` for the old unbounded behavior.
    """

    def __init__(self, maxlen: int | None = EVENT_LOG_MAXLEN) -> None:
        self.events: deque[Event] = deque(maxlen=maxlen)

    @property
    def maxlen(self) -> int | None:
        return self.events.maxlen

    def attach(self, bus: EventBus) -> Callable[[], None]:
        #: ``deque.append`` drops from the far end at capacity, so the
        #: subscription itself is the zero-alloc ring append.
        return bus.subscribe(self.events.append)

    def of_type(self, *types: type) -> list[Event]:
        return [e for e in self.events if isinstance(e, types)]

    def __len__(self) -> int:
        return len(self.events)


def observe_blocks(bus: EventBus) -> "Any":
    """Context manager: route data-block retain/release through ``bus``.

    Block reference traffic is the one event source hooked module-wide
    (``repro.runtime.blocks`` has no per-run state to hang a bus on), so
    it is opt-in and scoped::

        with observe_blocks(bus):
            executor.run(...)
    """
    from contextlib import contextmanager

    from ..runtime import blocks as _blocks

    @contextmanager
    def _ctx():
        def hook(kind: str, block: Any, n: int) -> None:
            if kind == "retain":
                bus.emit(BlockRetained(bus.now(), block.nbytes, n, block.rc))
            elif kind == "alloc":
                bus.emit(BlockAllocated(bus.now(), block.nbytes))
            else:
                bus.emit(BlockReleased(bus.now(), block.nbytes, n, block.rc))

        previous = _blocks.get_block_hook()
        _blocks.set_block_hook(hook)
        try:
            yield bus
        finally:
            _blocks.set_block_hook(previous)

    return _ctx()
