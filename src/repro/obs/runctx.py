"""Run-scoped observability contexts.

ROADMAP item 1 (Delirium-as-a-service) needs one process to host many
concurrent runs whose events and metrics never mix.  The substrate PR 1
built is already *capable* of that — an :class:`~repro.obs.events.EventBus`
is plain per-run state — but nothing owned the wiring: callers built a
bus, attached subscribers, picked file names, and threaded everything
through executor constructors by hand, so every run in a process shared
whatever bus happened to be global-ish.

:class:`RunContext` is that owner.  One context carries:

* a **run id** (caller-chosen or generated, unique within the process),
* a private child **EventBus** — isolation is structural: two contexts
  share no objects, so their event streams are disjoint by construction,
  not by filtering;
* a private **MetricsRegistry** filled by the standard subscriber;
* an always-on **flight recorder** (:mod:`repro.obs.flightrec`) whose
  dump file is named by the run id;
* the executor handshake: executors accept ``run_ctx=...``, take their
  bus from it, register engine/queue/supervisor snapshot sources for the
  recorder, and bracket the run with
  :class:`~repro.obs.events.RunStarted` /
  :class:`~repro.obs.events.RunFinished`.

Typical use::

    ctx = RunContext()                      # or RunContext(run_id="job-7")
    result = SequentialExecutor(run_ctx=ctx).run(program)
    print(ctx.metrics.summary_table())
    print(ctx.metrics.to_prometheus())      # scrape surface
    report = ctx.critical_path(result.wall_seconds)  # needs record_events

Server-mode prerequisite (tested): two contexts driven concurrently on
one process observe exactly their own run and nothing else.
"""

from __future__ import annotations

import itertools
import os
import threading
from typing import TYPE_CHECKING, Any, Callable

from .events import EventBus, EventLog, RunFinished, RunStarted
from .flightrec import DEFAULT_CAPACITY, FlightRecorder
from .metrics import MetricsRegistry, attach_metrics

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .critpath import CriticalPathReport

_run_counter = itertools.count(1)
_run_counter_lock = threading.Lock()


def next_run_id(prefix: str = "run") -> str:
    """Process-unique run id: ``<prefix>-<pid>-<n>``."""
    with _run_counter_lock:
        n = next(_run_counter)
    return f"{prefix}-{os.getpid()}-{n}"


class RunContext:
    """One run's private observability: id, bus, metrics, black box.

    Parameters
    ----------
    run_id:
        Names the run (and its flight-recorder dump); generated when
        omitted.
    metrics:
        Attach the standard metrics subscriber (default on).
    flight_recorder:
        Attach the always-on flight recorder (default on).
    flightrec_capacity / flightrec_dir:
        Ring size and dump directory for the recorder.
    record_events:
        Also attach an unbounded-ish :class:`~repro.obs.events.EventLog`
        capturing the full stream — required for
        :meth:`critical_path`, off by default (it re-enables per-fire
        event construction, which is the point of profiling runs and the
        antithesis of cheap monitoring ones).
    """

    def __init__(
        self,
        run_id: str | None = None,
        *,
        metrics: bool = True,
        flight_recorder: bool = True,
        flightrec_capacity: int = DEFAULT_CAPACITY,
        flightrec_dir: str | None = None,
        record_events: bool = False,
    ) -> None:
        self.run_id = run_id if run_id is not None else next_run_id()
        self.bus = EventBus()
        self.metrics: MetricsRegistry | None = (
            attach_metrics(self.bus) if metrics else None
        )
        self.flightrec: FlightRecorder | None = None
        if flight_recorder:
            self.flightrec = FlightRecorder(
                run_id=self.run_id,
                capacity=flightrec_capacity,
                directory=flightrec_dir,
            )
            self.flightrec.attach(self.bus)
        self.log: EventLog | None = None
        if record_events:
            self.log = EventLog()
            self.log.attach(self.bus)
        self._executor: str = ""
        self._snapshot_sources: dict[str, Callable[[], Any]] = {}

    # -- executor handshake ---------------------------------------------
    def add_snapshot_source(self, name: str, source: Callable[[], Any]) -> None:
        """Register a state provider for flight-recorder dumps."""
        self._snapshot_sources[name] = source
        if self.flightrec is not None:
            self.flightrec.add_snapshot_source(name, source)

    def run_started(self, executor: str) -> None:
        """Executor bracket: the run began (clock is already set)."""
        self._executor = executor
        if self.bus.active:
            self.bus.emit(RunStarted(self.bus.now(), self.run_id, executor))

    def run_finished(self, wall_seconds: float, ok: bool = True) -> None:
        if self.bus.active:
            self.bus.emit(
                RunFinished(
                    self.bus.now(), self.run_id, self._executor,
                    wall_seconds, ok,
                )
            )

    def run_failed(self, exc: BaseException, wall_seconds: float) -> None:
        """Executor bracket for the raising path: emit the failed
        :class:`~repro.obs.events.RunFinished` and dump the black box."""
        self.run_finished(wall_seconds, ok=False)
        if self.flightrec is not None:
            self.flightrec.dump(reason=f"run failed: {exc!r}")

    # -- introspection ---------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """Current state of every registered snapshot source."""
        out: dict[str, Any] = {"run_id": self.run_id}
        for name, source in self._snapshot_sources.items():
            try:
                out[name] = source()
            except Exception as exc:  # noqa: BLE001 - diagnostics only
                out[name] = {"error": repr(exc)}
        return out

    def health(self) -> dict[str, Any]:
        """The ``/healthz`` document for a metrics server."""
        doc: dict[str, Any] = {"run_id": self.run_id}
        if self._executor:
            doc["executor"] = self._executor
        if self.flightrec is not None:
            doc["flightrec_dumps"] = self.flightrec.dumps
        return doc

    def serve_metrics(self, port: int = 0, host: str = "127.0.0.1"):
        """Start a :class:`~repro.obs.expo.MetricsServer` for this run.

        Returns the started server; caller stops it.  Requires
        ``metrics=True``.
        """
        from .expo import MetricsServer

        if self.metrics is None:
            raise ValueError("RunContext was built with metrics=False")
        return MetricsServer(
            self.metrics, port=port, host=host, health=self.health
        ).start()

    def critical_path(
        self, wall_seconds: float | None = None
    ) -> "CriticalPathReport":
        """Profile the recorded stream (requires ``record_events=True``)."""
        from .critpath import critical_path

        if self.log is None:
            raise ValueError(
                "RunContext was built without record_events=True; there is "
                "no event stream to profile"
            )
        return critical_path(self.log.events, wall_seconds)
