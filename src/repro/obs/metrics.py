"""Metrics registry: counters, gauges, histograms, and time series.

The standard subscriber (:func:`attach_metrics`) turns the event stream
into the quantities every scaling PR must report against:

* counters — ``tasks_fired``, ``ops_executed``, ``cow_copies``,
  ``cow_bytes`` (attributed by operator), ``expansions`` /
  ``tail_expansions``, activation and block-reference traffic; these
  mirror :class:`~repro.runtime.engine.EngineStats` exactly, which the
  test suite asserts;
* gauges — live activations (with high-water mark), per-priority ready-
  queue depth (high-water);
* histograms — op latency by label, in the executor's time unit (wall
  seconds or ticks): the §5.2 bottleneck view as a distribution;
* series — per-priority ready-queue depth over time, decimated to a
  bounded sample count so long runs stay cheap.

Everything is plain data: :meth:`MetricsRegistry.snapshot` returns a
JSON-serializable dict (``delirium profile --json`` / ``trace --json``),
and :meth:`MetricsRegistry.summary_table` renders the human view.
"""

from __future__ import annotations

import bisect
from typing import Any, Callable

from .events import (
    ActivationAllocated,
    ActivationRecycled,
    AffinityMiss,
    BlockAllocated,
    BlockCached,
    BlockRefShipped,
    BlockReleased,
    BlockRetained,
    BufferRecycled,
    CheckpointWritten,
    CowCopy,
    DonationApplied,
    Event,
    EventBus,
    ExecutorDegraded,
    Expansion,
    FireBatchFormed,
    FireRetried,
    FireTimedOut,
    OperatorsFused,
    OpStarted,
    QueueDepthSample,
    QueueSaturated,
    ResultReceived,
    RunFinished,
    RunResumed,
    RunStarted,
    ShmBlockCreated,
    ShmSegmentReclaimed,
    TailExpansion,
    TaskDispatched,
    TaskEnqueued,
    TaskFired,
    WorkerCrashed,
    WorkerRespawned,
)

#: Default histogram bucket upper bounds: wide log-spaced coverage that
#: works for both wall seconds (sub-microsecond on up) and ticks.
DEFAULT_BUCKETS: tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1,
    1.0, 10.0, 100.0, 1e3, 1e4, 1e5, 1e6, 1e7,
)


class Counter:
    """Monotonic counter with optional per-label attribution."""

    __slots__ = ("name", "value", "by_label")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.by_label: dict[str, float] = {}

    def inc(self, amount: float = 1.0, label: str | None = None) -> None:
        self.value += amount
        if label is not None:
            self.by_label[label] = self.by_label.get(label, 0.0) + amount

    def snapshot(self) -> dict[str, Any]:
        out: dict[str, Any] = {"value": self.value}
        if self.by_label:
            out["by_label"] = dict(self.by_label)
        return out


class Gauge:
    """Point-in-time value with a high-water mark."""

    __slots__ = ("name", "value", "high")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.high = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.high:
            self.high = value

    def add(self, delta: float) -> None:
        self.set(self.value + delta)

    def snapshot(self) -> dict[str, Any]:
        return {"value": self.value, "high": self.high}


class Histogram:
    """Fixed-bucket histogram (upper bounds; one overflow bucket)."""

    __slots__ = ("name", "bounds", "counts", "count", "sum", "max")

    def __init__(
        self, name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> None:
        self.name = name
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.max = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if value > self.max:
            self.max = value

    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def snapshot(self) -> dict[str, Any]:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "max": self.max,
        }


class Series:
    """Bounded time series: decimates by doubling stride when full.

    Keeps at most ``max_samples`` points; when the buffer fills, every
    other retained point is dropped and the sampling stride doubles, so
    arbitrarily long runs keep a uniform (if coarser) picture.
    """

    __slots__ = ("name", "max_samples", "samples", "_stride", "_skip")

    def __init__(self, name: str, max_samples: int = 1024) -> None:
        if max_samples < 2:
            raise ValueError("max_samples must be >= 2")
        self.name = name
        self.max_samples = max_samples
        self.samples: list[tuple[float, float]] = []
        self._stride = 1
        self._skip = 0

    def append(self, ts: float, value: float) -> None:
        self._skip += 1
        if self._skip < self._stride:
            return
        self._skip = 0
        self.samples.append((ts, value))
        if len(self.samples) >= self.max_samples:
            del self.samples[::2]
            self._stride *= 2

    def snapshot(self) -> list[list[float]]:
        return [[ts, v] for ts, v in self.samples]


class MetricsRegistry:
    """Named collection of counters, gauges, histograms, and series."""

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}
        self.series: dict[str, Series] = {}

    # -- get-or-create accessors ---------------------------------------
    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge(name)
        return g

    def histogram(
        self, name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram(name, bounds)
        return h

    def time_series(self, name: str, max_samples: int = 1024) -> Series:
        s = self.series.get(name)
        if s is None:
            s = self.series[name] = Series(name, max_samples)
        return s

    # -- output --------------------------------------------------------
    def to_prometheus(self) -> str:
        """Prometheus text exposition (see :mod:`repro.obs.expo`)."""
        from .expo import render_prometheus

        return render_prometheus(self)

    def snapshot(self) -> dict[str, Any]:
        """JSON-serializable dump of every metric."""
        return {
            "counters": {n: c.snapshot() for n, c in self.counters.items()},
            "gauges": {n: g.snapshot() for n, g in self.gauges.items()},
            "histograms": {
                n: h.snapshot() for n, h in self.histograms.items()
            },
            "series": {n: s.snapshot() for n, s in self.series.items()},
        }

    def summary_table(self, unit: str = "") -> str:
        """Human-readable summary of the registry."""
        lines: list[str] = []
        if self.counters:
            lines.append(f"{'counter':<28} {'value':>14}")
            for name in sorted(self.counters):
                c = self.counters[name]
                lines.append(f"{name:<28} {c.value:>14.0f}")
                for label, v in sorted(
                    c.by_label.items(), key=lambda kv: -kv[1]
                ):
                    tag = f"  {name}{{{label}}}"
                    lines.append(f"{tag:<28} {v:>14.0f}")
        if self.gauges:
            lines.append("")
            lines.append(f"{'gauge':<28} {'value':>14} {'high':>14}")
            for name in sorted(self.gauges):
                g = self.gauges[name]
                lines.append(f"{name:<28} {g.value:>14.0f} {g.high:>14.0f}")
        if self.histograms:
            lines.append("")
            suffix = f" ({unit})" if unit else ""
            lines.append(
                f"{'histogram' + suffix:<28} {'n':>8} {'mean':>14} {'max':>14}"
            )
            for name in sorted(
                self.histograms, key=lambda n: -self.histograms[n].sum
            ):
                h = self.histograms[name]
                lines.append(
                    f"{name:<28} {h.count:>8} {h.mean():>14.6g} {h.max:>14.6g}"
                )
        return "\n".join(lines)


def attach_metrics(
    bus: EventBus, registry: MetricsRegistry | None = None
) -> MetricsRegistry:
    """Subscribe the standard metrics pipeline to ``bus``.

    Returns the registry (created if not supplied) that the run will fill.
    """
    reg = registry if registry is not None else MetricsRegistry()

    tasks_enqueued = reg.counter("tasks_enqueued")
    tasks_fired = reg.counter("tasks_fired")
    ops_executed = reg.counter("ops_executed")
    cow_copies = reg.counter("cow_copies")
    cow_bytes = reg.counter("cow_bytes")
    expansions = reg.counter("expansions")
    tail_expansions = reg.counter("tail_expansions")
    act_allocated = reg.counter("activations_allocated")
    act_reused = reg.counter("activations_reused")
    block_retains = reg.counter("block_retains")
    block_releases = reg.counter("block_releases")
    ops_dispatched = reg.counter("ops_dispatched")
    dispatch_nbytes = reg.counter("dispatch_nbytes")
    result_nbytes = reg.counter("result_nbytes")
    shm_blocks = reg.counter("shm_blocks_created")
    shm_nbytes = reg.counter("shm_nbytes")
    fused_fires = reg.counter("fused_fires")
    fused_ops_saved = reg.counter("fused_ops_saved")
    fire_batches = reg.counter("fire_batches")
    batched_fires = reg.counter("batched_fires")
    donated_fires = reg.counter("blocks.donated_fires")
    donated_bytes = reg.counter("blocks.donated_bytes")
    blocks_allocated = reg.counter("blocks_allocated")
    blocks_alloc_bytes = reg.counter("blocks_allocated_bytes")
    buffers_recycled = reg.counter("pool.buffers_recycled")
    pool_recycled_bytes = reg.counter("pool.recycled_bytes")
    worker_crashes = reg.counter("worker_crashes")
    worker_respawns = reg.counter("worker_respawns")
    fires_retried = reg.counter("fires_retried")
    fires_timed_out = reg.counter("fires_timed_out")
    executor_degraded = reg.counter("executor_degraded")
    shm_reclaimed = reg.counter("shm_segments_reclaimed")
    shm_reclaimed_bytes = reg.counter("shm_reclaimed_bytes")
    blocks_cached = reg.counter("blocks_cached")
    blocks_cached_bytes = reg.counter("blocks_cached_bytes")
    blocks_ref_shipped = reg.counter("blocks_ref_shipped")
    ref_bytes_avoided = reg.counter("ref_bytes_avoided")
    affinity_misses = reg.counter("affinity_misses")
    runs_started = reg.counter("runs_started")
    runs_finished = reg.counter("runs_finished")
    runs_failed = reg.counter("runs_failed")
    queue_saturations = reg.counter("queue_saturations")
    checkpoints_written = reg.counter("checkpoints_written")
    checkpoint_nbytes = reg.counter("checkpoint_nbytes")
    checkpoint_seconds = reg.counter("checkpoint_seconds")
    runs_resumed = reg.counter("runs_resumed")
    act_live = reg.gauge("activations_live")

    def on_event(e: Event) -> None:
        if isinstance(e, TaskFired):
            tasks_fired.inc()
            if e.kind == "op":
                reg.histogram(f"op_ticks/{e.label}").observe(e.duration)
        elif isinstance(e, TaskEnqueued):
            tasks_enqueued.inc()
        elif isinstance(e, OpStarted):
            ops_executed.inc(label=e.name)
            if e.fused_ops > 1:
                fused_fires.inc()
                fused_ops_saved.inc(e.fused_ops - 1)
        elif isinstance(e, QueueDepthSample):
            for level, depth in enumerate(e.depths):
                reg.gauge(f"queue_depth/p{level}").set(depth)
                reg.time_series(f"queue_depth/p{level}").append(e.ts, depth)
        elif isinstance(e, CowCopy):
            cow_copies.inc(label=e.operator)
            cow_bytes.inc(e.nbytes, label=e.operator)
        elif isinstance(e, DonationApplied):
            donated_fires.inc(label=e.operator)
            donated_bytes.inc(e.nbytes, label=e.operator)
        elif isinstance(e, BufferRecycled):
            buffers_recycled.inc(label=e.operator)
            pool_recycled_bytes.inc(e.nbytes, label=e.operator)
        elif isinstance(e, BlockAllocated):
            blocks_allocated.inc()
            blocks_alloc_bytes.inc(e.nbytes)
        elif isinstance(e, TailExpansion):
            expansions.inc()
            tail_expansions.inc()
        elif isinstance(e, Expansion):
            expansions.inc()
        elif isinstance(e, ActivationAllocated):
            act_allocated.inc(label=e.template)
            if e.reused:
                act_reused.inc()
            act_live.set(e.live)
        elif isinstance(e, ActivationRecycled):
            act_live.set(e.live)
        elif isinstance(e, BlockRetained):
            block_retains.inc(e.n)
        elif isinstance(e, BlockReleased):
            block_releases.inc(e.n)
        elif isinstance(e, TaskDispatched):
            ops_dispatched.inc(label=e.operator)
            dispatch_nbytes.inc(e.nbytes, label=e.operator)
        elif isinstance(e, FireBatchFormed):
            fire_batches.inc(label=e.operator)
            batched_fires.inc(e.size, label=e.operator)
        elif isinstance(e, ResultReceived):
            result_nbytes.inc(e.nbytes, label=e.operator)
            reg.histogram(f"worker_seconds/{e.operator}").observe(e.duration)
        elif isinstance(e, ShmBlockCreated):
            shm_blocks.inc()
            shm_nbytes.inc(e.nbytes)
        elif isinstance(e, WorkerCrashed):
            worker_crashes.inc()
        elif isinstance(e, WorkerRespawned):
            worker_respawns.inc()
        elif isinstance(e, FireRetried):
            fires_retried.inc(label=e.operator)
        elif isinstance(e, FireTimedOut):
            fires_timed_out.inc(label=e.operator)
        elif isinstance(e, ExecutorDegraded):
            executor_degraded.inc(label=e.to_executor)
        elif isinstance(e, ShmSegmentReclaimed):
            shm_reclaimed.inc()
            shm_reclaimed_bytes.inc(e.nbytes)
        elif isinstance(e, BlockCached):
            blocks_cached.inc(label=e.kind)
            blocks_cached_bytes.inc(e.nbytes, label=e.kind)
        elif isinstance(e, BlockRefShipped):
            blocks_ref_shipped.inc(label=e.operator)
            ref_bytes_avoided.inc(e.nbytes, label=e.operator)
        elif isinstance(e, AffinityMiss):
            affinity_misses.inc(label=e.operator)
        elif isinstance(e, QueueSaturated):
            queue_saturations.inc()
            reg.gauge("queue_saturated_depth").set(e.depth)
        elif isinstance(e, CheckpointWritten):
            checkpoints_written.inc()
            checkpoint_nbytes.inc(e.nbytes)
            checkpoint_seconds.inc(e.seconds)
            reg.histogram("checkpoint_seconds_each").observe(e.seconds)
        elif isinstance(e, RunResumed):
            runs_resumed.inc()
        elif isinstance(e, OperatorsFused):
            reg.gauge("fused_nodes").set(e.fused_nodes)
            reg.gauge("fused_ops_absorbed").set(e.ops_absorbed)
        elif isinstance(e, RunStarted):
            runs_started.inc(label=e.executor)
        elif isinstance(e, RunFinished):
            if e.ok:
                runs_finished.inc(label=e.executor)
            else:
                runs_failed.inc(label=e.executor)
            reg.gauge("run_wall_seconds").set(e.wall_seconds)

    bus.subscribe(on_event)
    return reg


#: Backwards-compatible alias: a subscriber is just ``attach_metrics``.
MetricsSubscriber = Callable[[EventBus], MetricsRegistry]
