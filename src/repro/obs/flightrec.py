"""Flight recorder: the black box for crashed and degraded runs.

PR 5's supervision layer detects a worker crash instantly — and then the
evidence is gone: the events that led up to it were never recorded
(recording everything is exactly what the zero-overhead contract
forbids), so a crash report says *what* died but not *what the run was
doing*.  The flight recorder closes that gap the way avionics do: an
always-on bounded ring buffer (:class:`~repro.obs.events.EventLog` with
a small ``maxlen``) of the most recent interesting events, dumped to
disk together with an engine-state snapshot the moment something goes
wrong.

Costs are bounded by construction.  The ring only subscribes to the
event types in :data:`DEFAULT_EVENTS` — dispatch/commit traffic, faults,
expansions, memory-path events — not to the per-fire firehose
(``TaskEnqueued``/``OpStarted``/...), so emit sites guarded by
``bus.wants`` never resurrect per-fire event construction on its
account.  The append itself is ``deque.append`` of an event object the
bus already built for delivery: no copy, no allocation, no formatting
until a dump actually happens.

A dump (``<run_id>.flightrec.json``) contains:

* the trigger (a :class:`~repro.obs.events.WorkerCrashed` /
  :class:`~repro.obs.events.ExecutorDegraded` /
  :class:`~repro.obs.events.FireTimedOut` event, an operator error, or a
  fatal signal),
* the last ``capacity`` recorded events, oldest first,
* one snapshot per registered provider: ready-queue depths, in-flight
  fires, worker incarnations, shared-memory arena occupancy — whatever
  the executor wired up via
  :meth:`~repro.obs.runctx.RunContext.add_snapshot_source`.

See ``docs/OBSERVABILITY.md`` for the crash-debugging walkthrough.
"""

from __future__ import annotations

import dataclasses
import json
import os
import signal
from typing import Any, Callable

from .events import (
    CheckpointWritten,
    CowCopy,
    DonationApplied,
    Event,
    EventBus,
    EventLog,
    ExecutorDegraded,
    Expansion,
    FireRetried,
    FireTimedOut,
    OperatorsFused,
    QueueSaturated,
    ResultReceived,
    RunFinished,
    RunResumed,
    RunStarted,
    ShmBlockCreated,
    ShmSegmentReclaimed,
    TaskDispatched,
    WorkerCrashed,
    WorkerRespawned,
)

#: Event types the recorder keeps in its ring.  Deliberately excludes the
#: per-fire firehose (``TaskEnqueued``/``TaskFired``/``OpStarted``/
#: ``OpFinished``/block traffic): recording those would re-enable their
#: construction at every ``wants``-guarded hot emit site.  What remains
#: is the narrative a crash report needs — what was dispatched where,
#: what came back, what expanded, what faulted.
DEFAULT_EVENTS: tuple[type, ...] = (
    RunStarted,
    RunFinished,
    TaskDispatched,
    ResultReceived,
    ShmBlockCreated,
    Expansion,
    OperatorsFused,
    CowCopy,
    DonationApplied,
    WorkerCrashed,
    WorkerRespawned,
    FireRetried,
    FireTimedOut,
    ExecutorDegraded,
    ShmSegmentReclaimed,
    QueueSaturated,
    CheckpointWritten,
    RunResumed,
)

#: Event types whose arrival triggers an automatic dump.
TRIGGER_EVENTS: tuple[type, ...] = (
    WorkerCrashed,
    FireTimedOut,
    ExecutorDegraded,
)

#: Default ring capacity: enough to hold the full dispatch history of a
#: mid-sized run and the last few seconds of a large one, at ~100 bytes
#: an event.
DEFAULT_CAPACITY = 512


def encode_event(event: Event) -> dict[str, Any]:
    """One event as a JSON-ready dict (``type`` plus its fields)."""
    out: dict[str, Any] = {"type": type(event).__name__}
    out.update(dataclasses.asdict(event))
    return out


class FlightRecorder:
    """Bounded ring of recent events, dumped to JSON on faults.

    Parameters
    ----------
    run_id:
        Names the dump file (``<run_id>.flightrec.json``).
    capacity:
        Ring size (events retained), default :data:`DEFAULT_CAPACITY`.
    path:
        Dump file path; defaults to ``<directory>/<run_id>.flightrec.json``.
    directory:
        Directory for the default path (default: current directory).
    events / triggers:
        Override the recorded set and the auto-dump set.
    auto_dump:
        Dump on every trigger event (default).  ``False`` records only;
        call :meth:`dump` yourself.
    """

    def __init__(
        self,
        run_id: str = "run",
        capacity: int = DEFAULT_CAPACITY,
        path: str | None = None,
        directory: str | None = None,
        events: tuple[type, ...] = DEFAULT_EVENTS,
        triggers: tuple[type, ...] = TRIGGER_EVENTS,
        auto_dump: bool = True,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.run_id = run_id
        self.ring = EventLog(maxlen=capacity)
        self.events = tuple(events)
        self.triggers = tuple(triggers)
        self.auto_dump = auto_dump
        self.path = path or os.path.join(
            directory or ".", f"{run_id}.flightrec.json"
        )
        self.dumps = 0
        self._bus: EventBus | None = None
        self._snapshot_sources: dict[str, Callable[[], Any]] = {}
        self._detach: Callable[[], None] | None = None
        self._prev_handlers: dict[int, Any] = {}

    # -- wiring ---------------------------------------------------------
    def attach(self, bus: EventBus) -> Callable[[], None]:
        """Subscribe to ``bus``; returns the unsubscribe callable."""
        self._bus = bus
        watched = tuple(dict.fromkeys(self.events + self.triggers))
        self._detach = bus.subscribe(self._on_event, events=watched)
        return self._detach

    def detach(self) -> None:
        if self._detach is not None:
            self._detach()
            self._detach = None

    def add_snapshot_source(
        self, name: str, source: Callable[[], Any]
    ) -> None:
        """Register a provider polled at dump time (queue depths, arena
        occupancy, supervisor in-flight table...).  Providers that raise
        contribute an ``{"error": ...}`` entry instead of killing the
        dump — the recorder must work exactly when things are broken."""
        self._snapshot_sources[name] = source

    def install_signal_handlers(
        self, signals: tuple[int, ...] = (signal.SIGTERM, signal.SIGINT)
    ) -> None:
        """Dump on fatal signals, then re-raise to the previous handler.

        Only callable from the main thread (CPython restriction); the
        CLI opts in, library users usually should not.
        """
        for signum in signals:
            self._prev_handlers[signum] = signal.getsignal(signum)

            def handler(num: int, frame: Any, _rec: "FlightRecorder" = self) -> None:
                _rec.dump(reason=f"signal {signal.Signals(num).name}")
                previous = _rec._prev_handlers.get(num)
                signal.signal(num, previous or signal.SIG_DFL)
                signal.raise_signal(num)

            signal.signal(signum, handler)

    def uninstall_signal_handlers(self) -> None:
        for signum, previous in self._prev_handlers.items():
            signal.signal(signum, previous)
        self._prev_handlers.clear()

    # -- recording ------------------------------------------------------
    def _on_event(self, event: Event) -> None:
        self.ring.events.append(event)
        if self.auto_dump and isinstance(event, self.triggers):
            self.dump(trigger=event)

    # -- dumping --------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        out: dict[str, Any] = {}
        for name, source in self._snapshot_sources.items():
            try:
                out[name] = source()
            except Exception as exc:  # noqa: BLE001 - keep dumping
                out[name] = {"error": repr(exc)}
        return out

    def to_dict(
        self, trigger: Event | None = None, reason: str | None = None
    ) -> dict[str, Any]:
        bus = self._bus
        return {
            "run_id": self.run_id,
            "dumped_at": bus.now() if bus is not None else None,
            "trigger": encode_event(trigger) if trigger is not None else None,
            "reason": reason,
            "capacity": self.ring.maxlen,
            "events": [encode_event(e) for e in self.ring.events],
            "snapshot": self.snapshot(),
        }

    def dump(
        self,
        trigger: Event | None = None,
        reason: str | None = None,
        path: str | None = None,
    ) -> str:
        """Write the dump file (overwriting — latest state wins) and
        return its path."""
        target = path or self.path
        doc = self.to_dict(trigger, reason)
        tmp = target + ".tmp"
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(doc, fh, indent=1, default=repr)
            os.replace(tmp, target)
        except BaseException:
            # A dump interrupted mid-write (the recorder runs on crash
            # paths by design) must not leave a stale ``.tmp`` behind.
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.dumps += 1
        return target
