"""Executors: policies for driving an :class:`ExecutionState`.

* :class:`SequentialExecutor` — one logical processor; the reference
  executor and the debugging story of the paper ("we generally debug
  programs on a single-processor workstation").
* :class:`ThreadedExecutor` — real OS threads sharing the ready queue.
  Because of the GIL this demonstrates *functional* parity (identical
  results with true concurrent scheduling), not speedups; performance
  experiments use the simulated machines in :mod:`repro.machine`.

Both run every ready task to queue exhaustion, so engine statistics are
identical across executors — another facet of determinism the tests check.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any

from ..errors import RuntimeFailure
from ..graph.ir import GraphProgram
from ..obs.events import EventBus, TaskFired
from .engine import EngineStats, ExecutionState
from .operators import OperatorRegistry, OperatorSpec, default_registry
from .scheduler import ReadyQueue
from .tracing import Tracer


def resolve_bus(
    bus: EventBus | None, trace: bool
) -> tuple[EventBus | None, Tracer | None]:
    """Shared executor preamble: tracer-as-subscriber plus fast-path check.

    ``trace=True`` guarantees a bus (creating a private one if none was
    supplied) and attaches a :class:`Tracer` to it; a bus that still has
    no subscribers is then dropped entirely so the run pays nothing for
    instrumentation nobody is watching.
    """
    tracer: Tracer | None = None
    if trace:
        bus = bus if bus is not None else EventBus()
        tracer = Tracer()
        tracer.attach(bus)
    if bus is not None and not bus.active:
        bus = None
    return bus, tracer


@dataclass
class RunResult:
    """Outcome of one program execution."""

    value: Any
    stats: EngineStats
    tracer: Tracer | None
    wall_seconds: float


class SequentialExecutor:
    """Run a coordination graph on one processor.

    Parameters
    ----------
    use_priorities:
        The three-level ready queue (default) vs. plain FIFO (ablation).
    seed:
        Randomize pop order within priority classes (determinism tests).
    check_purity:
        Enable the engine's undeclared-write detector.
    trace:
        Collect per-node wall-clock timings.
    bus:
        Optional :class:`~repro.obs.events.EventBus`.  When it has
        subscribers, the executor stamps its clock (wall seconds since
        run start), emits one :class:`~repro.obs.events.TaskFired` span
        per node firing, and threads it through the engine, scheduler,
        and activation pool.
    """

    def __init__(
        self,
        use_priorities: bool = True,
        seed: int | None = None,
        check_purity: bool = False,
        trace: bool = False,
        bus: EventBus | None = None,
    ) -> None:
        self.use_priorities = use_priorities
        self.seed = seed
        self.check_purity = check_purity
        self.trace = trace
        self.bus = bus

    def run(
        self,
        program: GraphProgram,
        args: tuple[Any, ...] = (),
        registry: OperatorRegistry | None = None,
    ) -> RunResult:
        registry = registry if registry is not None else default_registry()
        bus, tracer = resolve_bus(self.bus, self.trace)
        state = ExecutionState(
            program, registry, check_purity=self.check_purity, bus=bus
        )
        queue = ReadyQueue(self.use_priorities, self.seed, bus=bus)
        began = time.perf_counter()
        if bus is not None:
            bus.set_clock(lambda: time.perf_counter() - began)
        queue.push_all(state.start(args))
        while queue:
            task = queue.pop()
            if bus is not None:
                act = task.activation
                node = act.template.nodes[task.node_id]
                template_name, aid = act.template.name, act.aid
                t0 = time.perf_counter() - began
                queue.push_all(state.fire(task))
                t1 = time.perf_counter() - began
                bus.emit(
                    TaskFired(
                        t0,
                        node.label,
                        node.kind.value,
                        task.priority,
                        template_name,
                        aid,
                        task.node_id,
                        task.seq,
                        t1 - t0,
                        0,
                    )
                )
            else:
                queue.push_all(state.fire(task))
        wall = time.perf_counter() - began
        if not state.finished:
            raise RuntimeFailure(
                "execution stalled: ready queue drained without producing a "
                "result (ill-formed graph?)\n" + state.stall_report()
            )
        return RunResult(state.result(), state.snapshot_stats(), tracer, wall)


class ThreadedExecutor:
    """Run a coordination graph on real OS threads.

    The engine's bookkeeping runs under one lock; the lock is dropped
    around each operator's actual Python call (where NumPy kernels may
    release the GIL).  Results are identical to the sequential executor —
    the coordination model guarantees it, and the tests verify it.
    """

    def __init__(
        self,
        n_workers: int = 4,
        use_priorities: bool = True,
        check_purity: bool = False,
        trace: bool = False,
        bus: EventBus | None = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = n_workers
        self.use_priorities = use_priorities
        self.check_purity = check_purity
        self.trace = trace
        self.bus = bus

    def run(
        self,
        program: GraphProgram,
        args: tuple[Any, ...] = (),
        registry: OperatorRegistry | None = None,
    ) -> RunResult:
        registry = registry if registry is not None else default_registry()
        bus, tracer = resolve_bus(self.bus, self.trace)
        state = ExecutionState(
            program, registry, check_purity=self.check_purity, bus=bus
        )
        queue = ReadyQueue(self.use_priorities, bus=bus)
        condition = threading.Condition()
        active = 0
        errors: list[BaseException] = []
        run_began = time.perf_counter()
        if bus is not None:
            bus.set_clock(lambda: time.perf_counter() - run_began)

        def run_op(spec: OperatorSpec, op_args: tuple[Any, ...]) -> Any:
            # Drop the engine lock for the duration of the sequential
            # sub-computation; this is the concurrency the model permits.
            condition.release()
            t0 = time.perf_counter()
            try:
                return spec.fn(*op_args)
            finally:
                elapsed = time.perf_counter() - t0
                condition.acquire()
                if bus is not None:
                    # Emitted under the lock; the worker's thread index
                    # stands in for a processor id.  Only operator calls
                    # get spans here — engine bookkeeping is serialized
                    # under the lock and is not attributable to a worker.
                    name = threading.current_thread().name
                    processor = int(name.rsplit("-", 1)[-1]) if "-" in name else 0
                    bus.emit(
                        TaskFired(
                            t0 - run_began,
                            spec.name,
                            "op",
                            0,
                            "",
                            -1,
                            -1,
                            -1,
                            elapsed,
                            processor,
                        )
                    )

        def worker() -> None:
            nonlocal active
            with condition:
                while True:
                    while not queue and active > 0 and not errors:
                        condition.wait()
                    if errors or (not queue and active == 0):
                        condition.notify_all()
                        return
                    task = queue.pop()
                    active += 1
                    try:
                        new_tasks = state.fire(task, run_op=run_op)
                        queue.push_all(new_tasks)
                    except BaseException as exc:  # noqa: BLE001
                        errors.append(exc)
                    finally:
                        active -= 1
                        condition.notify_all()

        began = run_began
        with condition:
            queue.push_all(state.start(args))
        threads = [
            threading.Thread(target=worker, name=f"delirium-worker-{i}")
            for i in range(self.n_workers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wall = time.perf_counter() - began
        if errors:
            raise errors[0]
        if not state.finished:
            raise RuntimeFailure(
                "execution stalled: ready queue drained without producing a "
                "result (ill-formed graph?)\n" + state.stall_report()
            )
        return RunResult(state.result(), state.snapshot_stats(), tracer, wall)
