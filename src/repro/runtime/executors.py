"""Executors: policies for driving an :class:`ExecutionState`.

* :class:`SequentialExecutor` — one logical processor; the reference
  executor and the debugging story of the paper ("we generally debug
  programs on a single-processor workstation").
* :class:`ThreadedExecutor` — real OS threads sharing the ready queue.
  Engine bookkeeping is serialized under one lock; operator bodies run
  outside it, so threads overlap wherever a kernel releases the GIL.
  Pure-Python operators still serialize on the GIL itself — use
  :class:`ProcessExecutor` for those.
* :class:`ProcessExecutor` — deterministic firing semantics in the
  master, operator *computation* on a persistent pool of worker
  processes: true multi-core execution of the coordination graph, with
  large NumPy payloads traveling through shared memory and cheap glue
  operators kept in-process (see :mod:`repro.runtime.workers`).

All run every ready task to queue exhaustion and produce identical
results — the coordination model's determinism guarantee, which the
property tests hammer across all executors.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any

from ..errors import (
    DeliriumError,
    OperatorError,
    PoolIrrecoverableError,
    RuntimeFailure,
)
from ..graph.ir import GraphProgram, NodeKind
from ..obs.events import (
    BlockCached,
    EventBus,
    ExecutorDegraded,
    FireBatchFormed,
    FireRetried,
    ResultReceived,
    TaskFired,
)
from ..obs.runctx import RunContext
from .blocks import DataBlock
from .engine import EngineStats, ExecutionState, PendingOp
from .operators import (
    OperatorRegistry,
    batch_call,
    collect_codegen_sources,
    collect_fused_chains,
    default_registry,
)
from .scheduler import ReadyQueue, Task
from .supervise import (
    DEFAULT_BATCH_THRESHOLD,
    Completion,
    FaultPolicy,
    Supervisor,
    run_with_retries,
)
from .tracing import Tracer
from .workers import (
    SHM_THRESHOLD_DEFAULT,
    DispatchPolicy,
    RegistryRef,
    WorkerPool,
    decode_value,
    encode_value,
)


def resolve_bus(
    bus: EventBus | None,
    trace: bool,
    run_ctx: RunContext | None = None,
) -> tuple[EventBus | None, Tracer | None]:
    """Shared executor preamble: tracer-as-subscriber plus fast-path check.

    An explicit ``bus`` wins; otherwise the run-scoped context supplies
    its private bus.  ``trace=True`` guarantees a bus (creating a private
    one if none was supplied) and attaches a :class:`Tracer` to it; a bus
    that still has no subscribers is then dropped entirely so the run
    pays nothing for instrumentation nobody is watching.
    """
    if bus is None and run_ctx is not None:
        bus = run_ctx.bus
    tracer: Tracer | None = None
    if trace:
        bus = bus if bus is not None else EventBus()
        tracer = Tracer()
        tracer.attach(bus)
    if bus is not None and not bus.active:
        bus = None
    return bus, tracer


def make_inline_run_op(
    fault_policy: FaultPolicy | None,
    fault_spec: Any,
    stats: EngineStats,
    bus: EventBus | None,
) -> Any:
    """Build the engine's ``run_op`` hook for in-process fault handling.

    Returns ``None`` — the zero-overhead default — when neither a fault
    policy nor a fault spec is configured, so ordinary runs pay nothing.
    Otherwise operator bodies run through
    :func:`~repro.runtime.supervise.run_with_retries` with the per-run
    injector, and every retry is counted on ``stats`` and announced on
    the bus.
    """
    if fault_policy is None and fault_spec is None:
        return None
    policy = fault_policy if fault_policy is not None else FaultPolicy()
    injector = fault_spec.build() if fault_spec is not None else None

    def run_op(spec: Any, args: tuple[Any, ...]) -> Any:
        retries: list[int] = []
        raw = run_with_retries(
            spec,
            args,
            policy,
            injector,
            on_retry=lambda n, exc: retries.append(n),
        )
        if retries:
            stats.fires_retried += len(retries)
            if bus is not None and bus.wants(FireRetried):
                now = bus.now()
                for n in retries:
                    backoff = (
                        policy.backoff * (2 ** (n - 1))
                        if policy.backoff
                        else 0.0
                    )
                    bus.emit(
                        FireRetried(
                            now, spec.name, -1, -1, n + 1, "error", backoff
                        )
                    )
        return raw

    return run_op


def batch_key(task: Task) -> tuple[int, int] | None:
    """Coalescing key for :meth:`ReadyQueue.pop_batch`.

    Ready fires of the same ``(template, node)`` are candidates for one
    :class:`FireBatch` — they run the same operator on symmetric
    activations, which is what a vectorized ``batch_call`` (or one
    grouped IPC message) can exploit.  ``OP`` nodes and ``CALL`` nodes
    both qualify (a ``CALL`` may resolve to an operator value, e.g. the
    prelude's ``par_reduce`` leaf calls); everything else — consts,
    expansions, plumbing — returns ``None`` and pops as a singleton.
    """
    node = task.activation.template.nodes[task.node_id]
    kind = node.kind
    if kind is NodeKind.OP or kind is NodeKind.CALL:
        return (id(task.activation.template), task.node_id)
    return None


@dataclass
class RunResult:
    """Outcome of one program execution."""

    value: Any
    stats: EngineStats
    tracer: Tracer | None
    wall_seconds: float


class SequentialExecutor:
    """Run a coordination graph on one processor.

    Parameters
    ----------
    use_priorities:
        The three-level ready queue (default) vs. plain FIFO (ablation).
    seed:
        Randomize pop order within priority classes (determinism tests).
    check_purity:
        Enable the engine's undeclared-write detector.
    trace:
        Collect per-node wall-clock timings.
    bus:
        Optional :class:`~repro.obs.events.EventBus`.  When it has
        subscribers, the executor stamps its clock (wall seconds since
        run start), emits one :class:`~repro.obs.events.TaskFired` span
        per node firing, and threads it through the engine, scheduler,
        and activation pool.
    fault_policy:
        Optional :class:`~repro.runtime.supervise.FaultPolicy`; failed
        operator bodies are retried per the policy (non-``modifies``
        operators, plus any pre-body injected fault).
    fault_spec:
        Optional :class:`~repro.faults.FaultSpec`; a per-run injector is
        consulted before every operator body.  ``kill`` and ``arena``
        clauses are inert in-process by design, so one spec string works
        under every executor.
    run_ctx:
        Optional :class:`~repro.obs.runctx.RunContext`.  Supplies the bus
        when none is given explicitly, receives engine / ready-queue
        snapshot sources for flight-recorder dumps, and has the run
        bracketed with :class:`~repro.obs.events.RunStarted` /
        :class:`~repro.obs.events.RunFinished` (failures dump the black
        box).
    """

    def __init__(
        self,
        use_priorities: bool = True,
        seed: int | None = None,
        check_purity: bool = False,
        trace: bool = False,
        bus: EventBus | None = None,
        fault_policy: FaultPolicy | None = None,
        fault_spec: Any = None,
        run_ctx: RunContext | None = None,
        profile_ops: bool = False,
        batch: bool = False,
        batch_threshold: int | None = None,
        max_ready: int | None = None,
    ) -> None:
        self.use_priorities = use_priorities
        self.seed = seed
        self.check_purity = check_purity
        self.trace = trace
        self.bus = bus
        self.fault_policy = fault_policy
        self.fault_spec = fault_spec
        self.run_ctx = run_ctx
        self.max_ready = max_ready
        #: Accumulate operator-body wall seconds in
        #: ``stats.op_body_seconds`` via two bare clock reads per firing —
        #: the benchmark phase-split probe (far cheaper than subscribing
        #: to ``OpStarted``/``OpFinished`` events).
        self.profile_ops = profile_ops
        #: Opt-in same-node fire coalescing (default off: one processor
        #: gains only the vectorized-kernel win, and the reference
        #: executor stays the simplest possible drain loop).  Groups up
        #: to ``batch_threshold`` ready fires per :func:`batch_key` and
        #: runs them through the operator's ``batch_call``.
        self.batch = batch
        self.batch_threshold = batch_threshold

    def run(
        self,
        program: GraphProgram,
        args: tuple[Any, ...] = (),
        registry: OperatorRegistry | None = None,
    ) -> RunResult:
        registry = registry if registry is not None else default_registry()
        ctx = self.run_ctx
        bus, tracer = resolve_bus(self.bus, self.trace, ctx)
        state = ExecutionState(
            program,
            registry,
            check_purity=self.check_purity,
            bus=bus,
            profile_ops=self.profile_ops,
        )
        queue = ReadyQueue(
            self.use_priorities, self.seed, bus=bus, max_ready=self.max_ready
        )
        began = time.perf_counter()
        if bus is not None:
            bus.set_clock(lambda: time.perf_counter() - began)
        if ctx is not None:
            ctx.add_snapshot_source("engine", state.snapshot_state)
            ctx.add_snapshot_source(
                "ready_queue", lambda: {"depths": queue.depths()}
            )
            ctx.run_started("sequential")
        try:
            run_op = make_inline_run_op(
                self.fault_policy, self.fault_spec, state.stats, bus
            )
            # Snapshot of the subscriber set: the span branch below costs
            # a clock read and an event object per firing, which a bus
            # carrying only coarse subscribers (flight recorder, say)
            # must not pay.
            wants_fired = bus is not None and bus.wants(TaskFired)
            queue.push_all(state.start(args))
            if self.batch and run_op is None:
                self._drain_batched(state, queue, began, bus, wants_fired)
            elif not wants_fired and run_op is None:
                # The queue's own drain loop: per-task pop/push method
                # dispatch folded into one frame.
                queue.drain(state.fire)
            elif not wants_fired:
                pop = queue.pop
                push_all = queue.push_all
                fire = state.fire
                while queue._size:
                    push_all(fire(pop(), run_op=run_op))
            else:
                while queue:
                    task = queue.pop()
                    act = task.activation
                    node = act.template.nodes[task.node_id]
                    template_name, aid = act.template.name, act.aid
                    t0 = time.perf_counter() - began
                    queue.push_all(state.fire(task, run_op=run_op))
                    t1 = time.perf_counter() - began
                    bus.emit(
                        TaskFired(
                            t0,
                            node.label,
                            node.kind.value,
                            task.priority,
                            template_name,
                            aid,
                            task.node_id,
                            task.seq,
                            t1 - t0,
                            0,
                        )
                    )
            wall = time.perf_counter() - began
            if not state.finished:
                raise RuntimeFailure(
                    "execution stalled: ready queue drained without "
                    "producing a result (ill-formed graph?)\n"
                    + state.stall_report()
                )
        except BaseException as exc:
            if ctx is not None:
                ctx.run_failed(exc, time.perf_counter() - began)
            raise
        if ctx is not None:
            ctx.run_finished(wall)
        return RunResult(state.result(), state.snapshot_stats(), tracer, wall)

    def _drain_batched(
        self,
        state: ExecutionState,
        queue: ReadyQueue,
        began: float,
        bus: EventBus | None,
        wants_fired: bool,
    ) -> None:
        """The batched drain loop: coalesce, vectorize, commit in order.

        Singleton pops go through the ordinary ``state.fire`` fast path;
        groups are begun with :meth:`ExecutionState.begin_fires`, their
        operator bodies run through :func:`batch_call` (one vectorized
        kernel call when the operator has a batch form, a plain loop
        otherwise), and committed with
        :meth:`ExecutionState.complete_fires` in master-assigned order —
        so results are bit-identical to the unbatched drain.
        """
        threshold = self.batch_threshold or DEFAULT_BATCH_THRESHOLD
        profile = self.profile_ops
        stats = state.stats
        wants_batch = bus is not None and bus.wants(FireBatchFormed)
        while queue:
            tasks = queue.pop_batch(threshold, batch_key)
            if len(tasks) == 1:
                task = tasks[0]
                if not wants_fired:
                    queue.push_all(state.fire(task))
                    continue
                act = task.activation
                node = act.template.nodes[task.node_id]
                template_name, aid = act.template.name, act.aid
                t0 = time.perf_counter() - began
                queue.push_all(state.fire(task))
                bus.emit(
                    TaskFired(
                        t0,
                        node.label,
                        node.kind.value,
                        task.priority,
                        template_name,
                        aid,
                        task.node_id,
                        task.seq,
                        time.perf_counter() - began - t0,
                        0,
                    )
                )
                continue
            pendings: list[PendingOp] = []
            for outcome in state.begin_fires(tasks):
                if outcome.newly:
                    queue.push_all(outcome.newly)
                if outcome.pending is not None:
                    pendings.append(outcome.pending)
            if not pendings:
                continue
            spec = pendings[0].spec
            if len(pendings) == 1 or any(
                p.spec is not spec for p in pendings
            ):
                # A lone pending, or a CALL node that resolved to
                # different operators across activations: per-fire path.
                for p in pendings:
                    self._finish_one(state, queue, began, bus, wants_fired, p)
                continue
            args_lists = [p.args for p in pendings]
            t0 = time.perf_counter()
            try:
                raws = batch_call(spec, args_lists)
            except Exception:
                # Nothing is committed yet: re-run per fire so the
                # failing firing surfaces its own error, exactly as the
                # unbatched drain would have.
                for p in pendings:
                    self._finish_one(state, queue, began, bus, wants_fired, p)
                continue
            t1 = time.perf_counter()
            if profile:
                stats.op_body_seconds += t1 - t0
            per = (t1 - t0) / len(pendings)
            stats.fire_batches += 1
            stats.batched_fires += len(pendings)
            if wants_batch:
                bus.emit(
                    FireBatchFormed(
                        bus.now(),
                        spec.name,
                        pendings[0].node_id,
                        len(pendings),
                        False,
                    )
                )
            queue.push_all(
                state.complete_fires(
                    list(zip(pendings, raws)), op_seconds=per
                )
            )
            if wants_fired:
                base = t0 - began
                for i, p in enumerate(pendings):
                    act = p.activation
                    bus.emit(
                        TaskFired(
                            base + i * per,
                            spec.name,
                            "op",
                            p.priority,
                            act.template.name,
                            act.aid,
                            p.node_id,
                            p.seq,
                            per,
                            0,
                        )
                    )

    def _finish_one(
        self,
        state: ExecutionState,
        queue: ReadyQueue,
        began: float,
        bus: EventBus | None,
        wants_fired: bool,
        pending: PendingOp,
    ) -> None:
        """Run and commit one begun pending (batched drain's scalar leg)."""
        spec = pending.spec
        t0 = time.perf_counter()
        raw = spec.fn(*pending.args)
        t1 = time.perf_counter()
        if self.profile_ops:
            state.stats.op_body_seconds += t1 - t0
        queue.push_all(state.complete_fire(pending, raw, op_seconds=t1 - t0))
        if wants_fired:
            act = pending.activation
            bus.emit(
                TaskFired(
                    t0 - began,
                    spec.name,
                    "op",
                    pending.priority,
                    act.template.name,
                    act.aid,
                    pending.node_id,
                    pending.seq,
                    t1 - t0,
                    0,
                )
            )


class ThreadedExecutor:
    """Run a coordination graph on real OS threads.

    Built on the engine's ``begin_fire`` / ``complete_fire`` split: a
    worker pops a task and runs the engine bookkeeping under the shared
    condition lock, but any operator body surfaces as a
    :class:`~repro.runtime.engine.PendingOp` and executes with the lock
    *released* — NumPy/SciPy kernels that drop the GIL then genuinely
    overlap across threads, while the commit (result delivery, reference
    releases) reacquires the lock.  Results are identical to the
    sequential executor — the coordination model guarantees it, and the
    tests verify it.
    """

    def __init__(
        self,
        n_workers: int = 4,
        use_priorities: bool = True,
        check_purity: bool = False,
        trace: bool = False,
        bus: EventBus | None = None,
        fault_policy: FaultPolicy | None = None,
        fault_spec: Any = None,
        run_ctx: RunContext | None = None,
        batch: bool = False,
        batch_threshold: int | None = None,
        max_ready: int | None = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = n_workers
        self.use_priorities = use_priorities
        self.check_purity = check_purity
        self.trace = trace
        self.bus = bus
        self.fault_policy = fault_policy
        self.fault_spec = fault_spec
        self.run_ctx = run_ctx
        self.max_ready = max_ready
        #: Opt-in same-node fire coalescing (see :func:`batch_key`): a
        #: worker thread claims a whole group under the lock and runs one
        #: ``batch_call`` outside it — fewer lock round-trips per firing
        #: and a vectorized kernel when the operator has a batch form.
        #: Disabled automatically when a fault policy or fault spec is
        #: active (retry/injection decisions are per firing).
        self.batch = batch
        self.batch_threshold = batch_threshold

    def run(
        self,
        program: GraphProgram,
        args: tuple[Any, ...] = (),
        registry: OperatorRegistry | None = None,
    ) -> RunResult:
        registry = registry if registry is not None else default_registry()
        ctx = self.run_ctx
        bus, tracer = resolve_bus(self.bus, self.trace, ctx)
        state = ExecutionState(
            program, registry, check_purity=self.check_purity, bus=bus
        )
        queue = ReadyQueue(
            self.use_priorities, bus=bus, max_ready=self.max_ready
        )
        condition = threading.Condition()
        active = 0
        errors: list[BaseException] = []
        run_began = time.perf_counter()
        if bus is not None:
            bus.set_clock(lambda: time.perf_counter() - run_began)
        if ctx is not None:
            ctx.add_snapshot_source("engine", state.snapshot_state)
            ctx.add_snapshot_source(
                "ready_queue", lambda: {"depths": queue.depths()}
            )
            ctx.run_started("threaded")
        wants_fired = bus is not None and bus.wants(TaskFired)

        fault_policy = self.fault_policy
        injector = (
            self.fault_spec.build() if self.fault_spec is not None else None
        )
        retry_policy = (
            fault_policy
            if fault_policy is not None
            else (FaultPolicy() if injector is not None else None)
        )
        batching = self.batch and retry_policy is None
        threshold = self.batch_threshold or DEFAULT_BATCH_THRESHOLD
        wants_batch = bus is not None and bus.wants(FireBatchFormed)

        def run_pending(pending: PendingOp) -> None:
            # Drop the engine lock for the duration of the sequential
            # sub-computation; this is the concurrency the model permits.
            spec = pending.spec
            error: BaseException | None = None
            raw: Any = None
            retries: list[int] = []
            condition.release()
            t0 = time.perf_counter()
            try:
                if retry_policy is not None:
                    raw = run_with_retries(
                        spec,
                        pending.args,
                        retry_policy,
                        injector,
                        node_id=pending.node_id,
                        on_retry=lambda n, exc: retries.append(n),
                    )
                else:
                    raw = spec.fn(*pending.args)
            except OperatorError as exc:
                error = exc
            except Exception as exc:  # noqa: BLE001 - wrapped, re-raised
                error = OperatorError(spec.name, exc)
            finally:
                elapsed = time.perf_counter() - t0
                condition.acquire()
            if retries:
                # Counted (and announced) back under the lock: the stats
                # object and bus subscribers are not thread-safe.
                state.stats.fires_retried += len(retries)
                if bus is not None and bus.wants(FireRetried):
                    now = bus.now()
                    for n in retries:
                        backoff = (
                            retry_policy.backoff * (2 ** (n - 1))
                            if retry_policy.backoff
                            else 0.0
                        )
                        bus.emit(
                            FireRetried(
                                now,
                                spec.name,
                                -1,
                                pending.node_id,
                                n + 1,
                                "error",
                                backoff,
                            )
                        )
            if error is not None:
                raise error
            act = pending.activation
            template_name, aid = act.template.name, act.aid
            queue.push_all(state.complete_fire(pending, raw))
            if wants_fired:
                # Emitted under the lock, after the commit so the
                # firing's children are enqueued (stream-order) before
                # the span that caused them — the causal-profiler
                # contract.  The worker's thread index stands in for a
                # processor id.  Only operator calls get spans here —
                # engine bookkeeping is serialized under the lock and is
                # not attributable to a worker.
                name = threading.current_thread().name
                processor = int(name.rsplit("-", 1)[-1]) if "-" in name else 0
                bus.emit(
                    TaskFired(
                        t0 - run_began,
                        spec.name,
                        "op",
                        pending.priority,
                        template_name,
                        aid,
                        pending.node_id,
                        pending.seq,
                        elapsed,
                        processor,
                    )
                )

        def run_pendings(pendings: list[PendingOp]) -> None:
            # The batched analogue of run_pending: one lock release, one
            # batch_call over all N bodies, one in-order commit.
            spec = pendings[0].spec
            error: BaseException | None = None
            raws: Any = None
            condition.release()
            t0 = time.perf_counter()
            try:
                raws = batch_call(spec, [p.args for p in pendings])
            except OperatorError as exc:
                error = exc
            except Exception as exc:  # noqa: BLE001 - wrapped, re-raised
                error = OperatorError(spec.name, exc)
            finally:
                elapsed = time.perf_counter() - t0
                condition.acquire()
            if error is not None:
                raise error
            per = elapsed / len(pendings)
            state.stats.fire_batches += 1
            state.stats.batched_fires += len(pendings)
            if wants_batch:
                bus.emit(
                    FireBatchFormed(
                        bus.now(),
                        spec.name,
                        pendings[0].node_id,
                        len(pendings),
                        False,
                    )
                )
            queue.push_all(
                state.complete_fires(list(zip(pendings, raws)), op_seconds=per)
            )
            if wants_fired:
                name = threading.current_thread().name
                processor = int(name.rsplit("-", 1)[-1]) if "-" in name else 0
                base = t0 - run_began
                for i, p in enumerate(pendings):
                    act = p.activation
                    bus.emit(
                        TaskFired(
                            base + i * per,
                            spec.name,
                            "op",
                            p.priority,
                            act.template.name,
                            act.aid,
                            p.node_id,
                            p.seq,
                            per,
                            processor,
                        )
                    )

        def fire_batch(tasks: list[Task]) -> None:
            pendings: list[PendingOp] = []
            for outcome in state.begin_fires(tasks):
                queue.push_all(outcome.newly)
                if outcome.pending is not None:
                    pendings.append(outcome.pending)
            if not pendings:
                return
            spec = pendings[0].spec
            if len(pendings) > 1 and all(p.spec is spec for p in pendings):
                run_pendings(pendings)
            else:
                for p in pendings:
                    run_pending(p)

        def worker() -> None:
            nonlocal active
            with condition:
                while True:
                    while not queue and active > 0 and not errors:
                        condition.wait()
                    if errors or (not queue and active == 0):
                        condition.notify_all()
                        return
                    active += 1
                    try:
                        if batching:
                            tasks = queue.pop_batch(threshold, batch_key)
                            if len(tasks) > 1:
                                fire_batch(tasks)
                            else:
                                outcome = state.begin_fire(tasks[0])
                                queue.push_all(outcome.newly)
                                if outcome.pending is not None:
                                    run_pending(outcome.pending)
                        else:
                            task = queue.pop()
                            outcome = state.begin_fire(task)
                            queue.push_all(outcome.newly)
                            if outcome.pending is not None:
                                run_pending(outcome.pending)
                    except Exception as exc:  # noqa: BLE001 - collected
                        errors.append(exc)
                    except BaseException as exc:
                        # Control-flow exceptions (KeyboardInterrupt,
                        # SystemExit) must win over any operator error
                        # when the main thread re-raises errors[0].
                        errors.insert(0, exc)
                    finally:
                        active -= 1
                        condition.notify_all()

        began = run_began
        with condition:
            queue.push_all(state.start(args))
        threads = [
            threading.Thread(target=worker, name=f"delirium-worker-{i}")
            for i in range(self.n_workers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wall = time.perf_counter() - began
        try:
            if errors:
                raise errors[0]
            if not state.finished:
                raise RuntimeFailure(
                    "execution stalled: ready queue drained without "
                    "producing a result (ill-formed graph?)\n"
                    + state.stall_report()
                )
        except BaseException as exc:
            if ctx is not None:
                ctx.run_failed(exc, wall)
            raise
        if ctx is not None:
            ctx.run_finished(wall)
        return RunResult(state.result(), state.snapshot_stats(), tracer, wall)


class ProcessExecutor:
    """Run a coordination graph with operator bodies on worker processes.

    The master keeps the entire coordination semantics — ready queue,
    firing order, copy-on-write decisions, result commits — and ships
    only the opaque operator computations to a persistent
    :class:`~repro.runtime.workers.WorkerPool`, so results are
    bit-identical to :class:`SequentialExecutor` while heavy kernels use
    real cores with no GIL in the way.

    Dispatch policy (see :class:`~repro.runtime.workers.DispatchPolicy`):
    an operator crosses the process boundary only when its cost hint
    clears ``cost_threshold`` ticks (falling back to a payload-size test
    when it has no usable hint), so scalar glue never pays IPC.  Ready
    dispatches are staged and sent in batches of up to ``batch_size``
    calls — but never so coarse that a worker sits idle while another
    holds the whole frontier.  Argument and result payloads whose NumPy
    buffers reach ``shm_threshold`` bytes travel via POSIX shared memory
    (:class:`~repro.obs.events.ShmBlockCreated` on the bus); the rest
    ride the pickle stream.

    Parameters mirror :class:`SequentialExecutor` plus:

    n_workers:
        Worker process count.
    batch_size:
        Maximum operator calls per IPC message.
    cost_threshold / shm_threshold / pinned_local:
        Dispatch and transport tuning (see above).
    measured_costs / min_dispatch_seconds:
        Measured per-firing wall seconds by operator name (from
        :func:`repro.machine.calibrate.calibrate_dispatch`) and the
        per-call IPC cost bar they are compared against; measured
        operators bypass the static cost-hint test entirely.
    registry_ref:
        :class:`~repro.runtime.workers.RegistryRef` naming an importable
        registry factory — required only on platforms without ``fork``,
        where workers cannot inherit the master's registry.
    fault_policy:
        :class:`~repro.runtime.supervise.FaultPolicy` governing retries,
        per-fire timeouts, respawn budget, and the degradation ladder.
        The default policy is used when ``None``.
    fault_spec:
        Optional :class:`~repro.faults.FaultSpec` for deterministic
        fault injection — shipped to every worker (and respawned
        worker), consulted by the master's inline path, and hooked into
        the shared-memory arena.
    affinity:
        Locality policy for remote dispatch: ``"data"`` (default —
        place fires on the idle worker already holding the most input
        bytes, ship resident inputs by reference), ``"operator"``
        (prefer the worker an operator last ran on), or ``"none"``
        (legacy least-loaded dispatch, full encodings always).  See
        :mod:`repro.runtime.affinity` and the residency machinery in
        :mod:`repro.runtime.supervise`.  Results are bit-identical
        across all three settings.
    persistent:
        Keep the worker pool alive across :meth:`run` calls (streaming
        and server-style use: repeated runs of the *same* program and
        registry skip pool startup and registry/fused-chain/codegen
        shipping).  The pool is rebuilt automatically when a different
        program or registry arrives, and torn down by :meth:`close`.
        Worker block caches persist across runs too; that is safe
        because each run's fresh residency tracker never ref-ships a
        block it did not itself record, so a stale entry can only be
        overwritten (at next full ship of its bid) or LRU-evicted —
        never served.
    """

    def __init__(
        self,
        n_workers: int = 4,
        batch_size: int = 4,
        batch: bool = True,
        batch_threshold: int | None = None,
        cost_threshold: float = 2_000_000.0,
        shm_threshold: int = SHM_THRESHOLD_DEFAULT,
        use_priorities: bool = True,
        seed: int | None = None,
        check_purity: bool = False,
        trace: bool = False,
        bus: EventBus | None = None,
        registry_ref: RegistryRef | None = None,
        pinned_local: tuple[str, ...] = (),
        measured_costs: dict[str, float] | None = None,
        min_dispatch_seconds: float = 0.002,
        fault_policy: FaultPolicy | None = None,
        fault_spec: Any = None,
        run_ctx: RunContext | None = None,
        affinity: str = "data",
        max_ready: int | None = None,
        persistent: bool = False,
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.n_workers = n_workers
        self.batch_size = batch_size
        #: Batched execution (default on): ready same-node fires are
        #: coalesced per :func:`batch_key`, remote groups ship as one
        #: grouped IPC message answered by one N-result message, and
        #: operators with a vectorized batch form run all N firings in
        #: one kernel call (worker-side, or inline for kept-local
        #: groups).  ``batch_threshold`` caps firings per group
        #: (default :data:`~repro.runtime.supervise.
        #: DEFAULT_BATCH_THRESHOLD`; the CLI passes a measured
        #: suggestion from ``suggest_batch_threshold``).  Automatically
        #: disabled while fault injection is active, since injection
        #: decisions are per firing.
        self.batch = batch
        self.batch_threshold = batch_threshold
        self.policy = DispatchPolicy(
            cost_threshold=cost_threshold,
            nbytes_threshold=shm_threshold,
            pinned_local=frozenset(pinned_local),
            measured_seconds=measured_costs,
            min_dispatch_seconds=min_dispatch_seconds,
        )
        self.shm_threshold = shm_threshold
        self.use_priorities = use_priorities
        self.seed = seed
        self.check_purity = check_purity
        self.trace = trace
        self.bus = bus
        self.registry_ref = registry_ref
        self.fault_policy = fault_policy
        self.fault_spec = fault_spec
        self.run_ctx = run_ctx
        self.affinity = affinity
        self.max_ready = max_ready
        self.persistent = persistent
        self._pool: WorkerPool | None = None
        self._pool_key: tuple[int, int] | None = None

    def close(self) -> None:
        """Tear down the persistent worker pool, if one is warm."""
        if self._pool is not None:
            pool, self._pool = self._pool, None
            self._pool_key = None
            pool.close()

    def _build_pool(
        self, program: GraphProgram, registry: OperatorRegistry
    ) -> WorkerPool:
        return WorkerPool(
            self.n_workers,
            registry=registry,
            registry_ref=self.registry_ref,
            shm_threshold=self.shm_threshold,
            fused_chains=collect_fused_chains(program),
            fault_spec=self.fault_spec,
            codegen_sources=collect_codegen_sources(program),
        )

    def run(
        self,
        program: GraphProgram,
        args: tuple[Any, ...] = (),
        registry: OperatorRegistry | None = None,
    ) -> RunResult:
        registry = registry if registry is not None else default_registry()
        policy = (
            self.fault_policy
            if self.fault_policy is not None
            else FaultPolicy()
        )
        if self.persistent:
            key = (id(program), id(registry))
            if self._pool is not None and self._pool_key != key:
                self.close()
            if self._pool is None:
                try:
                    self._pool = self._build_pool(program, registry)
                    self._pool_key = key
                except Exception as exc:
                    if policy.degrade != "ladder":
                        raise
                    return self._run_degraded(
                        program, args, registry, repr(exc)
                    )
            try:
                return self._run_supervised(
                    self._pool, program, args, registry, policy
                )
            except BaseException:
                # A run that errored may leave the pool in an unknown
                # state (mid-respawn, poisoned pipes); don't reuse it.
                self.close()
                raise
        try:
            pool = self._build_pool(program, registry)
        except Exception as exc:
            if policy.degrade != "ladder":
                raise
            return self._run_degraded(program, args, registry, repr(exc))
        try:
            return self._run_supervised(pool, program, args, registry, policy)
        finally:
            pool.close()

    def _run_degraded(
        self,
        program: GraphProgram,
        args: tuple[Any, ...],
        registry: OperatorRegistry,
        reason: str,
    ) -> RunResult:
        """The pool could not be built: fall down the executor ladder.

        Process → threaded first (operator bodies still overlap where
        kernels release the GIL); threaded → sequential only if even
        thread creation fails.  Delirium-level errors (operator
        failures, stalls) propagate — the ladder handles *machinery*
        failures, not program failures.
        """
        bus = self.bus
        if bus is None and self.run_ctx is not None:
            bus = self.run_ctx.bus
        if bus is not None and not bus.active:
            bus = None
        if bus is not None:
            bus.emit(
                ExecutorDegraded(bus.now(), "process", "threaded", reason)
            )
        threaded = ThreadedExecutor(
            n_workers=self.n_workers,
            use_priorities=self.use_priorities,
            check_purity=self.check_purity,
            trace=self.trace,
            bus=self.bus,
            fault_policy=self.fault_policy,
            fault_spec=self.fault_spec,
            run_ctx=self.run_ctx,
            batch=self.batch,
            batch_threshold=self.batch_threshold,
        )
        try:
            result = threaded.run(program, args, registry)
            result.stats.executor_degraded += 1
            return result
        except DeliriumError:
            raise
        except Exception as exc:
            if bus is not None:
                bus.emit(
                    ExecutorDegraded(
                        bus.now(), "threaded", "sequential", repr(exc)
                    )
                )
            sequential = SequentialExecutor(
                use_priorities=self.use_priorities,
                seed=self.seed,
                check_purity=self.check_purity,
                trace=self.trace,
                bus=self.bus,
                fault_policy=self.fault_policy,
                fault_spec=self.fault_spec,
                run_ctx=self.run_ctx,
            )
            result = sequential.run(program, args, registry)
            result.stats.executor_degraded += 2
            return result

    def _run_supervised(
        self,
        pool: WorkerPool,
        program: GraphProgram,
        args: tuple[Any, ...],
        registry: OperatorRegistry,
        policy: FaultPolicy,
    ) -> RunResult:
        ctx = self.run_ctx
        bus, tracer = resolve_bus(self.bus, self.trace, ctx)
        state = ExecutionState(
            program, registry, check_purity=self.check_purity, bus=bus
        )
        queue = ReadyQueue(
            self.use_priorities, self.seed, bus=bus, max_ready=self.max_ready
        )
        began = time.perf_counter()
        if bus is not None:
            bus.set_clock(lambda: time.perf_counter() - began)
        injector = (
            self.fault_spec.build() if self.fault_spec is not None else None
        )
        if injector is not None:
            pool.arena.fail_hook = injector.on_arena_acquire
        batching = self.batch and injector is None
        threshold = self.batch_threshold or DEFAULT_BATCH_THRESHOLD
        supervisor = Supervisor(
            pool,
            policy,
            batch_size=self.batch_size,
            batch_threshold=threshold,
            shm_threshold=self.shm_threshold,
            bus=bus,
            stats=state.stats,
            affinity=self.affinity,
        )
        # The engine's in-place-write paths must invalidate worker
        # residency before mutating a block (see ExecutionState.locality).
        state.locality = supervisor.residency

        def export_memory_gauges() -> None:
            metrics = ctx.metrics if ctx is not None else None
            if metrics is None:
                return
            for key, value in pool.arena.stats().items():
                metrics.gauge(f"shm_arena/{key}").set(float(value))
            for key, value in supervisor.locality_stats().items():
                metrics.gauge(f"worker_cache/{key}").set(float(value))

        if ctx is not None:
            ctx.add_snapshot_source("engine", state.snapshot_state)
            ctx.add_snapshot_source(
                "ready_queue", lambda: {"depths": queue.depths()}
            )
            ctx.add_snapshot_source("supervisor", supervisor.snapshot)
            ctx.add_snapshot_source(
                "workers",
                lambda: {
                    "respawns": pool.respawns,
                    "arena": pool.arena.stats(),
                    "locality": supervisor.locality_stats(),
                },
            )
            ctx.run_started("process")
        wants_fired = bus is not None and bus.wants(TaskFired)
        classify: Any = self.policy.should_dispatch

        def commit(c: Completion) -> None:
            pending = c.pending
            spec = pending.spec
            act = pending.activation
            template_name, aid = act.template.name, act.aid
            # Commit first: the firing's children are enqueued (and
            # announced) before the span that caused them, which is the
            # order the causal profiler reconstructs parents from.  The
            # worker-measured body time rides along so OpFinished carries
            # real compute seconds, not compute + queue + IPC.
            newly = state.complete_fire(pending, c.raw, op_seconds=c.duration)
            tracker = supervisor.residency
            if tracker is not None and c.cached and c.rbid is not None:
                # The worker kept its raw result resident under rbid.
                # Adopt only when the committed block holds exactly the
                # decoded payload (identity check — fan-out/untuple
                # commits leave result_value unset and are skipped).
                result = pending.result_value
                if (
                    type(result) is DataBlock
                    and result.payload is c.raw
                ):
                    tracker.adopt(result, c.rbid, c.worker)
                    state.stats.blocks_cached += 1
                    if bus is not None and bus.wants(BlockCached):
                        bus.emit(
                            BlockCached(
                                bus.now(),
                                c.rbid,
                                result.nbytes,
                                c.worker,
                                "result",
                            )
                        )
            if bus is not None:
                if bus.wants(ResultReceived):
                    bus.emit(
                        ResultReceived(
                            bus.now(),
                            spec.name,
                            c.call_id,
                            c.worker,
                            c.duration,
                            c.nbytes,
                            c.via_shm,
                        )
                    )
                if wants_fired:
                    bus.emit(
                        TaskFired(
                            max(0.0, c.t0 - began),
                            spec.name,
                            "op",
                            pending.priority,
                            template_name,
                            aid,
                            pending.node_id,
                            pending.seq,
                            c.duration,
                            c.worker + 1,
                        )
                    )
            queue.push_all(newly)

        def run_inline(pending: PendingOp, isolate: bool = False) -> None:
            spec = pending.spec
            call_args = pending.args
            if isolate:
                # Degraded remote pendings skipped their physical COW
                # copies (serialization was going to isolate the worker's
                # writes); running them here needs private copies, made
                # through the same codec a worker would have used.
                call_args = tuple(
                    decode_value(encode_value(a, self.shm_threshold))
                    for a in pending.args
                )
            retries: list[int] = []
            t0 = time.perf_counter()
            raw = run_with_retries(
                spec,
                call_args,
                policy,
                injector,
                node_id=pending.node_id,
                on_retry=lambda n, exc: retries.append(n),
            )
            t1 = time.perf_counter()
            if retries:
                state.stats.fires_retried += len(retries)
                if bus is not None and bus.wants(FireRetried):
                    now = bus.now()
                    for n in retries:
                        backoff = (
                            policy.backoff * (2 ** (n - 1))
                            if policy.backoff
                            else 0.0
                        )
                        bus.emit(
                            FireRetried(
                                now,
                                spec.name,
                                -1,
                                pending.node_id,
                                n + 1,
                                "error",
                                backoff,
                            )
                        )
            act = pending.activation
            template_name, aid = act.template.name, act.aid
            queue.push_all(
                state.complete_fire(pending, raw, op_seconds=t1 - t0)
            )
            if wants_fired:
                bus.emit(
                    TaskFired(
                        t0 - began,
                        spec.name,
                        "op",
                        pending.priority,
                        template_name,
                        aid,
                        pending.node_id,
                        pending.seq,
                        t1 - t0,
                        0,
                    )
                )

        def run_inline_batch(pendings: list[PendingOp]) -> None:
            # Kept-local group with a vectorized batch form: one kernel
            # call, one in-order commit.  Retries are per firing, so a
            # failed batch falls back to the per-fire inline path (with
            # its retry/poison handling) — nothing was committed.
            spec = pendings[0].spec
            t0 = time.perf_counter()
            try:
                raws = batch_call(spec, [p.args for p in pendings])
            except Exception:  # noqa: BLE001 - refired per-fire below
                for p in pendings:
                    run_inline(p)
                return
            t1 = time.perf_counter()
            per = (t1 - t0) / len(pendings)
            state.stats.fire_batches += 1
            state.stats.batched_fires += len(pendings)
            if bus is not None and bus.wants(FireBatchFormed):
                bus.emit(
                    FireBatchFormed(
                        bus.now(),
                        spec.name,
                        pendings[0].node_id,
                        len(pendings),
                        False,
                    )
                )
            queue.push_all(
                state.complete_fires(list(zip(pendings, raws)), op_seconds=per)
            )
            if wants_fired:
                base = t0 - began
                for i, p in enumerate(pendings):
                    act = p.activation
                    bus.emit(
                        TaskFired(
                            base + i * per,
                            spec.name,
                            "op",
                            p.priority,
                            act.template.name,
                            act.aid,
                            p.node_id,
                            p.seq,
                            per,
                            0,
                        )
                    )

        def degrade(reason: str) -> None:
            """The pool is irrecoverable mid-run: finish in-process.

            Commits everything the pool already produced, re-executes
            the abandoned in-flight firings on isolated argument copies,
            and switches dispatch off — the rest of the run is inline
            (the in-master rung of the ladder; restarting on threads is
            impossible mid-run, the engine state is already live here).
            """
            nonlocal classify
            classify = None
            state.stats.executor_degraded += 1
            if bus is not None:
                bus.emit(
                    ExecutorDegraded(
                        bus.now(), "process", "sequential", reason
                    )
                )
            for c in supervisor.take_completions():
                commit(c)
            for pending in supervisor.drain_in_flight():
                run_inline(pending, isolate=True)

        def begin_one(task: Task) -> PendingOp | None:
            if wants_fired:
                # Master engine spans: fires that resolve without
                # an operator body (consts, expansions, result
                # plumbing) otherwise vanish from the stream, and
                # with them the causal chain and the master's
                # share of the timeline.
                act = task.activation
                node = act.template.nodes[task.node_id]
                template_name, aid = act.template.name, act.aid
                t0 = bus.now()
                outcome = state.begin_fire(task, classify=classify)
                if outcome.pending is None:
                    bus.emit(
                        TaskFired(
                            t0,
                            node.label,
                            node.kind.value,
                            task.priority,
                            template_name,
                            aid,
                            task.node_id,
                            task.seq,
                            bus.now() - t0,
                            0,
                        )
                    )
            else:
                outcome = state.begin_fire(task, classify=classify)
            queue.push_all(outcome.newly)
            return outcome.pending

        try:
            queue.push_all(state.start(args))
            while queue or supervisor.in_flight:
                while queue:
                    if batching:
                        tasks = queue.pop_batch(threshold, batch_key)
                        if len(tasks) > 1:
                            pendings = [
                                p
                                for t in tasks
                                if (p := begin_one(t)) is not None
                            ]
                            local: list[PendingOp] = []
                            for p in pendings:
                                if p.remote:
                                    # Vector-eligible: the supervisor
                                    # groups staged same-operator records
                                    # into one wire entry at flush time.
                                    supervisor.dispatch(p, vector=True)
                                else:
                                    local.append(p)
                            if (
                                len(local) > 1
                                and local[0].spec.batch_fn is not None
                                and all(
                                    p.spec is local[0].spec for p in local
                                )
                            ):
                                run_inline_batch(local)
                            else:
                                for p in local:
                                    run_inline(p)
                            continue
                        task = tasks[0]
                    else:
                        task = queue.pop()
                    pending = begin_one(task)
                    if pending is None:
                        continue
                    if pending.remote:
                        supervisor.dispatch(pending, vector=batching)
                    else:
                        run_inline(pending)
                if not supervisor.in_flight:
                    continue
                try:
                    completions = supervisor.pump(block=True)
                except PoolIrrecoverableError as exc:
                    if policy.degrade == "off":
                        raise
                    degrade(str(exc))
                    continue
                for c in completions:
                    commit(c)
                export_memory_gauges()

            export_memory_gauges()
            wall = time.perf_counter() - began
            if not state.finished:
                raise RuntimeFailure(
                    "execution stalled: ready queue drained without "
                    "producing a result (ill-formed graph?)\n"
                    + state.stall_report()
                )
        except BaseException as exc:
            if ctx is not None:
                ctx.run_failed(exc, time.perf_counter() - began)
            raise
        if ctx is not None:
            ctx.run_finished(wall)
        return RunResult(state.result(), state.snapshot_stats(), tracer, wall)
