"""Executors: policies for driving an :class:`ExecutionState`.

* :class:`SequentialExecutor` — one logical processor; the reference
  executor and the debugging story of the paper ("we generally debug
  programs on a single-processor workstation").
* :class:`ThreadedExecutor` — real OS threads sharing the ready queue.
  Engine bookkeeping is serialized under one lock; operator bodies run
  outside it, so threads overlap wherever a kernel releases the GIL.
  Pure-Python operators still serialize on the GIL itself — use
  :class:`ProcessExecutor` for those.
* :class:`ProcessExecutor` — deterministic firing semantics in the
  master, operator *computation* on a persistent pool of worker
  processes: true multi-core execution of the coordination graph, with
  large NumPy payloads traveling through shared memory and cheap glue
  operators kept in-process (see :mod:`repro.runtime.workers`).

All run every ready task to queue exhaustion and produce identical
results — the coordination model's determinism guarantee, which the
property tests hammer across all executors.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any

from ..errors import OperatorError, RuntimeFailure
from ..graph.ir import GraphProgram
from ..obs.events import (
    EventBus,
    ResultReceived,
    ShmBlockCreated,
    TaskDispatched,
    TaskFired,
)
from .engine import EngineStats, ExecutionState, PendingOp
from .operators import OperatorRegistry, collect_fused_chains, default_registry
from .scheduler import ReadyQueue
from .tracing import Tracer
from .workers import (
    SHM_THRESHOLD_DEFAULT,
    DispatchPolicy,
    EncodedValue,
    RegistryRef,
    WorkerPool,
    _decode_exception,
    decode_value,
    encode_value,
)


def resolve_bus(
    bus: EventBus | None, trace: bool
) -> tuple[EventBus | None, Tracer | None]:
    """Shared executor preamble: tracer-as-subscriber plus fast-path check.

    ``trace=True`` guarantees a bus (creating a private one if none was
    supplied) and attaches a :class:`Tracer` to it; a bus that still has
    no subscribers is then dropped entirely so the run pays nothing for
    instrumentation nobody is watching.
    """
    tracer: Tracer | None = None
    if trace:
        bus = bus if bus is not None else EventBus()
        tracer = Tracer()
        tracer.attach(bus)
    if bus is not None and not bus.active:
        bus = None
    return bus, tracer


@dataclass
class RunResult:
    """Outcome of one program execution."""

    value: Any
    stats: EngineStats
    tracer: Tracer | None
    wall_seconds: float


class SequentialExecutor:
    """Run a coordination graph on one processor.

    Parameters
    ----------
    use_priorities:
        The three-level ready queue (default) vs. plain FIFO (ablation).
    seed:
        Randomize pop order within priority classes (determinism tests).
    check_purity:
        Enable the engine's undeclared-write detector.
    trace:
        Collect per-node wall-clock timings.
    bus:
        Optional :class:`~repro.obs.events.EventBus`.  When it has
        subscribers, the executor stamps its clock (wall seconds since
        run start), emits one :class:`~repro.obs.events.TaskFired` span
        per node firing, and threads it through the engine, scheduler,
        and activation pool.
    """

    def __init__(
        self,
        use_priorities: bool = True,
        seed: int | None = None,
        check_purity: bool = False,
        trace: bool = False,
        bus: EventBus | None = None,
    ) -> None:
        self.use_priorities = use_priorities
        self.seed = seed
        self.check_purity = check_purity
        self.trace = trace
        self.bus = bus

    def run(
        self,
        program: GraphProgram,
        args: tuple[Any, ...] = (),
        registry: OperatorRegistry | None = None,
    ) -> RunResult:
        registry = registry if registry is not None else default_registry()
        bus, tracer = resolve_bus(self.bus, self.trace)
        state = ExecutionState(
            program, registry, check_purity=self.check_purity, bus=bus
        )
        queue = ReadyQueue(self.use_priorities, self.seed, bus=bus)
        began = time.perf_counter()
        if bus is not None:
            bus.set_clock(lambda: time.perf_counter() - began)
        queue.push_all(state.start(args))
        while queue:
            task = queue.pop()
            if bus is not None:
                act = task.activation
                node = act.template.nodes[task.node_id]
                template_name, aid = act.template.name, act.aid
                t0 = time.perf_counter() - began
                queue.push_all(state.fire(task))
                t1 = time.perf_counter() - began
                bus.emit(
                    TaskFired(
                        t0,
                        node.label,
                        node.kind.value,
                        task.priority,
                        template_name,
                        aid,
                        task.node_id,
                        task.seq,
                        t1 - t0,
                        0,
                    )
                )
            else:
                queue.push_all(state.fire(task))
        wall = time.perf_counter() - began
        if not state.finished:
            raise RuntimeFailure(
                "execution stalled: ready queue drained without producing a "
                "result (ill-formed graph?)\n" + state.stall_report()
            )
        return RunResult(state.result(), state.snapshot_stats(), tracer, wall)


class ThreadedExecutor:
    """Run a coordination graph on real OS threads.

    Built on the engine's ``begin_fire`` / ``complete_fire`` split: a
    worker pops a task and runs the engine bookkeeping under the shared
    condition lock, but any operator body surfaces as a
    :class:`~repro.runtime.engine.PendingOp` and executes with the lock
    *released* — NumPy/SciPy kernels that drop the GIL then genuinely
    overlap across threads, while the commit (result delivery, reference
    releases) reacquires the lock.  Results are identical to the
    sequential executor — the coordination model guarantees it, and the
    tests verify it.
    """

    def __init__(
        self,
        n_workers: int = 4,
        use_priorities: bool = True,
        check_purity: bool = False,
        trace: bool = False,
        bus: EventBus | None = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = n_workers
        self.use_priorities = use_priorities
        self.check_purity = check_purity
        self.trace = trace
        self.bus = bus

    def run(
        self,
        program: GraphProgram,
        args: tuple[Any, ...] = (),
        registry: OperatorRegistry | None = None,
    ) -> RunResult:
        registry = registry if registry is not None else default_registry()
        bus, tracer = resolve_bus(self.bus, self.trace)
        state = ExecutionState(
            program, registry, check_purity=self.check_purity, bus=bus
        )
        queue = ReadyQueue(self.use_priorities, bus=bus)
        condition = threading.Condition()
        active = 0
        errors: list[BaseException] = []
        run_began = time.perf_counter()
        if bus is not None:
            bus.set_clock(lambda: time.perf_counter() - run_began)

        def run_pending(pending: PendingOp) -> None:
            # Drop the engine lock for the duration of the sequential
            # sub-computation; this is the concurrency the model permits.
            spec = pending.spec
            error: BaseException | None = None
            raw: Any = None
            condition.release()
            t0 = time.perf_counter()
            try:
                raw = spec.fn(*pending.args)
            except Exception as exc:  # noqa: BLE001 - wrapped, re-raised
                error = OperatorError(spec.name, exc)
                error.__cause__ = exc
            finally:
                elapsed = time.perf_counter() - t0
                condition.acquire()
            if bus is not None:
                # Emitted under the lock; the worker's thread index
                # stands in for a processor id.  Only operator calls
                # get spans here — engine bookkeeping is serialized
                # under the lock and is not attributable to a worker.
                name = threading.current_thread().name
                processor = int(name.rsplit("-", 1)[-1]) if "-" in name else 0
                bus.emit(
                    TaskFired(
                        t0 - run_began,
                        spec.name,
                        "op",
                        0,
                        "",
                        -1,
                        -1,
                        -1,
                        elapsed,
                        processor,
                    )
                )
            if error is not None:
                raise error
            queue.push_all(state.complete_fire(pending, raw))

        def worker() -> None:
            nonlocal active
            with condition:
                while True:
                    while not queue and active > 0 and not errors:
                        condition.wait()
                    if errors or (not queue and active == 0):
                        condition.notify_all()
                        return
                    task = queue.pop()
                    active += 1
                    try:
                        outcome = state.begin_fire(task)
                        queue.push_all(outcome.newly)
                        if outcome.pending is not None:
                            run_pending(outcome.pending)
                    except BaseException as exc:  # noqa: BLE001
                        errors.append(exc)
                    finally:
                        active -= 1
                        condition.notify_all()

        began = run_began
        with condition:
            queue.push_all(state.start(args))
        threads = [
            threading.Thread(target=worker, name=f"delirium-worker-{i}")
            for i in range(self.n_workers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wall = time.perf_counter() - began
        if errors:
            raise errors[0]
        if not state.finished:
            raise RuntimeFailure(
                "execution stalled: ready queue drained without producing a "
                "result (ill-formed graph?)\n" + state.stall_report()
            )
        return RunResult(state.result(), state.snapshot_stats(), tracer, wall)


class ProcessExecutor:
    """Run a coordination graph with operator bodies on worker processes.

    The master keeps the entire coordination semantics — ready queue,
    firing order, copy-on-write decisions, result commits — and ships
    only the opaque operator computations to a persistent
    :class:`~repro.runtime.workers.WorkerPool`, so results are
    bit-identical to :class:`SequentialExecutor` while heavy kernels use
    real cores with no GIL in the way.

    Dispatch policy (see :class:`~repro.runtime.workers.DispatchPolicy`):
    an operator crosses the process boundary only when its cost hint
    clears ``cost_threshold`` ticks (falling back to a payload-size test
    when it has no usable hint), so scalar glue never pays IPC.  Ready
    dispatches are staged and sent in batches of up to ``batch_size``
    calls — but never so coarse that a worker sits idle while another
    holds the whole frontier.  Argument and result payloads whose NumPy
    buffers reach ``shm_threshold`` bytes travel via POSIX shared memory
    (:class:`~repro.obs.events.ShmBlockCreated` on the bus); the rest
    ride the pickle stream.

    Parameters mirror :class:`SequentialExecutor` plus:

    n_workers:
        Worker process count.
    batch_size:
        Maximum operator calls per IPC message.
    cost_threshold / shm_threshold / pinned_local:
        Dispatch and transport tuning (see above).
    measured_costs / min_dispatch_seconds:
        Measured per-firing wall seconds by operator name (from
        :func:`repro.machine.calibrate.calibrate_dispatch`) and the
        per-call IPC cost bar they are compared against; measured
        operators bypass the static cost-hint test entirely.
    registry_ref:
        :class:`~repro.runtime.workers.RegistryRef` naming an importable
        registry factory — required only on platforms without ``fork``,
        where workers cannot inherit the master's registry.
    """

    def __init__(
        self,
        n_workers: int = 4,
        batch_size: int = 4,
        cost_threshold: float = 2_000_000.0,
        shm_threshold: int = SHM_THRESHOLD_DEFAULT,
        use_priorities: bool = True,
        seed: int | None = None,
        check_purity: bool = False,
        trace: bool = False,
        bus: EventBus | None = None,
        registry_ref: RegistryRef | None = None,
        pinned_local: tuple[str, ...] = (),
        measured_costs: dict[str, float] | None = None,
        min_dispatch_seconds: float = 0.002,
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.n_workers = n_workers
        self.batch_size = batch_size
        self.policy = DispatchPolicy(
            cost_threshold=cost_threshold,
            nbytes_threshold=shm_threshold,
            pinned_local=frozenset(pinned_local),
            measured_seconds=measured_costs,
            min_dispatch_seconds=min_dispatch_seconds,
        )
        self.shm_threshold = shm_threshold
        self.use_priorities = use_priorities
        self.seed = seed
        self.check_purity = check_purity
        self.trace = trace
        self.bus = bus
        self.registry_ref = registry_ref

    def run(
        self,
        program: GraphProgram,
        args: tuple[Any, ...] = (),
        registry: OperatorRegistry | None = None,
    ) -> RunResult:
        registry = registry if registry is not None else default_registry()
        bus, tracer = resolve_bus(self.bus, self.trace)
        state = ExecutionState(
            program, registry, check_purity=self.check_purity, bus=bus
        )
        queue = ReadyQueue(self.use_priorities, self.seed, bus=bus)
        began = time.perf_counter()
        if bus is not None:
            bus.set_clock(lambda: time.perf_counter() - began)
        classify = self.policy.should_dispatch
        in_flight: dict[int, PendingOp] = {}
        #: Pooled arena segments lent to each in-flight call, returned to
        #: the arena when the call's result arrives (the worker decodes —
        #: copies out of — every argument before computing).
        call_segments: dict[int, list[str]] = {}
        staged: list[tuple[int, str, list[EncodedValue]]] = []
        call_seq = 0

        with WorkerPool(
            self.n_workers,
            registry=registry,
            registry_ref=self.registry_ref,
            shm_threshold=self.shm_threshold,
            fused_chains=collect_fused_chains(program),
        ) as pool:

            def flush() -> None:
                """Send staged calls, splitting so every worker gets work."""
                if not staged:
                    return
                chunk = max(
                    1,
                    min(
                        self.batch_size,
                        -(-len(staged) // self.n_workers),
                    ),
                )
                for i in range(0, len(staged), chunk):
                    pool.submit(staged[i : i + chunk])
                staged.clear()

            def dispatch(pending: PendingOp) -> None:
                nonlocal call_seq
                call_seq += 1
                enc_args = [
                    encode_value(a, self.shm_threshold, arena=pool.arena)
                    for a in pending.args
                ]
                pooled = [
                    e.shm_name for e in enc_args
                    if e.pooled and e.shm_name is not None
                ]
                if pooled:
                    call_segments[call_seq] = pooled
                if bus is not None:
                    now = bus.now()
                    for enc in enc_args:
                        if enc.shm_name is not None:
                            bus.emit(
                                ShmBlockCreated(now, enc.shm_name, enc.shm_nbytes)
                            )
                    bus.emit(
                        TaskDispatched(
                            now,
                            pending.spec.name,
                            call_seq,
                            sum(e.nbytes for e in enc_args),
                            any(e.via_shm for e in enc_args),
                        )
                    )
                in_flight[call_seq] = pending
                staged.append((call_seq, pending.spec.name, enc_args))
                if len(staged) >= self.batch_size * self.n_workers:
                    flush()

            def run_inline(pending: PendingOp) -> None:
                spec = pending.spec
                t0 = time.perf_counter()
                try:
                    raw = spec.fn(*pending.args)
                except Exception as exc:  # noqa: BLE001 - wrapped
                    raise OperatorError(spec.name, exc) from exc
                t1 = time.perf_counter()
                queue.push_all(state.complete_fire(pending, raw))
                if bus is not None:
                    bus.emit(
                        TaskFired(
                            t0 - began, spec.name, "op", 0, "", -1, -1, -1,
                            t1 - t0, 0,
                        )
                    )

            def absorb_results(block: bool) -> bool:
                """Commit one result message; return whether one arrived."""
                if not in_flight or (not block):
                    return False
                worker_id, results = pool.recv()
                for call_id, ok, payload, t0_raw, duration in results:
                    pending = in_flight.pop(call_id)
                    for name in call_segments.pop(call_id, ()):
                        pool.arena.release(name)
                    spec = pending.spec
                    if not ok:
                        exc = _decode_exception(payload)
                        raise OperatorError(spec.name, exc) from exc
                    raw = decode_value(payload)
                    if bus is not None:
                        now = bus.now()
                        bus.emit(
                            ResultReceived(
                                now,
                                spec.name,
                                call_id,
                                worker_id,
                                duration,
                                payload.nbytes,
                                payload.via_shm,
                            )
                        )
                        bus.emit(
                            TaskFired(
                                max(0.0, t0_raw - began),
                                spec.name,
                                "op",
                                0,
                                "",
                                -1,
                                -1,
                                -1,
                                duration,
                                worker_id + 1,
                            )
                        )
                    queue.push_all(state.complete_fire(pending, raw))
                return True

            queue.push_all(state.start(args))
            while queue or in_flight:
                while queue:
                    task = queue.pop()
                    outcome = state.begin_fire(task, classify=classify)
                    queue.push_all(outcome.newly)
                    pending = outcome.pending
                    if pending is None:
                        continue
                    if pending.remote:
                        dispatch(pending)
                    else:
                        run_inline(pending)
                flush()
                absorb_results(block=bool(in_flight))

        wall = time.perf_counter() - began
        if not state.finished:
            raise RuntimeFailure(
                "execution stalled: ready queue drained without producing a "
                "result (ill-formed graph?)\n" + state.stall_report()
            )
        return RunResult(state.result(), state.snapshot_stats(), tracer, wall)
