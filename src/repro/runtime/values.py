"""Runtime value kinds for Delirium programs.

Values flowing along coordination-graph edges are:

* plain immutable Python objects (ints, floats, strings, bools, bytes) —
  the "atomic values" of the language;
* :data:`NULL` — the distinguished null value (falsy, printable as
  ``NULL``), returned e.g. by failed backtracking tries;
* :class:`MultiValue` — a multiple-value package;
* :class:`Closure` — a template plus captured environment, produced by
  function references and consumed by call-closure nodes;
* :class:`OperatorValue` — an external operator used as a first-class
  value;
* :class:`~repro.runtime.blocks.DataBlock` — a reference-counted wrapper
  around any *mutable* payload (NumPy arrays, lists, application objects).

The engine is the only code that wraps/unwraps blocks; operators always see
raw payloads, exactly like C operators saw raw pointers in the original
system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from ..graph.ir import Template


class _Null:
    """Singleton type of the Delirium ``NULL`` value."""

    _instance: "_Null | None" = None

    def __new__(cls) -> "_Null":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __bool__(self) -> bool:
        return False

    def __repr__(self) -> str:
        return "NULL"

    def __reduce__(self):  # keep singleton across pickling
        return (_Null, ())


#: The Delirium NULL value.
NULL = _Null()


@dataclass(frozen=True, slots=True)
class MultiValue:
    """A multiple-value package: ``<v1, ..., vn>``.

    Immutable; elements may be blocks.  Decomposed by ``UNTUPLE`` nodes or
    returned whole from functions.
    """

    items: tuple[Any, ...]

    def __len__(self) -> int:
        return len(self.items)

    def __repr__(self) -> str:
        inner = ", ".join(repr(i) for i in self.items)
        return f"<{inner}>"


@dataclass(frozen=True, slots=True)
class OperatorValue:
    """An external operator passed around as a first-class value."""

    name: str

    def __repr__(self) -> str:
        return f"operator:{self.name}"


class Closure:
    """A first-class function value: a template plus captured cells.

    ``cells`` holds one value per template capture, in template order.
    When the compiler proves a local function recursive, its own name may
    appear among its captures; :meth:`tie_self` fills that cell with the
    closure itself (a benign cycle — Python's GC handles it).
    """

    __slots__ = ("template", "cells")

    def __init__(self, template: "Template", cells: tuple[Any, ...]) -> None:
        self.template = template
        self.cells = cells

    def tie_self(self) -> "Closure":
        """Replace any self-capture placeholder with this closure."""
        if _SELF in self.cells:
            self.cells = tuple(
                self if c is _SELF else c for c in self.cells
            )
        return self

    def __repr__(self) -> str:
        return f"closure:{self.template.name}"


class _SelfPlaceholder:
    """Marker injected for a closure's own-name capture before tying."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<self>"


#: Placeholder used while constructing self-referential closures.
_SELF = _SelfPlaceholder()


def is_truthy(value: Any) -> bool:
    """Delirium condition semantics.

    ``NULL`` is false; numbers and strings follow Python truthiness; a
    :class:`~repro.runtime.blocks.DataBlock` is judged by its payload.
    Multi-element NumPy arrays raise, as they do in Python — conditions
    must be scalars.
    """
    from .blocks import DataBlock

    if value is NULL:
        return False
    if isinstance(value, DataBlock):
        return bool(value.payload)
    return bool(value)
