"""Template activations: the runtime's unit of execution state.

Section 7 of the paper: "The run time system executes small data structures
called template activations which contain enough data buffer space to
execute the given subgraph, and a pointer back to the template."  A tree of
activations generalizes the sequential call stack.

An activation owns one input-slot buffer per node and a countdown of
missing inputs; when a node's countdown hits zero it is ready.  Because
every node fires exactly once, the buffers never need clearing mid-run, and
an activation whose nodes have all fired (and whose result has been
delivered or delegated to a tail call) can be recycled through a per-
template free list — the reuse the paper's priority scheme is designed to
maximize.
"""

from __future__ import annotations

from typing import Any

from ..graph.ir import Template
from ..obs.events import ActivationAllocated, ActivationRecycled, EventBus

#: Sentinel marking an input slot that has not received its value yet.
_EMPTY = object()


class Activation:
    """One in-flight evaluation of a template.

    Attributes
    ----------
    template:
        The static subgraph being evaluated.
    slots:
        ``slots[node][input_index]`` — received input values.
    missing:
        Per-node count of inputs not yet present.
    continuation:
        Where the result goes: ``(parent_activation, node_id)`` meaning
        "this is the output of that node", or ``None`` for the root
        activation (result returned to the caller of the executor).
    fired:
        Number of nodes fired so far.
    result_done:
        The result was delivered — or delegated to a tail call's child.
    aid:
        Serial number (diagnostics and deterministic tie-breaking).
    pend_ops / pend_children:
        In-flight operator firings and outstanding non-tail children of
        this activation; both must be zero before it can be recycled.
        Kept as plain counters on the activation (rather than engine-side
        dicts keyed by ``aid``) because the recycling check runs after
        every firing.
    """

    __slots__ = (
        "template",
        "slots",
        "missing",
        "continuation",
        "fired",
        "result_done",
        "aid",
        "pend_ops",
        "pend_children",
        "fireable",
        "_blank",
    )

    def __init__(
        self,
        template: Template,
        aid: int,
        blank: list[list[Any]] | None = None,
    ) -> None:
        self.template = template
        #: Pristine slot rows; ``reset`` restores each row with one
        #: C-level slice assignment instead of a Python loop.  Read-only,
        #: so the pool shares one copy across all activations of a
        #: template rather than allocating a shadow row set per
        #: activation.
        if blank is None:
            blank = [[_EMPTY] * n for n in template.in_counts]
        self._blank = blank
        self.slots: list[list[Any]] = [row[:] for row in blank]
        self.missing: list[int] = list(template.in_counts)
        self.continuation: tuple["Activation", int] | None = None
        self.fired = 0
        self.result_done = False
        self.aid = aid
        self.pend_ops = 0
        self.pend_children = 0
        self.fireable = len(template.nodes) - template.n_placeholders()

    # ------------------------------------------------------------------
    def reset(self, aid: int) -> None:
        """Recycle this activation for a fresh evaluation of its template."""
        for slot_row, blank in zip(self.slots, self._blank):
            slot_row[:] = blank
        self.missing[:] = self.template.in_counts
        self.continuation = None
        self.fired = 0
        self.result_done = False
        self.aid = aid
        self.pend_ops = 0
        self.pend_children = 0

    def fireable_nodes(self) -> int:
        """Nodes that will fire (everything but the placeholders)."""
        return self.fireable

    def finished(self) -> bool:
        return self.result_done and self.fired >= self.fireable_nodes()

    def take_inputs(self, node_id: int) -> list[Any]:
        """Return the received inputs of a ready node (slots keep them;
        per the execution model data is consumed exactly once, by the
        node's single firing)."""
        assert self.missing[node_id] == 0, "node fired before ready"
        return self.slots[node_id]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Activation#{self.aid}({self.template.name})"


class ActivationPool:
    """Per-template free lists enabling activation reuse.

    The paper: the priority scheme "reduces the number of template
    activations required ... by making activations available for re-use as
    early as possible."  The pool makes that measurable: the ablation
    benchmark reports created/reused counts and the peak number live.

    Free lists are bounded per template (``max_free_per_template``): a
    burst of parallelism — a wide fork-join that briefly needs hundreds
    of activations of one template — must not pin that burst's slot
    buffers (and every block they reference is already cleared, but the
    list/slot structures themselves are not small) for the rest of the
    run.  Releases beyond the bound simply drop the activation to the
    garbage collector.
    """

    def __init__(
        self,
        bus: EventBus | None = None,
        max_free_per_template: int = 64,
    ) -> None:
        self._bus = bus if (bus is not None and bus.active) else None
        self.max_free_per_template = max_free_per_template
        self.free_dropped = 0
        self._free: dict[str, list[Activation]] = {}
        #: Shared pristine slot rows, one set per template (see
        #: ``Activation._blank``).
        self._blanks: dict[str, list[list[Any]]] = {}
        self.created = 0
        self.reused = 0
        self.live = 0
        self.peak_live = 0
        self.live_by_template: dict[str, int] = {}
        self.peak_by_template: dict[str, int] = {}
        #: Currently live activations (identity set; diagnostics only).
        self.live_set: set[Activation] = set()
        self._serial = 0
        # Subscriber-set snapshot (same discipline as the engine and the
        # ready queue): pools are constructed after subscriptions attach.
        bus = self._bus
        self._wants_alloc = bus is not None and bus.wants(ActivationAllocated)
        self._wants_recycled = bus is not None and bus.wants(
            ActivationRecycled
        )

    def acquire(self, template: Template) -> Activation:
        self._serial += 1
        free_list = self._free.get(template.name)
        if free_list:
            act = free_list.pop()
            act.reset(self._serial)
            self.reused += 1
            reused = True
        else:
            blank = self._blanks.get(template.name)
            if blank is None:
                blank = [[_EMPTY] * n for n in template.in_counts]
                self._blanks[template.name] = blank
            act = Activation(template, self._serial, blank)
            self.created += 1
            reused = False
        self.live += 1
        self.peak_live = max(self.peak_live, self.live)
        name = template.name
        live = self.live_by_template.get(name, 0) + 1
        self.live_by_template[name] = live
        if live > self.peak_by_template.get(name, 0):
            self.peak_by_template[name] = live
        self.live_set.add(act)
        bus = self._bus
        if self._wants_alloc:
            bus.emit(
                ActivationAllocated(bus.now(), name, act.aid, reused, self.live)
            )
        return act

    def release(self, act: Activation) -> None:
        if act not in self.live_set:
            raise RuntimeError(
                f"activation {act.aid} of {act.template.name!r} released "
                "twice — a firing was committed more than once "
                "(retry double-release?)"
            )
        self.live -= 1
        self.live_by_template[act.template.name] -= 1
        self.live_set.discard(act)
        free_list = self._free.setdefault(act.template.name, [])
        if len(free_list) < self.max_free_per_template:
            free_list.append(act)
        else:
            self.free_dropped += 1
        bus = self._bus
        if self._wants_recycled:
            bus.emit(
                ActivationRecycled(
                    bus.now(), act.template.name, act.aid, self.live
                )
            )

    def stats(self) -> dict[str, int]:
        return {
            "created": self.created,
            "reused": self.reused,
            "peak_live": self.peak_live,
            "free_dropped": self.free_dropped,
        }
