"""Affinity scheduling policies (section 9.3 of the paper).

The basic Delirium model ignores locality; the paper sketches two
"preliminary approaches ... both based on the notion of affinity":

* **operator affinity** — "once a given operator has executed on a
  processor, it prefers to run on that processor in the future.  This
  preference is overridden if the desired processor is busy" — an idle
  processor never stays idle to honor a preference.
* **data affinity** — "attaching a processor preference to the header of
  each data block.  When an operator is scheduled for execution, the run
  time system takes into account the size and cached locations of its
  inputs."

Policies choose among the *idle* processors for a ready task; they never
delay a task (work-conserving), which preserves the simulator's greedy
list-scheduling guarantees.  Results are unaffected (determinism is the
model's guarantee); only simulated time and traffic change.
"""

from __future__ import annotations

from typing import Any, Iterable

from .blocks import DataBlock
from .scheduler import Task
from .values import MultiValue


class AffinityPolicy:
    """Base policy: pick the lowest-numbered idle processor."""

    name = "none"

    def choose(self, task: Task, idle: Iterable[int]) -> int:
        """Select a processor for ``task`` from the non-empty ``idle`` set."""
        return min(idle)

    def notify(self, task: Task, processor: int) -> None:
        """Called when ``task`` is dispatched to ``processor``."""


class OperatorAffinity(AffinityPolicy):
    """Prefer the processor this node label last executed on."""

    name = "operator"

    def __init__(self) -> None:
        self._last: dict[str, int] = {}

    def choose(self, task: Task, idle: Iterable[int]) -> int:
        idle_set = set(idle)
        preferred = self._last.get(task.label())
        if preferred in idle_set:
            return preferred
        return min(idle_set)

    def notify(self, task: Task, processor: int) -> None:
        self._last[task.label()] = processor


def _input_bytes_by_home(task: Task) -> dict[int, int]:
    """Bytes of the task's input blocks, grouped by home processor."""
    out: dict[int, int] = {}

    def visit(value: Any) -> None:
        if isinstance(value, DataBlock):
            if value.home >= 0:
                out[value.home] = out.get(value.home, 0) + value.nbytes
        elif isinstance(value, MultiValue):
            for item in value.items:
                visit(item)

    for value in task.activation.slots[task.node_id]:
        visit(value)
    return out


class DataAffinity(AffinityPolicy):
    """Prefer the idle processor holding the most input bytes."""

    name = "data"

    def choose(self, task: Task, idle: Iterable[int]) -> int:
        idle_set = set(idle)
        by_home = _input_bytes_by_home(task)
        best = min(idle_set)
        best_bytes = by_home.get(best, 0)
        for p in sorted(idle_set):
            resident = by_home.get(p, 0)
            if resident > best_bytes:
                best, best_bytes = p, resident
        return best


def make_policy(spec: "str | AffinityPolicy") -> AffinityPolicy:
    """Build a policy from a name (``none``/``operator``/``data``) or pass
    an instance through."""
    if isinstance(spec, AffinityPolicy):
        return spec
    table = {
        "none": AffinityPolicy,
        "operator": OperatorAffinity,
        "data": DataAffinity,
    }
    try:
        return table[spec]()
    except KeyError:
        raise ValueError(
            f"unknown affinity policy {spec!r}; expected one of {sorted(table)}"
        ) from None
