"""Affinity scheduling policies (section 9.3 of the paper).

The basic Delirium model ignores locality; the paper sketches two
"preliminary approaches ... both based on the notion of affinity":

* **operator affinity** — "once a given operator has executed on a
  processor, it prefers to run on that processor in the future.  This
  preference is overridden if the desired processor is busy" — an idle
  processor never stays idle to honor a preference.
* **data affinity** — "attaching a processor preference to the header of
  each data block.  When an operator is scheduled for execution, the run
  time system takes into account the size and cached locations of its
  inputs."

Policies choose among the *idle* processors for a ready task; they never
delay a task (work-conserving), which preserves the simulator's greedy
list-scheduling guarantees.  Results are unaffected (determinism is the
model's guarantee); only simulated time and traffic change.

Two dispatch paths share these policies: the discrete-event simulator
(where "cached location" is a block's ``home`` processor) and the real
process executor's supervisor (where it is the worker-resident block
cache — see :mod:`repro.runtime.supervise`).  Both feed
:func:`input_residency` with their own notion of *holders* and break
ties with :func:`pick_most_resident`, so the paper's placement rule is
written once.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from .blocks import DataBlock
from .scheduler import Task
from .values import MultiValue


def input_residency(
    values: Iterable[Any], holders: Callable[[DataBlock], Iterable[int]]
) -> dict[int, int]:
    """Bytes of input blocks grouped by holder.

    ``holders(block)`` yields the ids (processors or workers) that hold a
    usable copy of ``block``; packages are walked recursively, exactly as
    the simulator's original block scan did.
    """
    out: dict[int, int] = {}

    def visit(value: Any) -> None:
        if isinstance(value, DataBlock):
            for h in holders(value):
                out[h] = out.get(h, 0) + value.nbytes
        elif isinstance(value, MultiValue):
            for item in value.items:
                visit(item)

    for value in values:
        visit(value)
    return out


def pick_most_resident(
    bytes_by_holder: dict[int, int], idle: Iterable[int]
) -> int:
    """The idle id holding the most input bytes; ties pick the lowest id.

    This is the §9.3 data-affinity rule ("takes into account the size
    and cached locations of its inputs"), deterministic by construction.
    """
    idle_set = set(idle)
    best = min(idle_set)
    best_bytes = bytes_by_holder.get(best, 0)
    for p in sorted(idle_set):
        resident = bytes_by_holder.get(p, 0)
        if resident > best_bytes:
            best, best_bytes = p, resident
    return best


class AffinityPolicy:
    """Base policy: pick the lowest-numbered idle processor."""

    name = "none"

    def choose(self, task: Task, idle: Iterable[int]) -> int:
        """Select a processor for ``task`` from the non-empty ``idle`` set."""
        return min(idle)

    def notify(self, task: Task, processor: int) -> None:
        """Called when ``task`` is dispatched to ``processor``."""


class OperatorAffinity(AffinityPolicy):
    """Prefer the processor this node label last executed on."""

    name = "operator"

    def __init__(self) -> None:
        self._last: dict[str, int] = {}

    def choose(self, task: Task, idle: Iterable[int]) -> int:
        idle_set = set(idle)
        preferred = self._last.get(task.label())
        if preferred in idle_set:
            return preferred
        return min(idle_set)

    def notify(self, task: Task, processor: int) -> None:
        self._last[task.label()] = processor


def _home_holders(block: DataBlock) -> tuple[int, ...]:
    """Simulator residency: the producing processor, when placed."""
    return (block.home,) if block.home >= 0 else ()


def _input_bytes_by_home(task: Task) -> dict[int, int]:
    """Bytes of the task's input blocks, grouped by home processor."""
    return input_residency(
        task.activation.slots[task.node_id], _home_holders
    )


class DataAffinity(AffinityPolicy):
    """Prefer the idle processor holding the most input bytes."""

    name = "data"

    def choose(self, task: Task, idle: Iterable[int]) -> int:
        return pick_most_resident(_input_bytes_by_home(task), idle)


def make_policy(spec: "str | AffinityPolicy") -> AffinityPolicy:
    """Build a policy from a name (``none``/``operator``/``data``) or pass
    an instance through."""
    if isinstance(spec, AffinityPolicy):
        return spec
    table = {
        "none": AffinityPolicy,
        "operator": OperatorAffinity,
        "data": DataAffinity,
    }
    try:
        return table[spec]()
    except KeyError:
        raise ValueError(
            f"unknown affinity policy {spec!r}; expected one of {sorted(table)}"
        ) from None
