"""Worker-process infrastructure for :class:`ProcessExecutor`.

The paper's runtime ran operator bodies on real Y-MP processors while the
coordination semantics stayed centralized; this module is the Python
analogue.  Three pieces:

* **Payload transport** (:func:`encode_value` / :func:`decode_value`) —
  pickle protocol 5 with out-of-band buffers: any contiguous NumPy buffer
  at or above ``shm_threshold`` bytes is lifted out of the pickle stream
  into one POSIX shared-memory segment (``multiprocessing.shared_memory``),
  so convolution-sized blocks never cross the process pipe.  Everything
  else — small arrays, scalars, application objects — rides the pickle
  bytes unchanged.  The *consumer* of a segment copies it into private
  memory and unlinks it, so a worker-side destructive write can never be
  observed by the master (copy-on-write isolation holds across the
  process boundary by construction, and the tests prove it).

* **Registry rehydration** (:class:`RegistryRef`) — operator functions are
  never pickled.  Under the default ``fork`` start method workers inherit
  the master's registry (closures and all); on spawn-only platforms a
  ``RegistryRef`` names an importable factory (``module:attr`` plus
  arguments) that each worker calls once to rebuild its registry, exactly
  as the original system re-linked the compiled C operators into every
  process.

* **The pool** (:class:`WorkerPool`) — persistent worker processes, each
  fed *batches* of operator calls over its own duplex pipe.  Per-worker
  pipes (rather than one shared queue) are what makes the pool
  supervisable: the master always knows which calls a worker holds, a
  SIGKILLed worker cannot die holding a shared queue lock and deadlock
  everyone else, and ``multiprocessing.connection.wait`` multiplexes the
  result pipes *and* the process sentinels so a crash is observed the
  same way a result is.  The master assigns batches least-loaded;
  batching amortizes the per-message IPC cost for fine-grained
  operators.  :meth:`WorkerPool.respawn` replaces a dead worker with a
  fresh process (re-shipping the registry ref, fused chains, and fault
  spec), which is the mechanism under
  :class:`~repro.runtime.supervise.Supervisor`'s fault policy.
"""

from __future__ import annotations

import atexit
import importlib
import pickle
import signal
import time
import traceback
import weakref
from dataclasses import dataclass, field, replace as dc_replace
from multiprocessing import get_all_start_methods, get_context
from multiprocessing import resource_tracker, shared_memory
from typing import Any

try:  # POSIX only; the arena needs tracker-free unlink (see ShmArena)
    import _posixshmem
except ImportError:  # pragma: no cover - non-POSIX platforms
    _posixshmem = None

from ..errors import RuntimeFailure
from .blocks import payload_nbytes, wraps_as_block
from .operators import (
    FusedChain,
    OperatorRegistry,
    bind_codegen,
    bind_codegen_batch,
    compose_fused,
    default_registry,
)

#: NumPy buffers at or above this many bytes travel via shared memory.
SHM_THRESHOLD_DEFAULT = 64 * 1024

#: Per-worker resident block-cache budget (see :class:`BlockCache`).
CACHE_BYTES_DEFAULT = 256 * 1024 * 1024

#: Shared-memory segment offsets are aligned to this many bytes.
_ALIGN = 64

#: Registry handed to forked workers (set by :class:`WorkerPool` around
#: process start; children capture it in their copied address space).
_FORK_REGISTRY: OperatorRegistry | None = None


class RemoteOperatorFailure(RuntimeFailure):
    """An operator raised in a worker and the exception did not pickle.

    Carries the worker-side traceback text instead.
    """


def pick_context():
    """The multiprocessing context: ``fork`` where available, else spawn.

    Fork is strongly preferred — workers inherit the full operator
    registry (including closure-captured configuration, as in the retina
    case study) with no import-path ceremony.
    """
    method = "fork" if "fork" in get_all_start_methods() else "spawn"
    return get_context(method)


@dataclass(frozen=True)
class RegistryRef:
    """An importable recipe for rebuilding an operator registry.

    ``module``/``attr`` name either an :class:`OperatorRegistry` instance
    or a factory callable; ``args``/``kwargs`` (which must pickle) are
    passed to the factory.  Example::

        RegistryRef("repro.apps.retina", "make_registry", (config,))
    """

    module: str
    attr: str
    args: tuple[Any, ...] = ()
    kwargs: tuple[tuple[str, Any], ...] = ()

    def load(self) -> OperatorRegistry:
        obj: Any = importlib.import_module(self.module)
        for part in self.attr.split("."):
            obj = getattr(obj, part)
        if isinstance(obj, OperatorRegistry):
            return obj
        registry = obj(*self.args, **dict(self.kwargs))
        if not isinstance(registry, OperatorRegistry):
            raise RuntimeFailure(
                f"registry ref {self.module}:{self.attr} produced "
                f"{type(registry).__name__}, not an OperatorRegistry"
            )
        return registry


# ---------------------------------------------------------------------------
# Payload transport
# ---------------------------------------------------------------------------


@dataclass
class EncodedValue:
    """One payload serialized for the process boundary.

    ``data`` is the pickle stream; when ``shm_name`` is set, the large
    buffers live in that shared-memory segment at ``segments`` (offset,
    nbytes) positions, in pickle buffer order.  ``shm_nbytes`` is the
    payload's total buffer size (0 for pure-pickle payloads).

    ``pooled`` marks a segment borrowed from a master-side
    :class:`ShmArena`: the consumer copies out and *closes* it but never
    unlinks — the arena reuses the segment for later calls and owns its
    teardown.
    """

    data: bytes
    shm_name: str | None = None
    segments: tuple[tuple[int, int], ...] = ()
    shm_nbytes: int = 0
    pooled: bool = False

    @property
    def nbytes(self) -> int:
        return len(self.data) + self.shm_nbytes

    @property
    def via_shm(self) -> bool:
        return self.shm_name is not None


class ShmArena:
    """A master-side pool of reusable shared-memory segments.

    Every dispatched argument above the shm threshold used to create (and
    the worker unlink) one fresh POSIX segment — a ``shm_open`` /
    ``ftruncate`` / ``mmap`` / ``unlink`` round trip per large payload,
    every fire.  The arena instead keeps segments alive across calls:
    segments come in power-of-two size classes, ``acquire`` reuses a free
    one when it fits, and the executor returns a call's segments with
    :meth:`release` once the worker's result proves the arguments were
    consumed.  Workers copy out and merely *close* pooled segments (see
    :func:`decode_value`); only :meth:`close` — called at worker-pool
    shutdown — unlinks them.

    The arena lives in the master (the workers share one task queue, so a
    segment's next consumer is unknown at encode time) and is empty when
    workers fork, so children never inherit arena mappings.

    Pooled segments are kept out of ``multiprocessing.resource_tracker``
    entirely.  Which processes share a tracker depends on whether the
    tracker happened to start before the workers forked, so any
    registration an arena segment leaves behind in *some* process's
    tracker ends with that tracker unlinking a segment the master still
    reuses (or warning about "leaked" segments it never owned).  Instead
    every registration is withdrawn where it happens — here after
    create, in :func:`decode_value` after attach — and :meth:`close`
    unlinks through ``shm_unlink`` directly, bypassing the tracker's
    bookkeeping.

    Explicit lifetime needs an explicit last line of defense: every
    arena registers in a module-level ``WeakSet`` and a single
    ``atexit`` pass (:func:`cleanup_arenas`) unlinks whatever is still
    live when the master exits — so a master that dies between pool
    start and the first commit (unhandled exception, ``SystemExit``,
    SIGTERM routed through :func:`install_arena_signal_cleanup`) leaks
    nothing into ``/dev/shm``.  Only ``SIGKILL`` still leaks, which no
    in-process mechanism can prevent.
    """

    def __init__(self, min_bytes: int = 4096) -> None:
        _LIVE_ARENAS.add(self)
        self.min_bytes = min_bytes
        self.created = 0
        self.reused = 0
        self.created_bytes = 0
        self.reclaimed = 0
        #: Fault-injection hook: when set and it returns True, the next
        #: :meth:`acquire` raises ``OSError`` exactly as a real
        #: ``shm_open`` failure would (callers fall back to an unpooled
        #: segment — see :func:`encode_value`).
        self.fail_hook: Any = None
        #: name -> (segment, size class) currently lent to an in-flight call.
        self._lent: dict[str, tuple[shared_memory.SharedMemory, int]] = {}
        #: size class -> free segments of that class.
        self._free: dict[int, list[shared_memory.SharedMemory]] = {}

    def _size_class(self, nbytes: int) -> int:
        return 1 << (max(self.min_bytes, nbytes) - 1).bit_length()

    def acquire(self, nbytes: int) -> shared_memory.SharedMemory:
        """A segment of at least ``nbytes``, recycled when one fits."""
        if self.fail_hook is not None and self.fail_hook():
            raise OSError("injected arena allocation failure")
        cls = self._size_class(nbytes)
        free = self._free.get(cls)
        if free:
            shm = free.pop()
            self.reused += 1
        else:
            shm = shared_memory.SharedMemory(create=True, size=cls)
            # Withdraw the create-side tracker registration immediately;
            # the arena owns this segment's whole lifetime (class docs).
            resource_tracker.unregister(shm._name, "shared_memory")
            self.created += 1
            self.created_bytes += cls
        self._lent[shm.name] = (shm, cls)
        return shm

    def release(self, name: str) -> None:
        """Return a lent segment to its free list (unknown names ignored)."""
        entry = self._lent.pop(name, None)
        if entry is not None:
            shm, cls = entry
            self._free.setdefault(cls, []).append(shm)

    def reclaim(self, names: Any) -> list[tuple[str, int]]:
        """Recover segments checked out to a call that will never complete.

        Called by the supervisor when a worker dies mid-fire: the dead
        process's mappings are gone with it, so its lent segments are
        safe to recycle immediately.  Returns ``(name, nbytes)`` pairs
        for the segments actually reclaimed (unknown names — e.g. a call
        whose segments were already released by a late result — are
        skipped).
        """
        out: list[tuple[str, int]] = []
        for name in names:
            entry = self._lent.get(name)
            if entry is not None:
                _, cls = entry
                self.release(name)
                self.reclaimed += 1
                out.append((name, cls))
        return out

    def close(self) -> None:
        """Unlink every segment (lent and free).  Arena is reusable after."""
        segments = [shm for shm, _ in self._lent.values()]
        segments.extend(
            shm for free in self._free.values() for shm in free
        )
        self._lent.clear()
        self._free.clear()
        for shm in segments:
            name = shm._name
            shm.close()
            try:
                if _posixshmem is not None:
                    # Not shm.unlink(): that would also send an
                    # UNREGISTER for a name no tracker has registered.
                    _posixshmem.shm_unlink(name)
                else:  # pragma: no cover - non-POSIX platforms
                    resource_tracker.register(name, "shared_memory")
                    shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def live_segments(self) -> int:
        """Segments currently backed by ``/dev/shm`` (lent plus free)."""
        return len(self._lent) + sum(len(v) for v in self._free.values())

    def stats(self) -> dict[str, int]:
        return {
            "created": self.created,
            "reused": self.reused,
            "reclaimed": self.reclaimed,
            "created_bytes": self.created_bytes,
            "lent": len(self._lent),
            "free": sum(len(v) for v in self._free.values()),
        }


#: Every arena constructed in this process and not yet garbage-collected;
#: the atexit pass below closes (= unlinks) whichever still hold segments.
_LIVE_ARENAS: "weakref.WeakSet[ShmArena]" = weakref.WeakSet()


def cleanup_arenas() -> int:
    """Unlink the segments of every live arena; returns arenas closed.

    Registered with ``atexit`` so an abandoned master (unhandled
    exception, ``SystemExit``, a signal routed through
    :func:`install_arena_signal_cleanup`) never leaks ``/dev/shm``
    segments.  Safe to call any number of times — :meth:`ShmArena.close`
    leaves the arena empty and reusable.
    """
    closed = 0
    for arena in list(_LIVE_ARENAS):
        if arena.live_segments():
            try:
                arena.close()
            except Exception:  # noqa: BLE001 - exit path must not raise
                continue
            closed += 1
    return closed


atexit.register(cleanup_arenas)

_SIGNAL_CLEANUP_INSTALLED = False


def install_arena_signal_cleanup(
    signals: tuple[int, ...] = (signal.SIGTERM,),
) -> None:
    """Chain arena cleanup into fatal-signal handling (main thread only).

    SIGTERM's default disposition kills the process without running
    ``atexit`` hooks, so a terminated master would leak its pooled
    segments.  The installed handler unlinks them, restores the previous
    handler, and re-raises the signal — the same chain-and-reraise shape
    as :meth:`~repro.obs.flightrec.FlightRecorder.install_signal_handlers`.
    The CLI installs this once per process; idempotent.
    """
    global _SIGNAL_CLEANUP_INSTALLED
    if _SIGNAL_CLEANUP_INSTALLED:
        return
    for signum in signals:
        previous = signal.getsignal(signum)

        def handler(num: int, frame: Any, _prev: Any = previous) -> None:
            cleanup_arenas()
            signal.signal(
                num, _prev if _prev is not None else signal.SIG_DFL
            )
            signal.raise_signal(num)

        signal.signal(signum, handler)
    _SIGNAL_CLEANUP_INSTALLED = True


def encode_value(
    obj: Any,
    shm_threshold: int = SHM_THRESHOLD_DEFAULT,
    arena: ShmArena | None = None,
) -> EncodedValue:
    """Serialize ``obj`` for the other side of a process boundary.

    Contiguous pickle-5 buffers (NumPy array data, wherever it sits in the
    object graph — inside a dataclass, a list, a dict) of at least
    ``shm_threshold`` bytes are placed in one shared-memory segment.
    Without an ``arena`` the segment is fresh and the consumer unlinks it
    in :func:`decode_value`; with an ``arena`` the segment is borrowed
    (``pooled=True``) and the caller returns it via
    :meth:`ShmArena.release` once consumed.  An arena acquisition
    failure (real or injected via :attr:`ShmArena.fail_hook`) degrades
    to the fresh-segment path rather than failing the call.
    """
    buffers: list[pickle.PickleBuffer] = []

    def callback(pb: pickle.PickleBuffer) -> bool:
        try:
            raw = pb.raw()
        except BufferError:  # non-contiguous; let pickle copy it in-band
            return True
        if raw.nbytes < shm_threshold:
            return True
        buffers.append(pb)
        return False

    data = pickle.dumps(obj, protocol=5, buffer_callback=callback)
    if not buffers:
        return EncodedValue(data)
    segments: list[tuple[int, int]] = []
    total = 0
    for pb in buffers:
        n = pb.raw().nbytes
        segments.append((total, n))
        total += -(-n // _ALIGN) * _ALIGN
    if arena is not None:
        try:
            shm = arena.acquire(total)
        except OSError:
            shm = None  # allocation failure: fall back to a fresh segment
        if shm is not None:
            for (offset, n), pb in zip(segments, buffers):
                shm.buf[offset : offset + n] = pb.raw().cast("B")
                pb.release()
            # The arena keeps the segment open and will reuse it; nothing
            # to close or unregister here.
            return EncodedValue(
                data, shm.name, tuple(segments), total, pooled=True
            )
    shm = shared_memory.SharedMemory(create=True, size=total)
    try:
        for (offset, n), pb in zip(segments, buffers):
            shm.buf[offset : offset + n] = pb.raw().cast("B")
            pb.release()
        return EncodedValue(data, shm.name, tuple(segments), total)
    finally:
        shm.close()
        # Segment lifetime is managed explicitly: the consumer unlinks in
        # decode_value (its attach/unlink pair self-balances in its own
        # resource tracker).  Withdraw the creator-side registration so
        # the tracker does not later "clean up" a segment the consumer
        # already removed (Python < 3.13 has no track=False).
        resource_tracker.unregister(shm._name, "shared_memory")


def decode_value(enc: EncodedValue, unlink: bool = True) -> Any:
    """Rebuild a payload from :func:`encode_value`'s wire form.

    The shared-memory segment (if any) is copied into a **private**
    writable buffer before unpickling, then closed; non-pooled segments
    are (by default) also unlinked — the consumer owns their teardown.
    Pooled segments belong to the producer's :class:`ShmArena`: the copy
    is sliced to the payload's bytes (the segment is size-class rounded),
    the attach-side resource-tracker registration is withdrawn (Python
    registers on attach unconditionally; arena segments stay out of
    every tracker — see :class:`ShmArena`), and the segment itself is
    left alone for the arena to reuse.

    Arrays in the result are writable and fully isolated from the
    producer either way: an in-place write on this side is invisible on
    the other, which is what lets the engine skip physical COW copies for
    remote operator calls.
    """
    if enc.shm_name is None:
        return pickle.loads(enc.data)
    shm = shared_memory.SharedMemory(name=enc.shm_name)
    try:
        if enc.pooled:
            private = bytearray(shm.buf[: enc.shm_nbytes])
        else:
            private = bytearray(shm.buf)
    finally:
        shm.close()
        if enc.pooled:
            resource_tracker.unregister(shm._name, "shared_memory")
        elif unlink:
            shm.unlink()
    view = memoryview(private)
    buffers = [view[offset : offset + n] for offset, n in enc.segments]
    return pickle.loads(enc.data, buffers=buffers)


def discard_encoded(enc: EncodedValue) -> None:
    """Free an encoded payload that will never be decoded (error paths)."""
    if enc.shm_name is None or enc.pooled:
        return  # pooled segments are torn down by their arena
    try:
        shm = shared_memory.SharedMemory(name=enc.shm_name)
    except FileNotFoundError:  # consumer got there first
        return
    shm.close()
    shm.unlink()


# ---------------------------------------------------------------------------
# The worker loop
# ---------------------------------------------------------------------------


def _encode_exception(exc: BaseException) -> tuple[str, Any, str]:
    """Serialize a worker-side exception, preserving the ``__cause__`` chain.

    Pickle discards ``__cause__`` (an exception reduces to ``(cls,
    args)``), so each link of the chain is encoded separately —
    pickle-round-trip when possible, ``repr`` text otherwise — and
    :func:`_decode_exception` relinks them on the master.  The worker's
    formatted traceback rides alongside so it survives even when the
    exception object itself cannot.
    """
    tb = traceback.format_exc()
    links: list[tuple[str, Any]] = []
    node: BaseException | None = exc
    seen: set[int] = set()
    while node is not None and id(node) not in seen:
        seen.add(id(node))
        try:
            data = pickle.dumps(node, protocol=5)
            pickle.loads(data)
            links.append(("pickle", data))
        except Exception:  # noqa: BLE001 - exotic exceptions fall to text
            links.append(("text", repr(node)))
        node = node.__cause__
    return ("chain", links, tb)


def _decode_exception(enc: tuple[str, Any, str]) -> BaseException:
    """Rebuild the exception from :func:`_encode_exception`'s wire form.

    Each chain link that pickled comes back as its original type; links
    that did not become :class:`RemoteOperatorFailure` carrying the repr
    (the outermost one also carries the worker traceback text).  The
    decoded root always exposes the worker's formatted traceback as
    ``remote_traceback``.  The legacy two-variant format from before the
    chain encoding is still accepted.
    """
    kind, payload, tb = enc
    if kind == "chain":
        links: list[BaseException] = []
        for i, (lkind, lpayload) in enumerate(payload):
            node: BaseException | None = None
            if lkind == "pickle":
                try:
                    node = pickle.loads(lpayload)
                except Exception:  # noqa: BLE001 - master lacks the type
                    node = None
                if node is not None and not isinstance(node, BaseException):
                    node = None
            if node is None:
                text = lpayload if lkind == "text" else repr(lpayload)
                if i == 0:
                    text = f"{text}\n--- worker traceback ---\n{tb}"
                node = RemoteOperatorFailure(text)
            links.append(node)
        for parent, cause in zip(links, links[1:]):
            parent.__cause__ = cause
        root = links[0] if links else RemoteOperatorFailure(tb)
        try:
            root.remote_traceback = tb
        except (AttributeError, TypeError):  # pragma: no cover - slotted
            pass
        return root
    if kind == "pickle":  # legacy format
        try:
            decoded = pickle.loads(payload)
            if isinstance(decoded, BaseException):
                return decoded
        except Exception:  # noqa: BLE001
            pass
    return RemoteOperatorFailure(f"{payload}\n--- worker traceback ---\n{tb}")


#: Distinguishes "not resident" from any legitimately cached payload.
_CACHE_MISS = object()


class BlockCache:
    """Bytes-bounded LRU of decoded payloads resident in one worker.

    Keys are master-assigned block ids (``DataBlock.bid``); values are
    the raw payloads operators receive.  Single-assignment makes resident
    copies valid for a block's whole lifetime — the only invalidation
    traffic is block death and declared in-place writes, which the master
    piggybacks on ordinary task messages.  Eviction is strictly
    least-recently-used by bytes; the master's residency belief may then
    run stale, which a lookup miss self-heals (the master re-ships the
    fire fully encoded), so the budget is a memory bound, never a
    correctness constraint.
    """

    __slots__ = (
        "max_bytes", "held_bytes", "hits", "misses", "evictions", "stored",
        "_entries",
    )

    def __init__(self, max_bytes: int = CACHE_BYTES_DEFAULT) -> None:
        self.max_bytes = max_bytes
        self.held_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.stored = 0
        #: bid → (payload, nbytes); dict order is the LRU order (oldest
        #: first — hits pop and re-insert).
        self._entries: dict[int, tuple[Any, int]] = {}

    def get(self, bid: int) -> Any:
        """The resident payload, or :data:`_CACHE_MISS`."""
        entry = self._entries.pop(bid, None)
        if entry is None:
            self.misses += 1
            return _CACHE_MISS
        self._entries[bid] = entry
        self.hits += 1
        return entry[0]

    def put(self, bid: int, value: Any) -> bool:
        """Make ``value`` resident under ``bid``; False if it cannot fit."""
        nbytes = payload_nbytes(value)
        if nbytes > self.max_bytes:
            return False
        old = self._entries.pop(bid, None)
        if old is not None:
            self.held_bytes -= old[1]
        entries = self._entries
        while self.held_bytes + nbytes > self.max_bytes and entries:
            oldest = next(iter(entries))
            _, evicted_nbytes = entries.pop(oldest)
            self.held_bytes -= evicted_nbytes
            self.evictions += 1
        entries[bid] = (value, nbytes)
        self.held_bytes += nbytes
        self.stored += 1
        return True

    def invalidate(self, bids: Any) -> None:
        """Drop every listed block (dead or mutated on the master)."""
        for bid in bids:
            entry = self._entries.pop(bid, None)
            if entry is not None:
                self.held_bytes -= entry[1]

    def stats(self) -> dict[str, int]:
        return {
            "resident_blocks": len(self._entries),
            "resident_bytes": self.held_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "stored": self.stored,
        }


def worker_main(
    worker_id: int,
    conn: Any,
    registry_ref: RegistryRef | None,
    shm_threshold: int,
    fused_chains: dict[str, FusedChain] | None = None,
    fault_spec: Any = None,
    fault_salt: int = 0,
    codegen_sources: dict[str, str] | None = None,
    cache_bytes: int = CACHE_BYTES_DEFAULT,
) -> None:
    """Body of one worker process: batches in, batches out, until None.

    ``conn`` is the worker's end of a duplex pipe owned exclusively by
    this process — ``(invalidations, batch)`` messages arrive on it,
    ``(worker_id, results)`` messages go back on it.  ``invalidations``
    is a list of block ids to drop from the resident cache before the
    batch runs (dead or mutated master blocks, piggybacked here so
    invalidation costs no extra IPC).  Each result is ``(call_id, ok,
    payload, t0, duration, cached)`` with ``t0`` a raw
    ``time.perf_counter`` stamp (CLOCK_MONOTONIC is process-shared, so
    the master can place worker spans on its own timeline) and ``cached``
    whether the worker kept its raw result resident under the
    master-assigned result block id.  ``ok`` is ``True`` (payload an
    :class:`EncodedValue`), ``False`` (payload an encoded exception), or
    ``"miss"`` — the structured cache-miss reply, payload the list of
    block ids this worker could not resolve; the master re-dispatches
    that fire with full encodings.

    A batch entry is either a plain call ``(call_id, op_name, enc_args,
    rbid)`` — answered by one single-result message as soon as it
    finishes — or a grouped entry ``("batch", op_name, [(call_id,
    enc_args, rbid), ...])``: N firings of one operator answered by *one*
    N-result message, executed through the operator's vectorized
    ``batch_fn`` when it has one and fault injection is off, and
    otherwise unrolled through the plain per-call loop (so injection
    decisions stay per firing).  ``rbid`` is the master-assigned block id
    the result should be cached under (``None`` outside affinity runs).

    Each element of ``enc_args`` is one of three wire forms:

    * a plain :class:`EncodedValue` — decoded fresh, never cached
      (non-block arguments and declared-``modifies`` positions);
    * ``("blk", bid, EncodedValue)`` — decoded, made resident in the
      :class:`BlockCache` under ``bid``, then used;
    * ``("ref", bid)`` — served from the resident cache; no pickle, no
      shared-memory segment crossed the wire.

    Full encodings are always decoded (consuming their pooled shm
    segments) *before* refs are resolved, so a cache miss never leaves a
    segment half-consumed — the master releases a missed fire's
    encodings exactly as it releases a completed one's.

    ``fused_chains`` maps fused super-node names to their recipes (plain
    picklable data); the worker composes each chain against its own
    registry on first use, so a dispatched fused body runs exactly like a
    registered operator.  ``codegen_sources`` (fused name → generated
    binder source, from :func:`~repro.runtime.operators.
    collect_codegen_sources`) upgrades those compositions: the worker
    compiles the shipped source and binds it against its *own* registry,
    so a dispatched fused body runs the same specialized code the master
    would — source text crosses the process boundary, never code objects.

    ``fault_spec`` (a picklable :class:`repro.faults.FaultSpec`) installs
    deterministic fault injection: the per-process injector is consulted
    *after* argument decoding and *before* the operator body, so a fault
    never leaves a fresh shared-memory segment half-consumed and a
    retried call always sees unmutated inputs.  ``fault_salt`` is the
    worker's incarnation number — respawned workers make *fresh* fault
    decisions, so a retried call cannot deterministically re-trigger the
    fault that killed its predecessor.
    """
    if registry_ref is not None:
        registry = registry_ref.load()
    elif _FORK_REGISTRY is not None:
        registry = _FORK_REGISTRY
    else:
        registry = default_registry()
    fused_chains = fused_chains or {}
    codegen_sources = codegen_sources or {}
    fused_specs: dict[str, Any] = {}
    injector = fault_spec.build(fault_salt) if fault_spec is not None else None
    cache = BlockCache(cache_bytes)

    def resolve_args(
        op_name: str, enc_args: list[Any]
    ) -> tuple[list[Any], list[int]]:
        """Decoded argument payloads plus the block ids that missed.

        Two passes: every full encoding is decoded first (consuming its
        shm segments and making ``("blk", ...)`` entries resident), then
        refs are served from the cache — which lets a later argument ref
        a block shipped earlier in the *same* message.
        """
        out: list[Any] = [None] * len(enc_args)
        refs: list[tuple[int, int]] = []
        for i, a in enumerate(enc_args):
            if type(a) is tuple:
                if a[0] == "blk":
                    value = decode_value(a[2])
                    cache.put(a[1], value)
                    out[i] = value
                else:  # ("ref", bid)
                    refs.append((i, a[1]))
            else:
                out[i] = decode_value(a)
        missing: list[int] = []
        for i, bid in refs:
            forced = injector is not None and injector.on_cache_lookup(
                op_name
            )
            value = _CACHE_MISS if forced else cache.get(bid)
            if value is _CACHE_MISS:
                missing.append(bid)
            else:
                out[i] = value
        return out, missing

    def resolve(op_name: str) -> Any:
        spec = fused_specs.get(op_name)
        if spec is None:
            chain = fused_chains.get(op_name)
            if chain is not None:
                spec = compose_fused(op_name, chain[0], chain[1], registry)
                source = codegen_sources.get(op_name)
                if source is not None:
                    spec = dc_replace(
                        spec,
                        fn=bind_codegen(
                            source, chain[0], registry, name=op_name
                        ),
                        batch_fn=bind_codegen_batch(
                            source, chain[0], registry, name=op_name
                        ),
                    )
                fused_specs[op_name] = spec
            else:
                spec = registry.get(op_name)
        return spec

    while True:
        try:
            message = conn.recv()
        except EOFError:  # master closed its end (or died): clean exit
            return
        if message is None:
            return
        invalidations, batch = message
        if invalidations:
            cache.invalidate(invalidations)
        for entry in batch:
            if entry[0] == "batch":
                # Grouped entry ("batch", op_name, [(call_id, enc_args,
                # rbid), ...]): N firings of one operator, one reply
                # message.  One message for N results concentrates the
                # mid-batch crash window, but a crashed vectorized group
                # is retried by the supervisor as plain singleton fires,
                # which restores the streamed-result salvage semantics.
                _, op_name, calls = entry
                spec = resolve(op_name)
                if spec.batch_fn is not None and injector is None:
                    t_start = time.perf_counter()
                    try:
                        resolved = [
                            resolve_args(op_name, enc_args)
                            for _, enc_args, _ in calls
                        ]
                        # Members whose refs missed get structured miss
                        # replies; the rest still run vectorized, so one
                        # stale residency entry does not forfeit the
                        # whole group's batching win.
                        results = [
                            (cid, "miss", missing, t_start, 0.0, False)
                            for (cid, _, _), (_, missing) in zip(
                                calls, resolved
                            )
                            if missing
                        ]
                        ready = [
                            (cid, rbid, args)
                            for (cid, _, rbid), (args, missing) in zip(
                                calls, resolved
                            )
                            if not missing
                        ]
                        if ready:
                            raws = list(
                                spec.batch_fn(
                                    [tuple(args) for _, _, args in ready]
                                )
                            )
                            if len(raws) != len(ready):
                                raise RuntimeFailure(
                                    f"batch form of operator {op_name!r} "
                                    f"returned {len(raws)} result(s) for "
                                    f"{len(ready)} firing(s)"
                                )
                            total = time.perf_counter() - t_start
                            # The vectorized kernel ran all N firings in
                            # one call; attribute each an equal share so
                            # master timelines stay additive.
                            per = total / len(ready)
                            for i, ((cid, rbid, _), raw) in enumerate(
                                zip(ready, raws)
                            ):
                                cached = (
                                    rbid is not None
                                    and wraps_as_block(raw)
                                    and cache.put(rbid, raw)
                                )
                                results.append(
                                    (
                                        cid,
                                        True,
                                        encode_value(raw, shm_threshold),
                                        t_start + i * per,
                                        per,
                                        cached,
                                    )
                                )
                    except BaseException as exc:  # noqa: BLE001
                        duration = time.perf_counter() - t_start
                        payload = _encode_exception(exc)
                        results = [
                            (cid, False, payload, t_start, duration, False)
                            for cid, _, _ in calls
                        ]
                    try:
                        conn.send((worker_id, results))
                    except BrokenPipeError:  # master gone
                        return
                    continue
                # No vectorized form (or fault injection active, which
                # is decided per firing): fall through to the per-call
                # loop so injection points and result streaming behave
                # exactly as unbatched dispatch.
                singles = [
                    (cid, op_name, enc_args, rbid)
                    for cid, enc_args, rbid in calls
                ]
            else:
                singles = [entry]
            for call_id, op_name, enc_args, rbid in singles:
                t0 = time.perf_counter()
                cached = False
                try:
                    spec = resolve(op_name)
                    args, missing = resolve_args(op_name, enc_args)
                    if missing:
                        # Structured cache-miss reply: every full
                        # encoding above was already decoded, so the
                        # master's segment bookkeeping proceeds as for a
                        # completed fire; it re-ships this one fully
                        # encoded.
                        ok: Any = "miss"
                        payload: Any = missing
                    else:
                        if injector is not None:
                            injector.on_call(op_name)
                        raw = spec.fn(*args)
                        payload = encode_value(raw, shm_threshold)
                        if rbid is not None and wraps_as_block(raw):
                            cached = cache.put(rbid, raw)
                        ok = True
                except BaseException as exc:  # noqa: BLE001 - to master
                    payload = _encode_exception(exc)
                    ok = False
                # Each result is shipped as soon as it exists, not at the
                # end of the batch: a result's fresh shm segments have no
                # owner until the master sees them, so holding finished
                # results while later batchmates run would leak those
                # segments if this process dies mid-batch (the supervisor
                # salvages the pipe's contents on a crash, but cannot
                # know the names of segments that were never sent).
                try:
                    conn.send(
                        (
                            worker_id,
                            [
                                (
                                    call_id,
                                    ok,
                                    payload,
                                    t0,
                                    time.perf_counter() - t0,
                                    cached,
                                )
                            ],
                        )
                    )
                except BrokenPipeError:  # master gone; nothing to report
                    return


class WorkerPool:
    """A persistent, supervisable pool of operator-executing processes.

    Every worker owns a duplex pipe to the master: the master sends
    batches down a worker's pipe (:meth:`submit_to`; the scheduler picks
    the least-loaded worker) and multiplexes all result pipes plus the
    process *sentinels* with :meth:`wait` — so a completed batch and a
    dead worker arrive through the same select call, and a SIGKILLed
    worker can never wedge a lock another worker needs.  A dead worker
    is replaced in place with :meth:`respawn`, which re-ships the same
    registry ref / fused chains / fault spec the original got.

    Use as a context manager — exit sends one shutdown sentinel per
    worker and joins them, escalating to ``terminate`` for stragglers.
    """

    def __init__(
        self,
        n_workers: int,
        registry: OperatorRegistry | None = None,
        registry_ref: RegistryRef | None = None,
        shm_threshold: int = SHM_THRESHOLD_DEFAULT,
        fused_chains: dict[str, FusedChain] | None = None,
        fault_spec: Any = None,
        codegen_sources: dict[str, str] | None = None,
        cache_bytes: int = CACHE_BYTES_DEFAULT,
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = n_workers
        self.registry_ref = registry_ref
        self.shm_threshold = shm_threshold
        self.cache_bytes = cache_bytes
        #: Reusable dispatch-argument segments.  Created (empty) before the
        #: workers fork so children never inherit arena mappings; the pool
        #: owns its teardown in :meth:`close`.
        self.arena = ShmArena()
        self._ctx = pick_context()
        if (
            self._ctx.get_start_method() != "fork"
            and registry_ref is None
            and registry is not None
            and registry.names() - default_registry().names()
        ):
            raise RuntimeFailure(
                "this platform cannot fork, so workers cannot inherit the "
                "operator registry; pass ProcessExecutor(registry_ref="
                "RegistryRef(module, attr, ...)) naming an importable "
                "registry factory"
            )
        self._registry = registry
        self._fused_chains = fused_chains
        self._fault_spec = fault_spec
        self._codegen_sources = codegen_sources
        #: Total workers replaced over the pool's lifetime.
        self.respawns = 0
        self.processes: list[Any] = [None] * n_workers
        #: Master-side pipe ends, indexed like :attr:`processes`.
        self.conns: list[Any] = [None] * n_workers
        for i in range(n_workers):
            self._spawn(i)

    def _spawn(self, i: int, fault_salt: int = 0) -> Any:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        global _FORK_REGISTRY
        _FORK_REGISTRY = self._registry
        try:
            p = self._ctx.Process(
                target=worker_main,
                args=(
                    i,
                    child_conn,
                    self.registry_ref,
                    self.shm_threshold,
                    self._fused_chains,
                    self._fault_spec,
                    fault_salt,
                    self._codegen_sources,
                    self.cache_bytes,
                ),
                daemon=True,
                name=f"delirium-proc-{i}",
            )
            p.start()
        finally:
            _FORK_REGISTRY = None
        child_conn.close()  # the worker holds the only live copy now
        self.processes[i] = p
        self.conns[i] = parent_conn
        return p

    def respawn(self, i: int) -> Any:
        """Replace worker ``i`` with a fresh process (same configuration).

        The old process is terminated if somehow still alive (a hung
        worker being put down), its pipe closed, and a new worker takes
        its slot.  Returns the new process.
        """
        old = self.processes[i]
        conn = self.conns[i]
        if conn is not None:
            conn.close()
        if old is not None:
            if old.is_alive():
                old.kill()
            old.join(timeout=5.0)
        self.respawns += 1
        return self._spawn(i, fault_salt=self.respawns)

    def submit_to(self, i: int, message: tuple[list[int], list[Any]]) -> None:
        """Send one ``(invalidations, batch)`` message to worker ``i``.

        Raises ``BrokenPipeError``/``OSError`` if the worker is already
        dead — callers treat that exactly like a crash-after-dispatch
        (the sentinel fires on the next :meth:`wait`).
        """
        self.conns[i].send(message)

    def wait(self, timeout: float | None = None) -> list[Any]:
        """Block until a result pipe is readable or a sentinel fires.

        Returns the ready objects from ``multiprocessing.connection.wait``
        — a mix of master-side pipe ends (use :meth:`worker_for_conn` /
        ``conn.recv()``) and process sentinels (a dead worker; always
        ready until the worker is respawned, so callers must resolve a
        crash before waiting again).  Empty on timeout.
        """
        from multiprocessing.connection import wait as _mp_wait

        handles: list[Any] = [c for c in self.conns if c is not None]
        handles.extend(
            p.sentinel for p in self.processes if p is not None
        )
        return _mp_wait(handles, timeout)

    def worker_for_conn(self, obj: Any) -> int | None:
        """Worker index owning this pipe end, or None for a sentinel."""
        for i, conn in enumerate(self.conns):
            if conn is obj:
                return i
        return None

    def worker_for_sentinel(self, obj: Any) -> int | None:
        """Worker index owning this process sentinel, or None."""
        for i, p in enumerate(self.processes):
            if p is not None and p.sentinel == obj:
                return i
        return None

    def close(self) -> None:
        for conn in self.conns:
            if conn is None:
                continue
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):  # worker already gone
                pass
        deadline = time.monotonic() + 5.0
        for p in self.processes:
            if p is not None:
                p.join(timeout=max(0.0, deadline - time.monotonic()))
        for p in self.processes:
            if p is not None and p.is_alive():
                p.terminate()
                p.join(timeout=1.0)
        for conn in self.conns:
            if conn is not None:
                conn.close()
        self.arena.close()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


@dataclass
class DispatchPolicy:
    """When does an operator body cross the process boundary?

    The best evidence is *measured* wall time: when ``measured_seconds``
    (from :func:`repro.machine.calibrate.calibrate_dispatch`) knows an
    operator, it is dispatched only when one firing costs at least
    ``min_dispatch_seconds`` — the observed per-call IPC round trip;
    anything cheaper runs faster in the master than it serializes.

    Unmeasured operators fall back to the static cost hint (ticks)
    against ``cost_threshold``; operators without a usable hint fall back
    further to a payload-size test (``nbytes_threshold`` over the summed
    argument sizes) — big data usually means big compute, and cheap glue
    on small scalars must never pay IPC.  Set ``cost_threshold=0.0`` to
    dispatch every operator (the determinism test harness does).

    The default ``cost_threshold`` corresponds to ~2 ms at the nominal
    10⁹ ticks/s machine scale, matching ``min_dispatch_seconds``: after
    operator fusion made individual firings cheap, the old 250k-tick
    (0.25 ms) bar dispatched operators that cost far less than the IPC
    they paid, which is exactly the regression the measured table fixes.
    """

    cost_threshold: float = 2_000_000.0
    nbytes_threshold: int = SHM_THRESHOLD_DEFAULT
    #: Operator names always kept in-process (glue the master can run
    #: faster than it can serialize).
    pinned_local: frozenset[str] = field(default_factory=frozenset)
    #: Measured wall seconds per firing, by operator name (including
    #: fused super-operator names) — see ``calibrate_dispatch``.
    measured_seconds: dict[str, float] | None = None
    #: Minimum measured per-firing cost that justifies the process
    #: boundary (~ one IPC round trip).
    min_dispatch_seconds: float = 0.002

    def should_dispatch(self, spec: Any, payloads: tuple[Any, ...]) -> bool:
        if spec.name in self.pinned_local:
            return False
        if self.measured_seconds is not None:
            seconds = self.measured_seconds.get(spec.name)
            if seconds is not None:
                return seconds >= self.min_dispatch_seconds
        cost = spec.try_cost_ticks(payloads)
        if cost is not None:
            return cost >= self.cost_threshold
        from .blocks import payload_nbytes

        return (
            sum(payload_nbytes(p) for p in payloads) >= self.nbytes_threshold
        )
