"""The coordination-graph interpreter core.

:class:`ExecutionState` implements the *semantics* of template-activation
execution — node firing rules, reference-counted copy-on-write, call-closure
expansion, conditional-arm expansion, tail-call continuation inheritance,
and activation recycling.  It deliberately contains no *policy*: executors
(sequential, threaded, simulated-machine) own the ready queue, the notion
of time, and processor placement, and drive the state through two calls:

* :meth:`start` — build the root activation, returning the initially ready
  tasks;
* :meth:`fire` — fire one ready task, returning the tasks it made ready.

For executors that overlap operator bodies (threads, worker processes),
``fire`` splits into a :meth:`begin_fire` / :meth:`complete_fire` pair:
``begin_fire`` resolves the operator spec, takes the node's inputs, and
makes the copy-on-write decisions, returning a :class:`PendingOp`;
the executor runs (or ships) the actual computation however it likes and
then calls ``complete_fire`` with the raw result to commit it, release
the input references, and collect the newly ready tasks.  All engine
bookkeeping stays in the calling thread; only the opaque sequential
computation happens elsewhere.

Any interleaving of ``fire`` calls that respects readiness produces the
same final result; that is the determinism guarantee of the coordination
model (section 8 of the paper) and the property the test suite hammers.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from time import perf_counter as _perf_counter
from typing import Any, Callable

import numpy as np

from ..errors import GraphError, OperatorError, RuntimeFailure
from ..graph.ir import GraphProgram, Node, NodeKind
from ..obs.events import (
    BufferRecycled,
    CowCopy,
    DonationApplied,
    EventBus,
    Expansion,
    OperatorsFused,
    OpFinished,
    OpStarted,
    TailExpansion,
    TaskEnqueued,
)
from .activation import Activation, ActivationPool
from . import blocks as _blocks
from .blocks import (
    BufferPool,
    DataBlock,
    release,
    retain,
    unwrap,
    wrap_payload,
)
from .operators import OperatorRegistry, OperatorSpec, node_spec
from .scheduler import Task
from .values import Closure, MultiValue, OperatorValue, is_truthy

_NO_RESULT = object()
_NO_PLAN = object()

#: Cross-run cache of inline fast-path plans and composed fused specs,
#: keyed by program identity (``GraphProgram`` is an eq-comparing
#: dataclass, hence unhashable — the id plus a weak self-reference gives
#: identity semantics without touching the class).  Plans depend only on
#: (registry, node) — both static for a compiled program — so repeated
#: runs of the same graph (benchmark repeats, server loops) skip the
#: rebuild.  Entries whose program or registry died are pruned on insert;
#: a different registry for the same program replaces the entry.
#: Purity-checking states bypass the cache (their plans are all ``None``
#: by design).
_PLAN_CACHES: dict[int, tuple] = {}

#: Hook type: executors may intercept the raw operator call (e.g. to drop a
#: lock around it, or to time it).  Receives the spec and ready payloads.
RunOp = Callable[[OperatorSpec, tuple[Any, ...]], Any]

#: Hook type: decide whether an operator body should run *remotely* (in a
#: worker process) rather than in this interpreter.  Receives the spec and
#: the raw argument payloads *before* any copy-on-write copies are made.
Classify = Callable[[OperatorSpec, tuple[Any, ...]], bool]


@dataclass(slots=True)
class PendingOp:
    """An operator firing suspended at the compute boundary.

    Produced by :meth:`ExecutionState.begin_fire`; every copy-on-write
    decision has already been made and recorded.  The executor runs
    ``spec.fn(*args)`` (locally or in a worker) and passes the raw result
    to :meth:`ExecutionState.complete_fire`.

    ``remote=True`` means the executor declared (via ``classify``) that
    the body will run in another process: the engine then *skips the
    physical copy-on-write copy* — serialization across the process
    boundary already isolates the worker's writes — while still counting
    the COW decision in the stats, so decision counters stay comparable
    across executors.
    """

    activation: Any
    node_id: int
    spec: OperatorSpec
    #: Payloads to call the operator with (post-COW unless ``remote``).
    args: tuple[Any, ...]
    #: Blocks aligned with ``args`` for result identity reuse (empty when
    #: ``remote`` — a worker result can never alias master memory).
    arg_blocks: list[DataBlock | None]
    #: The operator-argument edge values (for the purity check).
    op_inputs: list[Any]
    #: Every edge value to release on completion (includes the callee for
    #: CALL-of-operator firings).
    all_inputs: list[Any]
    fingerprints: list[tuple[int, object]]
    home: int
    remote: bool
    op_began: float | None = None
    #: Identity of the task this firing came from (``begin_fire`` stamps
    #: them) so executor-emitted :class:`~repro.obs.events.TaskFired`
    #: spans for operator bodies carry the same (seq, priority) as their
    #: :class:`~repro.obs.events.TaskEnqueued` — the join key the
    #: critical-path profiler reconstructs the causal DAG with.
    seq: int = -1
    priority: int = 0
    #: Input indices the donation pass proved are last uses
    #: (``node.donated``); ``None`` when the pass did not run or the node
    #: has no donated edges.
    donated: tuple[int, ...] | None = None
    #: Set by :meth:`ExecutionState.complete_fire` on commit.  A retried
    #: fire must never be committed twice — the second commit would
    #: double-release every input share and underflow the pools.
    committed: bool = False
    #: The wrapped value :meth:`complete_fire` delivered for a
    #: single-output firing (``None`` for multi-output fused untuples).
    #: The supervised executor reads it after commit to adopt a
    #: worker-cached result into the residency tracker — but only when it
    #: is a :class:`DataBlock` whose payload *is* the raw result, which
    #: proves the worker's cached copy and the master's block hold the
    #: same value.
    result_value: Any = None


@dataclass(slots=True)
class FireOutcome:
    """Result of :meth:`ExecutionState.begin_fire`.

    ``pending`` is ``None`` when the node completed entirely inside
    ``begin_fire`` (constants, packages, expansions...); otherwise the
    firing is suspended and must be finished with ``complete_fire``.
    """

    newly: list[Task]
    pending: PendingOp | None = None


class PurityViolationError(RuntimeFailure):
    """Debug mode caught an operator writing an argument it did not declare."""


@dataclass(slots=True)
class EngineStats:
    """Counters accumulated during one execution."""

    tasks_fired: int = 0
    ops_executed: int = 0
    #: Firings of fused super-nodes, and how many source-graph firings
    #: those saved (chain length minus one, absorbed untuples included).
    fused_fires: int = 0
    fused_ops_saved: int = 0
    cow_copies: int = 0
    in_place_writes: int = 0
    #: Copies the donation analysis discharged: donated *modifies* args
    #: handed over for in-place mutation, and defensive view copies skipped
    #: because the view's base block was a dying donated input.
    copies_avoided: int = 0
    bytes_copy_avoided: int = 0
    #: Donated edges whose block turned out shared at fire time (dynamic
    #: aliasing the static analysis cannot see); fell back to COW.
    donation_misses: int = 0
    #: COW copies written into pool-recycled buffers (``np.copyto``)
    #: instead of fresh allocations, and the bytes those reused.
    buffers_recycled: int = 0
    buffer_bytes_recycled: int = 0
    expansions: int = 0
    tail_expansions: int = 0
    #: Fault-tolerance counters (supervised executors; see
    #: :mod:`repro.runtime.supervise`).
    worker_crashes: int = 0
    worker_respawns: int = 0
    fires_retried: int = 0
    fires_timed_out: int = 0
    executor_degraded: int = 0
    shm_segments_reclaimed: int = 0
    #: Batched-execution counters (see the batched paths in
    #: :mod:`repro.runtime.executors` / :mod:`repro.runtime.supervise`):
    #: how many same-node groups were formed, how many firings rode in
    #: them, how many firings were dispatched to workers at all, and the
    #: raw IPC message traffic (both directions) — ``ipc_messages_sent +
    #: ipc_messages_received`` over ``dispatched_fires`` is the
    #: per-fire round-trip cost batching exists to amortize.
    fire_batches: int = 0
    batched_fires: int = 0
    dispatched_fires: int = 0
    ipc_messages_sent: int = 0
    ipc_messages_received: int = 0
    #: Locality counters (process executor with ``--affinity``; see
    #: :mod:`repro.runtime.supervise`): blocks made resident in a worker
    #: cache (shipped arguments + adopted results), inputs shipped as
    #: ``("ref", bid)`` tokens instead of full encodings, ref fires the
    #: worker could not serve (re-dispatched with full encodings), bytes
    #: of argument encodings actually produced, and bytes a full encoding
    #: would have cost where a ref sufficed.
    blocks_cached: int = 0
    blocks_ref_shipped: int = 0
    affinity_misses: int = 0
    encode_bytes: int = 0
    encode_bytes_avoided: int = 0
    #: Wall seconds spent inside operator bodies, accumulated only when
    #: the state runs with ``profile_ops=True`` — the low-overhead probe
    #: the wallclock benchmark uses for its phase split (two bare
    #: ``perf_counter`` reads per firing, no event objects).
    op_body_seconds: float = 0.0
    activation_stats: dict[str, int] = field(default_factory=dict)
    #: Buffer-pool snapshot (see :class:`~repro.runtime.blocks.BufferPool`).
    pool_stats: dict[str, int] = field(default_factory=dict)
    #: Copy-on-write copies attributed to the operator that forced them —
    #: the profiling view a Delirium programmer uses to find the large
    #: structure that should have been split (section 2.1's advice).
    copies_by_operator: dict[str, int] = field(default_factory=dict)
    #: Bytes copied by COW, by operator (same attribution).
    copy_bytes_by_operator: dict[str, int] = field(default_factory=dict)


def _payload_of(value: Any) -> Any:
    """Convert an edge value to what an operator receives."""
    if isinstance(value, DataBlock):
        return value.payload
    if isinstance(value, MultiValue):
        return tuple(_payload_of(v) for v in value.items)
    return value


def _may_alias(result: Any, payload: np.ndarray) -> bool:
    """Could ``result`` reach ``payload``'s memory?  Conservative.

    Arrays are walked down their ``base`` chain; tuples recurse; atomic
    immutables cannot alias.  Anything else is an opaque application
    object that may hold a view we cannot see — assume it does.
    """
    if result is None or isinstance(
        result, (int, float, complex, bool, str, bytes, np.integer,
                 np.floating, np.bool_)
    ):
        return False
    if isinstance(result, np.ndarray):
        base: Any = result
        while isinstance(base, np.ndarray):
            if base is payload:
                return True
            base = base.base
        return False
    if isinstance(result, tuple):
        return any(_may_alias(x, payload) for x in result)
    return True


def _fingerprint(payload: Any) -> object:
    """Cheap content fingerprint for purity checking (debug mode only)."""
    if isinstance(payload, np.ndarray):
        return (payload.shape, str(payload.dtype), hash(payload.tobytes()))
    try:
        return hash(payload)
    except TypeError:
        return hash(repr(payload))


class ExecutionState:
    """Mutable state of one program execution.

    Parameters
    ----------
    program:
        The compiled coordination graphs.
    registry:
        Operator registry resolving ``OP`` nodes.
    check_purity:
        Debug mode: fingerprint read-only block arguments around every
        operator call and raise :class:`PurityViolationError` when an
        operator mutates an argument it did not declare in ``modifies``.
        Costly; meant for tests and development, like the original
        system's uniprocessor debugging story.
    bus:
        Optional :class:`~repro.obs.events.EventBus`.  Kept only when it
        has subscribers at construction time, so an idle bus costs the
        hot path a single ``is not None`` check per emit site.
    """

    def __init__(
        self,
        program: GraphProgram,
        registry: OperatorRegistry,
        check_purity: bool = False,
        bus: EventBus | None = None,
        profile_ops: bool = False,
    ) -> None:
        self.program = program
        self.registry = registry
        self.check_purity = check_purity
        #: When set, bracket every operator body with two bare
        #: ``perf_counter`` reads and accumulate into
        #: ``stats.op_body_seconds`` — the benchmark phase-split probe,
        #: orders of magnitude cheaper than per-firing event objects.
        self.profile_ops = profile_ops
        self.bus = bus if (bus is not None and bus.active) else None
        self.pool = ActivationPool(bus=self.bus)
        #: Free lists of dead donated buffers for COW-copy reuse; touched
        #: only under the engine's serialization discipline.
        self.buffers = BufferPool()
        #: Residency tracker installed by the supervised process executor
        #: when an affinity policy is active; consulted (via ``block.bid``
        #: guards, so the sequential hot path pays one attribute load)
        #: before any in-place write so worker-resident copies of the
        #: mutated block are invalidated before the payload changes.
        self.locality: Any = None
        self.stats = EngineStats()
        self._final: Any = _NO_RESULT
        self._task_seq = 0
        # Outstanding non-tail children and in-flight operator firings
        # live directly on each activation (``pend_children`` /
        # ``pend_ops``) — the recycling guard reads them after every
        # firing, so they must be attribute loads, not dict probes.
        #: Composed specs for fused super-nodes, by fused node name (the
        #: name encodes the full recipe, so one entry serves every
        #: structurally identical fused node across templates), and inline
        #: fast-path plans for pure ``OP`` nodes, keyed by node object
        #: identity (nodes are owned by the static program, so ids are
        #: stable for as long as the program — which also owns the cache
        #: entry — is alive).  ``None`` marks a node that must take the
        #: generic begin/complete path.  Both are shared across states of
        #: the same (program, registry) pair via :data:`_PLAN_CACHES`;
        #: entries are deterministic functions of that pair, so the worst
        #: concurrent case is two states computing the same value.
        if check_purity:
            self._fused_specs: dict[str, OperatorSpec] = {}
            self._op_plans: dict[int, tuple | None] = {}
        else:
            cached = _PLAN_CACHES.get(id(program))
            if (
                cached is not None
                and cached[0]() is program
                and cached[1]() is registry
            ):
                self._op_plans = cached[2]
                self._fused_specs = cached[3]
            else:
                self._op_plans = {}
                self._fused_specs = {}
                for key in [
                    k for k, v in _PLAN_CACHES.items() if v[0]() is None
                ]:
                    del _PLAN_CACHES[key]
                _PLAN_CACHES[id(program)] = (
                    weakref.ref(program),
                    weakref.ref(registry),
                    self._op_plans,
                    self._fused_specs,
                )
        # Subscriber-set snapshot for the per-firing emit sites (the same
        # discipline executors use for TaskFired): ``wants`` resolution
        # is cheap but not free, and these are consulted for every task.
        # Subscribe before constructing the state, as every executor and
        # run context does.
        bus = self.bus
        self._wants_enqueued = bus is not None and bus.wants(TaskEnqueued)
        self._wants_op_started = bus is not None and bus.wants(OpStarted)
        self._wants_op_finished = bus is not None and bus.wants(OpFinished)
        self._wants_donation = bus is not None and bus.wants(DonationApplied)
        self._wants_cow = bus is not None and bus.wants(CowCopy)
        self._wants_expansion = bus is not None and bus.wants(Expansion)
        self._wants_tail_expansion = bus is not None and bus.wants(
            TailExpansion
        )

    # ------------------------------------------------------------------
    # Public interface
    # ------------------------------------------------------------------
    def start(self, args: tuple[Any, ...] = ()) -> list[Task]:
        """Create the root activation of the entry template."""
        template = self.program.entry_template()
        if template.captures:
            raise GraphError(
                f"entry template {template.name!r} has captures; it cannot "
                "be an entry point"
            )
        if len(args) != len(template.params):
            raise RuntimeFailure(
                f"entry {template.name!r} takes {len(template.params)} "
                f"argument(s), got {len(args)}"
            )
        bus = self.bus
        if bus is not None:
            fused_nodes = 0
            ops_absorbed = 0
            for tpl in self.program.templates.values():
                for n in tpl.nodes:
                    if n.fused is not None:
                        steps, untuple_n = n.fused
                        fused_nodes += 1
                        ops_absorbed += len(steps) + (1 if untuple_n else 0)
            if fused_nodes:
                bus.emit(OperatorsFused(bus.now(), fused_nodes, ops_absorbed))
        root = self.pool.acquire(template)
        root.continuation = None
        newly: list[Task] = [
            self._task(root, nid) for nid in template.initial_ready
        ]
        for i, a in enumerate(args):
            self._deliver_output(root, i, 0, wrap_payload(a), 0, newly)
        return newly

    def fire(self, task: Task, run_op: RunOp | None = None, home: int = -1) -> list[Task]:
        """Fire one ready task to completion; return the newly ready tasks.

        Convenience wrapper over :meth:`begin_fire` / :meth:`complete_fire`
        that runs any operator body inline (optionally through ``run_op``).
        Pure ``OP`` nodes with no copy-on-write or donation concerns take
        a single-pass inline path that skips the :class:`PendingOp`
        suspension machinery entirely; ``run_op`` (fault injection,
        timing hooks) forces the generic path so interception still sees
        every operator call.
        """
        if run_op is None:
            act = task.activation
            node = act.template.nodes[task.node_id]
            kind = node.kind
            if kind is NodeKind.OP:
                key = id(node)
                plan = self._op_plans.get(key, _NO_PLAN)
                if plan is _NO_PLAN:
                    plan = self._build_op_plan(node)
                    self._op_plans[key] = plan
                if plan is not None:
                    return self._fire_op_inline(task, act, node, plan, home)
            elif kind is NodeKind.IF:
                # Direct dispatch for the other hot kinds, skipping the
                # generic begin_fire framing (FireOutcome allocation and
                # the full kind ladder).  Bookkeeping mirrors begin_fire.
                act.fired += 1
                self.stats.tasks_fired += 1
                newly: list[Task] = []
                self._fire_if(act, task.node_id, node, newly)
                self._maybe_free(act)
                return newly
            elif kind is NodeKind.CONST:
                act.fired += 1
                self.stats.tasks_fired += 1
                newly = []
                self._deliver_output(act, task.node_id, 0, node.value, 0, newly)
                self._maybe_free(act)
                return newly
            elif kind is NodeKind.CALL:
                act.fired += 1
                self.stats.tasks_fired += 1
                newly = []
                pending = self._fire_call(
                    act, task.node_id, node, newly, home, None
                )
                if pending is None:
                    self._maybe_free(act)
                    return newly
                pending.seq = task.seq
                pending.priority = task.priority
                spec = pending.spec
                try:
                    if self.profile_ops:
                        t_body = _perf_counter()
                        raw_result = spec.fn(*pending.args)
                        self.stats.op_body_seconds += (
                            _perf_counter() - t_body
                        )
                    else:
                        raw_result = spec.fn(*pending.args)
                except Exception as exc:  # noqa: BLE001 - wrapped, re-raised
                    raise OperatorError(
                        spec.name, exc, node_id=pending.node_id
                    ) from exc
                newly.extend(self.complete_fire(pending, raw_result))
                return newly
        outcome = self.begin_fire(task, home=home)
        pending = outcome.pending
        if pending is None:
            return outcome.newly
        spec = pending.spec
        try:
            if run_op is not None:
                raw_result = run_op(spec, pending.args)
            elif self.profile_ops:
                t_body = _perf_counter()
                raw_result = spec.fn(*pending.args)
                self.stats.op_body_seconds += _perf_counter() - t_body
            else:
                raw_result = spec.fn(*pending.args)
        except OperatorError:
            raise  # already wrapped (e.g. by a retrying run_op)
        except Exception as exc:  # noqa: BLE001 - wrapped and re-raised
            raise OperatorError(spec.name, exc, node_id=pending.node_id) from exc
        newly = outcome.newly
        newly.extend(self.complete_fire(pending, raw_result))
        return newly

    def _build_op_plan(self, node: Node) -> tuple | None:
        """Precompute the inline fast-path plan for one ``OP`` node.

        Returns ``None`` when the node needs the generic begin/complete
        path: purity checking (fingerprint bookkeeping) or a static arity
        mismatch (the generic path raises the canonical error).
        Everything here is a per-node constant, so the decision is made
        once and cached.
        """
        if self.check_purity:
            return None
        spec = node_spec(self.registry, node, self._fused_specs)
        if spec.arity is not None and spec.arity != len(node.inputs):
            return None
        fused = node.fused
        if fused is not None:
            untuple_n = fused[1]
            n_source_ops = len(fused[0]) + (1 if untuple_n else 0)
        else:
            untuple_n = 0
            n_source_ops = 1
        donated = node.donated if node.donated is not None else ()
        modifies = spec.modifies
        if modifies:
            # Per-argument action codes, folding the two set-membership
            # probes (``i in modifies`` / ``i in donated``) into one tuple
            # index: 0 = read-only, 1 = modified + donated, 2 = modified.
            arg_codes: tuple[int, ...] | None = tuple(
                (1 if i in donated else 2) if i in modifies else 0
                for i in range(len(node.inputs))
            )
        else:
            arg_codes = None
        return (
            spec,
            spec.fn,
            untuple_n,
            n_source_ops,
            fused is not None,
            modifies,
            donated,
            arg_codes,
        )

    def _fire_op_inline(
        self,
        task: Task,
        act: Activation,
        node: Node,
        plan: tuple,
        home: int,
    ) -> list[Task]:
        """One pure ``OP`` firing, begun and committed in a single pass.

        Semantically identical to ``begin_fire`` + ``complete_fire`` for
        the shapes :meth:`_build_op_plan` admits — same stats, same event
        order, same error texts, same wrap/deliver/release discipline —
        minus the :class:`PendingOp` suspension a synchronous firing never
        needs.  ``OpStarted``/``OpFinished`` bracket only the operator
        body, so generated codegen frames attribute to ``operator_body``
        in the critical-path profile, keeping the reconciliation bound.
        """
        node_id = task.node_id
        act.fired += 1
        stats = self.stats
        stats.tasks_fired += 1
        stats.ops_executed += 1
        (
            spec,
            fn,
            untuple_n,
            n_source_ops,
            is_fused,
            modifies,
            donated,
            arg_codes,
        ) = plan
        if is_fused:
            stats.fused_fires += 1
            stats.fused_ops_saved += n_source_ops - 1
        bus = self.bus
        # The live slots row, not a copy: the activation is pinned for the
        # duration of this call, and a node fires exactly once, so nothing
        # can write the row while we hold it (take_inputs adds a readiness
        # assert and is kept for the generic path).
        inputs = act.slots[node_id]
        args: list[Any] = []
        arg_blocks: list[DataBlock | None] = []
        if arg_codes is None:
            for v in inputs:
                if type(v) is DataBlock:
                    args.append(v.payload)
                    arg_blocks.append(v)
                else:
                    args.append(_payload_of(v))
                    arg_blocks.append(None)
        else:
            # Mirror of the _begin_operator argument loop for the local,
            # non-purity-checked case; any semantic change there must be
            # made here too.
            for i, v in enumerate(inputs):
                code = arg_codes[i]
                if type(v) is DataBlock:
                    if code:
                        if v.rc == 1:
                            stats.in_place_writes += 1
                            if v.bid is not None:
                                # Same invalidate-before-write discipline
                                # as _begin_operator's modifies branch:
                                # this local single-pass fire mutates the
                                # payload workers may hold resident.
                                if self.locality is not None:
                                    self.locality.forget(v)
                                v.bid = None
                            if code == 1:
                                stats.copies_avoided += 1
                                stats.bytes_copy_avoided += v.nbytes
                                if self._wants_donation:
                                    bus.emit(
                                        DonationApplied(
                                            bus.now(), spec.name, v.nbytes
                                        )
                                    )
                            args.append(v.payload)
                            arg_blocks.append(v)
                        else:
                            if code == 1:
                                stats.donation_misses += 1
                            stats.cow_copies += 1
                            stats.copies_by_operator[spec.name] = (
                                stats.copies_by_operator.get(spec.name, 0) + 1
                            )
                            stats.copy_bytes_by_operator[spec.name] = (
                                stats.copy_bytes_by_operator.get(spec.name, 0)
                                + v.nbytes
                            )
                            if self._wants_cow:
                                bus.emit(CowCopy(bus.now(), spec.name, v.nbytes))
                            fresh = self._cow_copy(v, home, spec.name)
                            args.append(fresh.payload)
                            arg_blocks.append(fresh)
                    else:
                        args.append(v.payload)
                        arg_blocks.append(v)
                else:
                    if code and isinstance(v, MultiValue):
                        raise RuntimeFailure(
                            f"operator {spec.name!r} declares it modifies "
                            f"argument {i}, which is a multiple-value "
                            "package; split the package and pass the parts "
                            "instead"
                        )
                    args.append(_payload_of(v))
                    arg_blocks.append(None)
        op_began: float | None = None
        wants_finished = self._wants_op_finished
        if bus is not None:
            now = bus.now
            if wants_finished or self._wants_op_started:
                op_began = now()
            if self._wants_op_started:
                bus.emit(OpStarted(op_began, spec.name, n_source_ops))
        if self.profile_ops:
            t_body = _perf_counter()
            try:
                raw_result = fn(*args)
            except Exception as exc:  # noqa: BLE001 - wrapped and re-raised
                raise OperatorError(spec.name, exc, node_id=node_id) from exc
            stats.op_body_seconds += _perf_counter() - t_body
        else:
            try:
                raw_result = fn(*args)
            except Exception as exc:  # noqa: BLE001 - wrapped and re-raised
                raise OperatorError(spec.name, exc, node_id=node_id) from exc
        if wants_finished:
            op_ended = now()
            bus.emit(OpFinished(op_ended, spec.name, op_ended - op_began))
        # Pin the activation across delivery exactly as a pending op
        # would: a delivered result may mark it done mid-loop, and the
        # pin keeps the recycling check from freeing it under our feet.
        act.pend_ops += 1
        newly: list[Task] = []
        # Inlined _deliver_output, specialized for carried_share == 0 and
        # the hook-free retain fast case; the result port falls back to
        # _handle_result exactly as the generic delivery does.
        template = act.template
        consumers_by_out = template.consumers[node_id]
        result_node = template.result_node
        result_out = template.result_out
        slots = act.slots
        missing = act.missing
        priorities = template.priorities
        hook = _blocks._BLOCK_HOOK
        wants_enqueued = self._wants_enqueued
        if untuple_n:
            if not isinstance(raw_result, tuple):
                raise RuntimeFailure(
                    f"cannot decompose non-package value {raw_result!r} "
                    f"(fused node {node.label!r} in {act.template.name!r})"
                )
            if len(raw_result) != untuple_n:
                raise RuntimeFailure(
                    f"package of {len(raw_result)} value(s) decomposed into "
                    f"{untuple_n} name(s) in {act.template.name!r}"
                )
            outputs = enumerate(raw_result)
        else:
            outputs = ((0, raw_result),)
        for out, element in outputs:
            # Inline _wrap_result's two dominant shapes — the merging
            # idiom (the operator returned one of its input payloads,
            # keeping that block's identity) and a fresh opaque result.
            # Tuples (→ MultiValue) and ndarray results (input-view
            # aliasing check) still take the full path.
            if isinstance(element, (tuple, np.ndarray)):
                value = self._wrap_result(element, arg_blocks, home, donated)
            else:
                for b in arg_blocks:
                    if b is not None and b.payload is element:
                        if home >= 0:
                            b.home = home
                        value = b
                        break
                else:
                    value = wrap_payload(element, home)
            consumers = consumers_by_out[out]
            is_result = result_node == node_id and result_out == out
            shares = len(consumers) + 1 if is_result else len(consumers)
            if shares:
                if type(value) is DataBlock and hook is None:
                    value.rc += shares
                else:
                    retain(value, shares)
            if wants_enqueued:
                for dest, idx in consumers:
                    slots[dest][idx] = value
                    left = missing[dest] - 1
                    missing[dest] = left
                    if left == 0:
                        newly.append(self._task(act, dest))
            else:
                seq = self._task_seq
                for dest, idx in consumers:
                    slots[dest][idx] = value
                    left = missing[dest] - 1
                    missing[dest] = left
                    if left == 0:
                        seq += 1
                        newly.append(Task(act, dest, priorities[dest], seq))
                self._task_seq = seq
            if is_result:
                self._handle_result(act, value, newly)
        for v in inputs:
            # Inline ``release`` for bare blocks with no hook attached;
            # the slow call keeps the canonical negative-rc error.
            if type(v) is DataBlock and hook is None and v.rc > 0:
                v.rc -= 1
            else:
                release(v, 1)
        if donated:
            # After the releases, exactly like complete_fire: a donated
            # input that just died (rc 0) can hand its buffer to the pool
            # unless the result may alias it.
            for i in donated:
                if i >= len(inputs):
                    continue
                v = inputs[i]
                if (
                    isinstance(v, DataBlock)
                    and v.rc == 0
                    and isinstance(v.payload, np.ndarray)
                    and not _may_alias(raw_result, v.payload)
                ):
                    self.buffers.put(v.payload)
        act.pend_ops -= 1
        # Inlined _maybe_free.
        if (
            act.result_done
            and act.fired >= act.fireable
            and act.pend_children == 0
            and act.pend_ops == 0
        ):
            act.result_done = False
            self.pool.release(act)
        return newly

    def begin_fire(
        self, task: Task, home: int = -1, classify: Classify | None = None
    ) -> FireOutcome:
        """Fire one ready task up to (but not through) any operator body.

        Non-operator nodes complete entirely here.  ``OP`` nodes (and
        ``CALL`` nodes whose callee is an operator value) stop at the
        compute boundary and come back as a :class:`PendingOp`; the
        executor must finish them with :meth:`complete_fire`.  ``classify``
        (see :data:`Classify`) marks a pending operator as *remote*, which
        suppresses the physical copy-on-write copy (the process boundary
        does the isolating).
        """
        act = task.activation
        node_id = task.node_id
        node: Node = act.template.nodes[node_id]
        act.fired += 1
        self.stats.tasks_fired += 1
        newly: list[Task] = []
        kind = node.kind

        if kind is NodeKind.CONST:
            self._deliver_output(act, node_id, 0, node.value, 0, newly)
        elif kind is NodeKind.OPREF:
            self._deliver_output(act, node_id, 0, OperatorValue(node.name), 0, newly)
        elif kind is NodeKind.TUPLE:
            inputs = act.take_inputs(node_id)
            mv = MultiValue(tuple(inputs))
            self._deliver_output(act, node_id, 0, mv, 0, newly)
            release(mv, 1)  # drop the input slots' shares
        elif kind is NodeKind.UNTUPLE:
            value = act.take_inputs(node_id)[0]
            if not isinstance(value, MultiValue):
                raise RuntimeFailure(
                    f"cannot decompose non-package value {value!r} "
                    f"(node {node.label!r} in {act.template.name!r})"
                )
            if len(value) != node.n_outputs:
                raise RuntimeFailure(
                    f"package of {len(value)} value(s) decomposed into "
                    f"{node.n_outputs} name(s) in {act.template.name!r}"
                )
            for i, element in enumerate(value.items):
                self._deliver_output(act, node_id, i, element, 0, newly)
            release(value, 1)
        elif kind is NodeKind.CLOSURE:
            cells = tuple(act.take_inputs(node_id))
            template = self.program.template(node.template)
            if len(cells) != len(template.captures):
                raise GraphError(
                    f"closure over {template.name!r}: {len(cells)} cell(s) "
                    f"for {len(template.captures)} capture(s)"
                )
            closure = Closure(template, cells).tie_self()
            # Cells keep the input slots' shares as permanent pins: a
            # captured block is always treated as shared (conservative,
            # documented in blocks.py).
            self._deliver_output(act, node_id, 0, closure, 0, newly)
        elif kind is NodeKind.OP:
            inputs = act.take_inputs(node_id)
            spec = node_spec(self.registry, node, self._fused_specs)
            pending = self._begin_operator(
                act, node_id, spec, list(inputs), list(inputs), home, classify,
                donated=node.donated,
            )
            pending.seq = task.seq
            pending.priority = task.priority
            return FireOutcome(newly, pending)
        elif kind is NodeKind.CALL:
            pending = self._fire_call(act, node_id, node, newly, home, classify)
            if pending is not None:
                pending.seq = task.seq
                pending.priority = task.priority
                return FireOutcome(newly, pending)
        elif kind is NodeKind.IF:
            self._fire_if(act, node_id, node, newly)
        else:  # pragma: no cover - placeholders never reach the queue
            raise GraphError(f"cannot fire node of kind {kind}")

        self._maybe_free(act)
        return FireOutcome(newly)

    def begin_fires(
        self,
        tasks: list[Task],
        home: int = -1,
        classify: Classify | None = None,
    ) -> list[FireOutcome]:
        """Fire a batch of ready tasks up to the compute boundary.

        The plural form of :meth:`begin_fire`, in order: batching changes
        *when* operator bodies run, never the order single-assignment
        state observes the begins in.
        """
        return [self.begin_fire(task, home, classify) for task in tasks]

    def complete_fires(
        self,
        pairs: list[tuple[PendingOp, Any]],
        op_seconds: float | None = None,
    ) -> list[Task]:
        """Commit a batch of finished firings in master-assigned order.

        ``pairs`` is ``(pending, raw_result)`` per firing; commits happen
        by ascending ``pending.seq`` — the sequence the master assigned
        when the fires were begun — so a batch commits exactly the tasks,
        in exactly the order, the one-at-a-time path would have.
        ``op_seconds`` (typically the batch's per-fire share) is passed
        through to every :meth:`complete_fire`.
        """
        newly: list[Task] = []
        for pending, raw in sorted(pairs, key=lambda p: p[0].seq):
            newly.extend(self.complete_fire(pending, raw, op_seconds))
        return newly

    def complete_fire(
        self,
        pending: PendingOp,
        raw_result: Any,
        op_seconds: float | None = None,
    ) -> list[Task]:
        """Commit a suspended operator firing; return the newly ready tasks.

        ``raw_result`` is whatever the operator function returned (in this
        process or another).  Exactly one ``complete_fire`` must follow
        every pending ``begin_fire``; an abandoned pending op leaves its
        activation pinned, which the stall report will point at.

        ``op_seconds``, when given, overrides the duration reported on the
        :class:`~repro.obs.events.OpFinished` event.  The process executor
        passes the worker-measured body time here: without it the default
        (commit time minus ``op_began``) would report the dispatch→commit
        round trip, not the operator, for every remote firing.
        """
        act = pending.activation
        spec = pending.spec
        if pending.committed:
            raise RuntimeFailure(
                f"pending fire of {spec.name!r} (node {pending.node_id}) "
                "committed twice — a retry path delivered the same firing "
                "to complete_fire() more than once"
            )
        pending.committed = True
        bus = self.bus
        if self._wants_op_finished:
            op_ended = bus.now()
            if op_seconds is None:
                began = (
                    pending.op_began if pending.op_began is not None else op_ended
                )
                op_seconds = op_ended - began
            bus.emit(OpFinished(op_ended, spec.name, op_seconds))
        if self.check_purity and not pending.remote:
            for i, fp in pending.fingerprints:
                block = pending.op_inputs[i]
                assert isinstance(block, DataBlock)
                if _fingerprint(block.payload) != fp:
                    raise PurityViolationError(
                        f"operator {spec.name!r} modified argument {i} "
                        "without declaring it in modifies=(...)"
                    )
        newly: list[Task] = []
        node = act.template.nodes[pending.node_id]
        donated = pending.donated if pending.donated is not None else ()
        fused = node.fused
        if fused is not None and fused[1]:
            # Fused chain ending in an absorbed untuple: the final step's
            # raw tuple is delivered element-by-element to this node's
            # output ports, exactly as the standalone UNTUPLE would have
            # delivered the elements of the MultiValue it unpacked.
            untuple_n = fused[1]
            if not isinstance(raw_result, tuple):
                raise RuntimeFailure(
                    f"cannot decompose non-package value {raw_result!r} "
                    f"(fused node {node.label!r} in {act.template.name!r})"
                )
            if len(raw_result) != untuple_n:
                raise RuntimeFailure(
                    f"package of {len(raw_result)} value(s) decomposed into "
                    f"{untuple_n} name(s) in {act.template.name!r}"
                )
            for i, element in enumerate(raw_result):
                value = self._wrap_result(
                    element, pending.arg_blocks, pending.home, donated
                )
                self._deliver_output(act, pending.node_id, i, value, 0, newly)
        else:
            result = self._wrap_result(
                raw_result, pending.arg_blocks, pending.home, donated
            )
            pending.result_value = result
            self._deliver_output(act, pending.node_id, 0, result, 0, newly)
        for v in pending.all_inputs:
            release(v, 1)
        if donated:
            self._recycle_dead_inputs(pending, raw_result)
        act.pend_ops -= 1
        self._maybe_free(act)
        return newly

    @property
    def finished(self) -> bool:
        return self._final is not _NO_RESULT

    def result(self) -> Any:
        """The program result, unwrapped for the API boundary."""
        if self._final is _NO_RESULT:
            raise RuntimeFailure("program has not produced a result")
        return unwrap(self._final)

    def snapshot_stats(self) -> EngineStats:
        self.stats.activation_stats = self.pool.stats()
        self.stats.pool_stats = self.buffers.stats()
        return self.stats

    def snapshot_state(self) -> dict[str, Any]:
        """Point-in-time engine state for the flight recorder: cheap,
        JSON-ready, and safe to call mid-run (including from a fault
        path, when some invariants may already be broken)."""
        return {
            "tasks_fired": self.stats.tasks_fired,
            "ops_executed": self.stats.ops_executed,
            "live_activations": self.pool.live,
            "in_flight_ops": sum(a.pend_ops for a in self.pool.live_set),
            "finished": self.finished,
            "activation_stats": self.pool.stats(),
            "buffer_pool": self.buffers.stats(),
        }

    def stall_report(self, limit: int = 8) -> str:
        """Describe what is stuck when execution stalls without a result.

        Lists live activations with their unfired nodes and which inputs
        those nodes still await — the first thing to read when a
        hand-built graph (or an engine bug) deadlocks.
        """
        in_flight = sum(a.pend_ops for a in self.pool.live_set)
        lines: list[str] = [
            f"{self.pool.live} live activation(s) at stall"
            + (f" ({in_flight} operator firing(s) never completed)"
               if in_flight else "")
            + ":"
        ]
        for act in sorted(self.pool.live_set, key=lambda a: a.aid)[:limit]:
            lines.append(
                f"  #{act.aid} {act.template.name}: fired "
                f"{act.fired}/{act.fireable_nodes()}, "
                f"result_done={act.result_done}"
            )
            for node_id, missing in enumerate(act.missing):
                node = act.template.nodes[node_id]
                if missing > 0 and node.kind not in (
                    NodeKind.PARAM,
                    NodeKind.CAPTURE,
                ):
                    lines.append(
                        f"    node {node_id} ({node.label or node.kind.value})"
                        f" awaits {missing} input(s)"
                    )
        if self.pool.live > limit:
            lines.append(f"  ... and {self.pool.live - limit} more")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Node semantics
    # ------------------------------------------------------------------
    def _task(self, act: Activation, node_id: int) -> Task:
        template = act.template
        # Priorities are precomputed per node at template finalize time;
        # the hot path never touches the Node object.
        priority = template.priorities[node_id]
        self._task_seq += 1
        bus = self.bus
        if self._wants_enqueued:
            node = template.nodes[node_id]
            bus.emit(
                TaskEnqueued(
                    bus.now(),
                    node.label,
                    node.kind.value,
                    priority,
                    act.template.name,
                    act.aid,
                    node_id,
                    self._task_seq,
                )
            )
        return Task(act, node_id, priority, self._task_seq)

    def _deliver_output(
        self,
        act: Activation,
        node_id: int,
        out: int,
        value: Any,
        carried_share: int,
        newly: list[Task],
    ) -> None:
        template = act.template
        consumers = template.consumers[node_id][out]
        is_result = template.result_node == node_id and template.result_out == out
        shares = len(consumers) + 1 if is_result else len(consumers)
        if shares:
            # Inline ``retain`` for the dominant shape — a bare block with
            # no ``observe_blocks`` hook attached; packages, unwrapped
            # values, and hooked runs take the full call.
            if type(value) is DataBlock and _blocks._BLOCK_HOOK is None:
                value.rc += shares
            else:
                retain(value, shares)
        if carried_share:
            release(value, carried_share)
        slots = act.slots
        missing = act.missing
        wants_enqueued = self._wants_enqueued
        priorities = template.priorities
        for dest, idx in consumers:
            slots[dest][idx] = value
            left = missing[dest] - 1
            missing[dest] = left
            if left == 0:
                if wants_enqueued:
                    newly.append(self._task(act, dest))
                else:
                    seq = self._task_seq + 1
                    self._task_seq = seq
                    newly.append(Task(act, dest, priorities[dest], seq))
        if is_result:
            self._handle_result(act, value, newly)

    def _deliver_values(
        self,
        act: Activation,
        first: int,
        values: list[Any],
        carried_share: int,
        newly: list[Task],
    ) -> None:
        """Deliver ``values`` to consecutive placeholder nodes of ``act``.

        Fused form of one :meth:`_deliver_output` call per value, used by
        :meth:`_expand` for params and captures: the per-activation
        lookups are hoisted across the batch, and the retain(shares) /
        release(carried_share) pair collapses to a single count update
        for bare hook-free blocks.  Semantics match ``_deliver_output``
        exactly, including the negative-count error release() raises.
        """
        template = act.template
        consumers_by_node = template.consumers
        result_node = template.result_node
        result_out = template.result_out
        slots = act.slots
        missing = act.missing
        priorities = template.priorities
        hook = _blocks._BLOCK_HOOK
        wants_enqueued = self._wants_enqueued
        for offset, value in enumerate(values):
            node_id = first + offset
            consumers = consumers_by_node[node_id][0]
            is_result = result_node == node_id and result_out == 0
            shares = len(consumers) + 1 if is_result else len(consumers)
            if type(value) is DataBlock and hook is None:
                delta = shares - carried_share
                if delta:
                    rc = value.rc + delta
                    if rc < 0:
                        raise RuntimeError(
                            f"data block reference count went negative "
                            f"(released {carried_share} share(s) from "
                            f"rc={value.rc + shares}): {value!r}"
                        )
                    value.rc = rc
            else:
                if shares:
                    retain(value, shares)
                if carried_share:
                    release(value, carried_share)
            for dest, idx in consumers:
                slots[dest][idx] = value
                left = missing[dest] - 1
                missing[dest] = left
                if left == 0:
                    if wants_enqueued:
                        newly.append(self._task(act, dest))
                    else:
                        seq = self._task_seq + 1
                        self._task_seq = seq
                        newly.append(Task(act, dest, priorities[dest], seq))
            if is_result:
                self._handle_result(act, value, newly)

    def _handle_result(self, act: Activation, value: Any, newly: list[Task]) -> None:
        act.result_done = True
        continuation = act.continuation
        self._maybe_free(act)
        if continuation is None:
            self._final = value
            return
        parent, parent_node = continuation
        parent.pend_children -= 1
        self._deliver_output(parent, parent_node, 0, value, 1, newly)
        # The parent may have been waiting only on this child; re-check.
        self._maybe_free(parent)

    def _maybe_free(self, act: Activation) -> None:
        if (
            act.result_done
            and act.fired >= act.fireable
            and act.pend_children == 0
            and act.pend_ops == 0
        ):
            act.result_done = False  # guard against double release
            self.pool.release(act)

    # ------------------------------------------------------------------
    def _begin_operator(
        self,
        act: Activation,
        node_id: int,
        spec: OperatorSpec,
        op_inputs: list[Any],
        all_inputs: list[Any],
        home: int,
        classify: Classify | None,
        donated: tuple[int, ...] | None = None,
    ) -> PendingOp:
        if spec.arity is not None and spec.arity != len(op_inputs):
            raise RuntimeFailure(
                f"operator {spec.name!r} takes {spec.arity} argument(s), "
                f"got {len(op_inputs)}"
            )
        remote = False
        if classify is not None:
            remote = classify(
                spec, tuple(_payload_of(v) for v in op_inputs)
            )
        bus = self.bus
        donated_set: tuple[int, ...] = donated if donated is not None else ()
        args: list[Any] = []
        arg_blocks: list[DataBlock | None] = []
        fingerprints: list[tuple[int, object]] = []
        for i, v in enumerate(op_inputs):
            if isinstance(v, DataBlock):
                if i in spec.modifies:
                    if v.unique():
                        self.stats.in_place_writes += 1
                        if v.bid is not None and not remote:
                            # The operator body is about to mutate this
                            # payload in place while workers may hold
                            # resident copies keyed by its block id:
                            # invalidate before the bytes change.  (A
                            # remote fire leaves the master copy intact —
                            # serialization isolates the worker's write.)
                            if self.locality is not None:
                                self.locality.forget(v)
                            v.bid = None
                        if i in donated_set:
                            # The compiler proved this is the edge's last
                            # use, so the in-place handoff is statically
                            # discharged — a copy-always engine would have
                            # copied here.  (The ``unique()`` guard above
                            # stays: dynamic aliasing through closures or
                            # re-converging calls is invisible statically.)
                            self.stats.copies_avoided += 1
                            self.stats.bytes_copy_avoided += v.nbytes
                            if bus is not None and bus.wants(DonationApplied):
                                bus.emit(
                                    DonationApplied(
                                        bus.now(), spec.name, v.nbytes
                                    )
                                )
                        args.append(v.payload)
                        arg_blocks.append(v)
                    else:
                        if i in donated_set:
                            # Annotated donated but dynamically shared:
                            # fall back to copy-on-write, which is always
                            # correct; record the miss for observability.
                            self.stats.donation_misses += 1
                        self.stats.cow_copies += 1
                        self.stats.copies_by_operator[spec.name] = (
                            self.stats.copies_by_operator.get(spec.name, 0) + 1
                        )
                        self.stats.copy_bytes_by_operator[spec.name] = (
                            self.stats.copy_bytes_by_operator.get(spec.name, 0)
                            + v.nbytes
                        )
                        if bus is not None and bus.wants(CowCopy):
                            bus.emit(
                                CowCopy(bus.now(), spec.name, v.nbytes)
                            )
                        if remote:
                            # Serialization to the worker is the copy; the
                            # decision is still counted above so COW stats
                            # stay comparable across executors.
                            args.append(v.payload)
                            arg_blocks.append(v)
                        else:
                            fresh = self._cow_copy(v, home, spec.name)
                            args.append(fresh.payload)
                            arg_blocks.append(fresh)
                else:
                    args.append(v.payload)
                    arg_blocks.append(v)
                    if self.check_purity and not remote:
                        fingerprints.append((i, _fingerprint(v.payload)))
            else:
                if i in spec.modifies and isinstance(v, MultiValue):
                    raise RuntimeFailure(
                        f"operator {spec.name!r} declares it modifies "
                        f"argument {i}, which is a multiple-value package; "
                        "split the package and pass the parts instead"
                    )
                args.append(_payload_of(v))
                arg_blocks.append(None)

        self.stats.ops_executed += 1
        fused = act.template.nodes[node_id].fused
        if fused is not None:
            n_source_ops = len(fused[0]) + (1 if fused[1] else 0)
            self.stats.fused_fires += 1
            self.stats.fused_ops_saved += n_source_ops - 1
        else:
            n_source_ops = 1
        act.pend_ops += 1
        op_began: float | None = None
        if bus is not None:
            # The subscriber-set snapshot lets an unsubscribed event skip
            # both the object construction and the clock read — the
            # dominant emit-site costs on the master's critical path.
            wants_started = self._wants_op_started
            if wants_started or self._wants_op_finished:
                op_began = bus.now()
            if wants_started:
                bus.emit(OpStarted(op_began, spec.name, n_source_ops))
        return PendingOp(
            activation=act,
            node_id=node_id,
            spec=spec,
            args=tuple(args),
            arg_blocks=[] if remote else arg_blocks,
            op_inputs=op_inputs,
            all_inputs=all_inputs,
            fingerprints=fingerprints,
            home=home,
            remote=remote,
            op_began=op_began,
            donated=donated,
        )

    def _cow_copy(self, v: DataBlock, home: int, op_name: str) -> DataBlock:
        """Copy-on-write copy, reusing a pooled buffer when one fits.

        A recycled same-shape/dtype buffer turns the copy into a
        ``np.copyto`` with no allocator round trip; otherwise this is the
        plain :meth:`DataBlock.copy` path.
        """
        p = v.payload
        if isinstance(p, np.ndarray):
            buf = self.buffers.get(p.shape, p.dtype)
            if buf is not None:
                np.copyto(buf, p)
                self.stats.buffers_recycled += 1
                self.stats.buffer_bytes_recycled += buf.nbytes
                bus = self.bus
                if bus is not None and bus.wants(BufferRecycled):
                    bus.emit(BufferRecycled(bus.now(), op_name, buf.nbytes))
                return DataBlock(buf, home=home)
        return v.copy(home)

    def _wrap_result(
        self,
        raw: Any,
        arg_blocks: list[DataBlock | None],
        home: int,
        donated: tuple[int, ...] = (),
    ) -> Any:
        if isinstance(raw, tuple):
            return MultiValue(
                tuple(
                    self._wrap_result(x, arg_blocks, home, donated)
                    for x in raw
                )
            )
        for block in arg_blocks:
            if block is not None and block.payload is raw:
                # The operator returned one of its inputs: keep the block's
                # identity — this is the paper's "merging is free" idiom.
                if home >= 0:
                    block.home = home
                return block
        if isinstance(raw, np.ndarray) and raw.base is not None:
            # A view over an input's buffer would alias it behind the
            # reference counter's back; copy defensively.  Operators that
            # want zero-copy splitting should return the whole array or
            # independent arrays.
            base: Any = raw
            while isinstance(base, np.ndarray) and base.base is not None:
                base = base.base
            for i, block in enumerate(arg_blocks):
                if block is not None and block.payload is base:
                    if i in donated and block.rc == 1:
                        # Donated last use: the only live share is this
                        # firing's input slot, released right after this
                        # wrap, so no other consumer can ever reach the
                        # buffer — and the view's NumPy ``base`` reference
                        # keeps it alive.  The defensive copy is
                        # unnecessary.
                        self.stats.copies_avoided += 1
                        self.stats.bytes_copy_avoided += int(raw.nbytes)
                    else:
                        raw = raw.copy()
                    break
        return wrap_payload(raw, home)

    def _recycle_dead_inputs(self, pending: PendingOp, raw_result: Any) -> None:
        """Offer donated inputs that died at rc→0 to the buffer pool.

        Only provably safe buffers are pooled: the payload must be a bare
        owning array (the pool enforces the shape of reusable buffers),
        and the raw result must not alias it — a remote result never can
        (it was deserialized from the worker), a local result is walked
        structurally, and opaque application objects are conservatively
        assumed to hold views.
        """
        assert pending.donated is not None
        for i in pending.donated:
            if i >= len(pending.op_inputs):
                continue
            v = pending.op_inputs[i]
            if (
                isinstance(v, DataBlock)
                and v.rc == 0
                and isinstance(v.payload, np.ndarray)
                and (pending.remote or not _may_alias(raw_result, v.payload))
            ):
                self.buffers.put(v.payload)

    # ------------------------------------------------------------------
    def _fire_call(
        self,
        act: Activation,
        node_id: int,
        node: Node,
        newly: list[Task],
        home: int,
        classify: Classify | None,
    ) -> PendingOp | None:
        inputs = act.take_inputs(node_id)
        callee, call_args = inputs[0], list(inputs[1:])
        if isinstance(callee, OperatorValue):
            spec = self.registry.get(callee.name)
            return self._begin_operator(
                act, node_id, spec, call_args, list(inputs), home, classify
            )
        if isinstance(callee, Closure):
            self._expand(
                act,
                node_id,
                node,
                callee.template,
                params=call_args,
                param_share=1,
                captures=list(callee.cells),
                capture_share=0,
                newly=newly,
            )
            return None
        raise RuntimeFailure(
            f"call of non-function value {callee!r} "
            f"(node {node.label!r} in {act.template.name!r})"
        )

    def _fire_if(
        self, act: Activation, node_id: int, node: Node, newly: list[Task]
    ) -> None:
        inputs = act.take_inputs(node_id)
        cond = inputs[0]
        n_then = node.n_then_captures
        then_values = list(inputs[1 : 1 + n_then])
        else_values = list(inputs[1 + n_then :])
        if is_truthy(cond):
            taken_name, taken = node.then_template, then_values
            dropped = else_values
        else:
            taken_name, taken = node.else_template, else_values
            dropped = then_values
        for v in dropped:
            release(v, 1)
        release(cond, 1)
        self._expand(
            act,
            node_id,
            node,
            self.program.template(taken_name),
            params=[],
            param_share=0,
            captures=taken,
            capture_share=1,
            newly=newly,
        )

    def _expand(
        self,
        parent: Activation,
        node_id: int,
        node: Node,
        template: Any,
        params: list[Any],
        param_share: int,
        captures: list[Any],
        capture_share: int,
        newly: list[Task],
    ) -> None:
        if len(params) != len(template.params):
            raise RuntimeFailure(
                f"{template.name!r} takes {len(template.params)} argument(s), "
                f"got {len(params)}"
            )
        if len(captures) != len(template.captures):
            raise GraphError(
                f"{template.name!r} expects {len(template.captures)} "
                f"capture(s), got {len(captures)}"
            )
        self.stats.expansions += 1
        child = self.pool.acquire(template)
        bus = self.bus
        if node.tail:
            self.stats.tail_expansions += 1
            if self._wants_tail_expansion:
                bus.emit(TailExpansion(bus.now(), template.name, child.aid))
            child.continuation = parent.continuation
            # Delegate: the parent will never see a result of its own.
            parent.result_done = True
        else:
            if self._wants_expansion:
                bus.emit(Expansion(bus.now(), template.name, child.aid))
            child.continuation = (parent, node_id)
            parent.pend_children += 1
        if self._wants_enqueued:
            for nid in template.initial_ready:
                newly.append(self._task(child, nid))
        else:
            priorities = template.priorities
            seq = self._task_seq
            for nid in template.initial_ready:
                seq += 1
                newly.append(Task(child, nid, priorities[nid], seq))
            self._task_seq = seq
        if params:
            self._deliver_values(child, 0, params, param_share, newly)
        if captures:
            self._deliver_values(
                child, len(template.params), captures, capture_share, newly
            )
