"""The coordination-graph interpreter core.

:class:`ExecutionState` implements the *semantics* of template-activation
execution — node firing rules, reference-counted copy-on-write, call-closure
expansion, conditional-arm expansion, tail-call continuation inheritance,
and activation recycling.  It deliberately contains no *policy*: executors
(sequential, threaded, simulated-machine) own the ready queue, the notion
of time, and processor placement, and drive the state through two calls:

* :meth:`start` — build the root activation, returning the initially ready
  tasks;
* :meth:`fire` — fire one ready task, returning the tasks it made ready.

Any interleaving of ``fire`` calls that respects readiness produces the
same final result; that is the determinism guarantee of the coordination
model (section 8 of the paper) and the property the test suite hammers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from ..errors import GraphError, OperatorError, RuntimeFailure
from ..graph.ir import GraphProgram, Node, NodeKind
from ..obs.events import (
    CowCopy,
    EventBus,
    Expansion,
    OpFinished,
    OpStarted,
    TailExpansion,
    TaskEnqueued,
)
from .activation import Activation, ActivationPool
from .blocks import DataBlock, release, retain, unwrap, wrap_payload
from .operators import OperatorRegistry, OperatorSpec
from .scheduler import (
    PRIORITY_CALL,
    PRIORITY_NORMAL,
    PRIORITY_RECURSIVE_CALL,
    Task,
)
from .values import NULL, Closure, MultiValue, OperatorValue, is_truthy

_NO_RESULT = object()

#: Hook type: executors may intercept the raw operator call (e.g. to drop a
#: lock around it, or to time it).  Receives the spec and ready payloads.
RunOp = Callable[[OperatorSpec, tuple[Any, ...]], Any]


class PurityViolationError(RuntimeFailure):
    """Debug mode caught an operator writing an argument it did not declare."""


@dataclass
class EngineStats:
    """Counters accumulated during one execution."""

    tasks_fired: int = 0
    ops_executed: int = 0
    cow_copies: int = 0
    in_place_writes: int = 0
    expansions: int = 0
    tail_expansions: int = 0
    activation_stats: dict[str, int] = field(default_factory=dict)
    #: Copy-on-write copies attributed to the operator that forced them —
    #: the profiling view a Delirium programmer uses to find the large
    #: structure that should have been split (section 2.1's advice).
    copies_by_operator: dict[str, int] = field(default_factory=dict)
    #: Bytes copied by COW, by operator (same attribution).
    copy_bytes_by_operator: dict[str, int] = field(default_factory=dict)


def _payload_of(value: Any) -> Any:
    """Convert an edge value to what an operator receives."""
    if isinstance(value, DataBlock):
        return value.payload
    if isinstance(value, MultiValue):
        return tuple(_payload_of(v) for v in value.items)
    return value


def _fingerprint(payload: Any) -> object:
    """Cheap content fingerprint for purity checking (debug mode only)."""
    if isinstance(payload, np.ndarray):
        return (payload.shape, str(payload.dtype), hash(payload.tobytes()))
    try:
        return hash(payload)
    except TypeError:
        return hash(repr(payload))


class ExecutionState:
    """Mutable state of one program execution.

    Parameters
    ----------
    program:
        The compiled coordination graphs.
    registry:
        Operator registry resolving ``OP`` nodes.
    check_purity:
        Debug mode: fingerprint read-only block arguments around every
        operator call and raise :class:`PurityViolationError` when an
        operator mutates an argument it did not declare in ``modifies``.
        Costly; meant for tests and development, like the original
        system's uniprocessor debugging story.
    bus:
        Optional :class:`~repro.obs.events.EventBus`.  Kept only when it
        has subscribers at construction time, so an idle bus costs the
        hot path a single ``is not None`` check per emit site.
    """

    def __init__(
        self,
        program: GraphProgram,
        registry: OperatorRegistry,
        check_purity: bool = False,
        bus: EventBus | None = None,
    ) -> None:
        self.program = program
        self.registry = registry
        self.check_purity = check_purity
        self.bus = bus if (bus is not None and bus.active) else None
        self.pool = ActivationPool(bus=self.bus)
        self.stats = EngineStats()
        self._final: Any = _NO_RESULT
        self._task_seq = 0
        #: Per-activation count of outstanding non-tail children, guarding
        #: activation recycling (see ``_expand``).
        self._pending_children: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Public interface
    # ------------------------------------------------------------------
    def start(self, args: tuple[Any, ...] = ()) -> list[Task]:
        """Create the root activation of the entry template."""
        template = self.program.entry_template()
        if template.captures:
            raise GraphError(
                f"entry template {template.name!r} has captures; it cannot "
                "be an entry point"
            )
        if len(args) != len(template.params):
            raise RuntimeFailure(
                f"entry {template.name!r} takes {len(template.params)} "
                f"argument(s), got {len(args)}"
            )
        root = self.pool.acquire(template)
        root.continuation = None
        newly: list[Task] = [
            self._task(root, nid) for nid in template.initial_ready
        ]
        for i, a in enumerate(args):
            self._deliver_output(root, i, 0, wrap_payload(a), 0, newly)
        return newly

    def fire(self, task: Task, run_op: RunOp | None = None, home: int = -1) -> list[Task]:
        """Fire one ready task; return the newly ready tasks."""
        act = task.activation
        node_id = task.node_id
        node: Node = act.template.nodes[node_id]
        act.fired += 1
        self.stats.tasks_fired += 1
        newly: list[Task] = []
        kind = node.kind

        if kind is NodeKind.CONST:
            self._deliver_output(act, node_id, 0, node.value, 0, newly)
        elif kind is NodeKind.OPREF:
            self._deliver_output(act, node_id, 0, OperatorValue(node.name), 0, newly)
        elif kind is NodeKind.TUPLE:
            inputs = act.take_inputs(node_id)
            mv = MultiValue(tuple(inputs))
            self._deliver_output(act, node_id, 0, mv, 0, newly)
            release(mv, 1)  # drop the input slots' shares
        elif kind is NodeKind.UNTUPLE:
            value = act.take_inputs(node_id)[0]
            if not isinstance(value, MultiValue):
                raise RuntimeFailure(
                    f"cannot decompose non-package value {value!r} "
                    f"(node {node.label!r} in {act.template.name!r})"
                )
            if len(value) != node.n_outputs:
                raise RuntimeFailure(
                    f"package of {len(value)} value(s) decomposed into "
                    f"{node.n_outputs} name(s) in {act.template.name!r}"
                )
            for i, element in enumerate(value.items):
                self._deliver_output(act, node_id, i, element, 0, newly)
            release(value, 1)
        elif kind is NodeKind.CLOSURE:
            cells = tuple(act.take_inputs(node_id))
            template = self.program.template(node.template)
            if len(cells) != len(template.captures):
                raise GraphError(
                    f"closure over {template.name!r}: {len(cells)} cell(s) "
                    f"for {len(template.captures)} capture(s)"
                )
            closure = Closure(template, cells).tie_self()
            # Cells keep the input slots' shares as permanent pins: a
            # captured block is always treated as shared (conservative,
            # documented in blocks.py).
            self._deliver_output(act, node_id, 0, closure, 0, newly)
        elif kind is NodeKind.OP:
            inputs = act.take_inputs(node_id)
            spec = self.registry.get(node.name)
            result = self._execute_operator(spec, list(inputs), run_op, home)
            self._deliver_output(act, node_id, 0, result, 0, newly)
            for v in inputs:
                release(v, 1)
        elif kind is NodeKind.CALL:
            self._fire_call(act, node_id, node, newly, run_op, home)
        elif kind is NodeKind.IF:
            self._fire_if(act, node_id, node, newly)
        else:  # pragma: no cover - placeholders never reach the queue
            raise GraphError(f"cannot fire node of kind {kind}")

        self._maybe_free(act)
        return newly

    @property
    def finished(self) -> bool:
        return self._final is not _NO_RESULT

    def result(self) -> Any:
        """The program result, unwrapped for the API boundary."""
        if self._final is _NO_RESULT:
            raise RuntimeFailure("program has not produced a result")
        return unwrap(self._final)

    def snapshot_stats(self) -> EngineStats:
        self.stats.activation_stats = self.pool.stats()
        return self.stats

    def stall_report(self, limit: int = 8) -> str:
        """Describe what is stuck when execution stalls without a result.

        Lists live activations with their unfired nodes and which inputs
        those nodes still await — the first thing to read when a
        hand-built graph (or an engine bug) deadlocks.
        """
        lines: list[str] = [
            f"{self.pool.live} live activation(s) at stall:"
        ]
        for act in sorted(self.pool.live_set, key=lambda a: a.aid)[:limit]:
            lines.append(
                f"  #{act.aid} {act.template.name}: fired "
                f"{act.fired}/{act.fireable_nodes()}, "
                f"result_done={act.result_done}"
            )
            for node_id, missing in enumerate(act.missing):
                node = act.template.nodes[node_id]
                if missing > 0 and node.kind not in (
                    NodeKind.PARAM,
                    NodeKind.CAPTURE,
                ):
                    lines.append(
                        f"    node {node_id} ({node.label or node.kind.value})"
                        f" awaits {missing} input(s)"
                    )
        if self.pool.live > limit:
            lines.append(f"  ... and {self.pool.live - limit} more")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Node semantics
    # ------------------------------------------------------------------
    def _task(self, act: Activation, node_id: int) -> Task:
        node = act.template.nodes[node_id]
        if node.kind is NodeKind.CALL:
            priority = PRIORITY_RECURSIVE_CALL if node.recursive else PRIORITY_CALL
        elif node.kind is NodeKind.IF:
            priority = PRIORITY_CALL
        else:
            priority = PRIORITY_NORMAL
        self._task_seq += 1
        bus = self.bus
        if bus is not None:
            bus.emit(
                TaskEnqueued(
                    bus.now(),
                    node.label,
                    node.kind.value,
                    priority,
                    act.template.name,
                    act.aid,
                    node_id,
                    self._task_seq,
                )
            )
        return Task(act, node_id, priority, self._task_seq)

    def _deliver_output(
        self,
        act: Activation,
        node_id: int,
        out: int,
        value: Any,
        carried_share: int,
        newly: list[Task],
    ) -> None:
        template = act.template
        consumers = template.consumers[node_id][out]
        assert template.result is not None
        is_result = template.result.node == node_id and template.result.out == out
        retain(value, len(consumers) + (1 if is_result else 0))
        if carried_share:
            release(value, carried_share)
        for dest, idx in consumers:
            act.slots[dest][idx] = value
            act.missing[dest] -= 1
            if act.missing[dest] == 0:
                newly.append(self._task(act, dest))
        if is_result:
            self._handle_result(act, value, newly)

    def _handle_result(self, act: Activation, value: Any, newly: list[Task]) -> None:
        act.result_done = True
        continuation = act.continuation
        self._maybe_free(act)
        if continuation is None:
            self._final = value
            return
        parent, parent_node = continuation
        count = self._pending_children.get(parent.aid, 0) - 1
        if count > 0:
            self._pending_children[parent.aid] = count
        else:
            self._pending_children.pop(parent.aid, None)
        self._deliver_output(parent, parent_node, 0, value, 1, newly)
        # The parent may have been waiting only on this child; re-check.
        self._maybe_free(parent)

    def _maybe_free(self, act: Activation) -> None:
        if (
            act.result_done
            and act.fired >= act.fireable_nodes()
            and self._pending_children.get(act.aid, 0) == 0
        ):
            act.result_done = False  # guard against double release
            self.pool.release(act)

    # ------------------------------------------------------------------
    def _execute_operator(
        self,
        spec: OperatorSpec,
        raw_inputs: list[Any],
        run_op: RunOp | None,
        home: int,
    ) -> Any:
        if spec.arity is not None and spec.arity != len(raw_inputs):
            raise RuntimeFailure(
                f"operator {spec.name!r} takes {spec.arity} argument(s), "
                f"got {len(raw_inputs)}"
            )
        args: list[Any] = []
        arg_blocks: list[DataBlock | None] = []
        fingerprints: list[tuple[int, object]] = []
        for i, v in enumerate(raw_inputs):
            if isinstance(v, DataBlock):
                if i in spec.modifies:
                    if v.unique():
                        self.stats.in_place_writes += 1
                        args.append(v.payload)
                        arg_blocks.append(v)
                    else:
                        self.stats.cow_copies += 1
                        self.stats.copies_by_operator[spec.name] = (
                            self.stats.copies_by_operator.get(spec.name, 0) + 1
                        )
                        self.stats.copy_bytes_by_operator[spec.name] = (
                            self.stats.copy_bytes_by_operator.get(spec.name, 0)
                            + v.nbytes
                        )
                        if self.bus is not None:
                            self.bus.emit(
                                CowCopy(self.bus.now(), spec.name, v.nbytes)
                            )
                        fresh = v.copy(home)
                        args.append(fresh.payload)
                        arg_blocks.append(fresh)
                else:
                    args.append(v.payload)
                    arg_blocks.append(v)
                    if self.check_purity:
                        fingerprints.append((i, _fingerprint(v.payload)))
            else:
                if i in spec.modifies and isinstance(v, MultiValue):
                    raise RuntimeFailure(
                        f"operator {spec.name!r} declares it modifies "
                        f"argument {i}, which is a multiple-value package; "
                        "split the package and pass the parts instead"
                    )
                args.append(_payload_of(v))
                arg_blocks.append(None)

        self.stats.ops_executed += 1
        arg_tuple = tuple(args)
        bus = self.bus
        if bus is not None:
            op_began = bus.now()
            bus.emit(OpStarted(op_began, spec.name))
        try:
            if run_op is not None:
                raw_result = run_op(spec, arg_tuple)
            else:
                raw_result = spec.fn(*arg_tuple)
        except Exception as exc:  # noqa: BLE001 - wrapped and re-raised
            raise OperatorError(spec.name, exc) from exc
        if bus is not None:
            op_ended = bus.now()
            bus.emit(OpFinished(op_ended, spec.name, op_ended - op_began))

        if self.check_purity:
            for i, fp in fingerprints:
                block = raw_inputs[i]
                assert isinstance(block, DataBlock)
                if _fingerprint(block.payload) != fp:
                    raise PurityViolationError(
                        f"operator {spec.name!r} modified argument {i} "
                        "without declaring it in modifies=(...)"
                    )
        return self._wrap_result(raw_result, arg_blocks, home)

    def _wrap_result(
        self, raw: Any, arg_blocks: list[DataBlock | None], home: int
    ) -> Any:
        if isinstance(raw, tuple):
            return MultiValue(
                tuple(self._wrap_result(x, arg_blocks, home) for x in raw)
            )
        for block in arg_blocks:
            if block is not None and block.payload is raw:
                # The operator returned one of its inputs: keep the block's
                # identity — this is the paper's "merging is free" idiom.
                if home >= 0:
                    block.home = home
                return block
        if isinstance(raw, np.ndarray) and raw.base is not None:
            # A view over an input's buffer would alias it behind the
            # reference counter's back; copy defensively.  Operators that
            # want zero-copy splitting should return the whole array or
            # independent arrays.
            base: Any = raw
            while isinstance(base, np.ndarray) and base.base is not None:
                base = base.base
            for block in arg_blocks:
                if block is not None and block.payload is base:
                    raw = raw.copy()
                    break
        return wrap_payload(raw, home)

    # ------------------------------------------------------------------
    def _fire_call(
        self,
        act: Activation,
        node_id: int,
        node: Node,
        newly: list[Task],
        run_op: RunOp | None,
        home: int,
    ) -> None:
        inputs = act.take_inputs(node_id)
        callee, call_args = inputs[0], list(inputs[1:])
        if isinstance(callee, OperatorValue):
            spec = self.registry.get(callee.name)
            result = self._execute_operator(spec, call_args, run_op, home)
            self._deliver_output(act, node_id, 0, result, 0, newly)
            for v in inputs:
                release(v, 1)
            return
        if isinstance(callee, Closure):
            self._expand(
                act,
                node_id,
                node,
                callee.template,
                params=call_args,
                param_share=1,
                captures=list(callee.cells),
                capture_share=0,
                newly=newly,
            )
            return
        raise RuntimeFailure(
            f"call of non-function value {callee!r} "
            f"(node {node.label!r} in {act.template.name!r})"
        )

    def _fire_if(
        self, act: Activation, node_id: int, node: Node, newly: list[Task]
    ) -> None:
        inputs = act.take_inputs(node_id)
        cond = inputs[0]
        n_then = node.n_then_captures
        then_values = list(inputs[1 : 1 + n_then])
        else_values = list(inputs[1 + n_then :])
        if is_truthy(cond):
            taken_name, taken = node.then_template, then_values
            dropped = else_values
        else:
            taken_name, taken = node.else_template, else_values
            dropped = then_values
        for v in dropped:
            release(v, 1)
        release(cond, 1)
        self._expand(
            act,
            node_id,
            node,
            self.program.template(taken_name),
            params=[],
            param_share=0,
            captures=taken,
            capture_share=1,
            newly=newly,
        )

    def _expand(
        self,
        parent: Activation,
        node_id: int,
        node: Node,
        template: Any,
        params: list[Any],
        param_share: int,
        captures: list[Any],
        capture_share: int,
        newly: list[Task],
    ) -> None:
        if len(params) != len(template.params):
            raise RuntimeFailure(
                f"{template.name!r} takes {len(template.params)} argument(s), "
                f"got {len(params)}"
            )
        if len(captures) != len(template.captures):
            raise GraphError(
                f"{template.name!r} expects {len(template.captures)} "
                f"capture(s), got {len(captures)}"
            )
        self.stats.expansions += 1
        child = self.pool.acquire(template)
        bus = self.bus
        if node.tail:
            self.stats.tail_expansions += 1
            if bus is not None:
                bus.emit(TailExpansion(bus.now(), template.name, child.aid))
            child.continuation = parent.continuation
            # Delegate: the parent will never see a result of its own.
            parent.result_done = True
        else:
            if bus is not None:
                bus.emit(Expansion(bus.now(), template.name, child.aid))
            child.continuation = (parent, node_id)
            self._pending_children[parent.aid] = (
                self._pending_children.get(parent.aid, 0) + 1
            )
        for nid in template.initial_ready:
            newly.append(self._task(child, nid))
        n_params = len(template.params)
        for i, v in enumerate(params):
            self._deliver_output(child, i, 0, v, param_share, newly)
        for j, v in enumerate(captures):
            self._deliver_output(child, n_params + j, 0, v, capture_share, newly)
