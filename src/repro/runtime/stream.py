"""Streaming sources and sinks with bounded backpressure.

Delirium programs are finite graphs, but the workloads the runtime must
serve are not: a retina watching a camera, a log pipeline, a market
feed.  This module opens that scenario class without touching the
engine's semantics.  A :class:`StreamRunner` drives one compiled
program over an unbounded sequence of items, one item per program run —
cheap, because the engine's cross-run plan cache makes repeated runs of
the same program pay only activation setup, and (for the process
executor) the worker pool stays warm across items.

**Backpressure is the design, not a feature flag.**  Sources are
pull-based: the runner asks for the next item only after the previous
item's entire firing frontier has drained and its result committed, so
at any instant the master holds one item's activations plus the carried
value — RSS stays flat over 10⁶ firings because nothing accumulates.
Inside each item's run the :class:`~repro.runtime.scheduler.ReadyQueue`
``max_ready`` watermark makes saturation *observable*
(:class:`~repro.obs.events.QueueSaturated`), and the same watermark is
the admission gate a future pipelined/server mode will block sources
on.

**Carry mode** is how state crosses items in a single-assignment world:
``main(carry, item)`` (or ``main(carry)``) receives the previous run's
result as its first argument.  The carried value is an ordinary
Delirium value — which is exactly why checkpointing it (a pickle) is
consistent: at an item boundary it is the *only* live state.

**Checkpoint/resume** (:mod:`repro.runtime.checkpoint`): give the
runner a checkpoint path and a cadence (every N engine fires, and/or
every S wall seconds via ``FaultPolicy(checkpoint=S)``) and it
periodically flushes the sink and snapshots the frontier atomically.
``resume=`` rebuilds the run from the snapshot: seek the source,
truncate the sink to its durable prefix (verified by rolling digest),
restore the carry and the fault-injection cursors, and continue —
committed items are never re-fired (single-assignment makes them
final), and the sink output is bit-identical to an uninterrupted run.
Property-tested in ``tests/test_checkpoint.py``; the real ``kill -9``
path runs in ``benchmarks/bench_checkpoint_smoke.py`` via the
``masterkill`` fault kind.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
from dataclasses import dataclass
from typing import Any, Callable

from ..errors import DeliriumError
from ..faults.spec import FaultSpec, _in_worker_process
from ..obs.events import CheckpointWritten, EventBus, RunResumed
from .checkpoint import (
    Checkpoint,
    CheckpointCadence,
    CheckpointError,
    program_fingerprint,
    read_checkpoint,
    registry_fingerprint,
    verify_compatible,
    write_checkpoint,
)
from .engine import EngineStats

#: Sentinel a source returns when it is exhausted.  Distinct from
#: ``None`` so streams can carry ``None`` items.
END = type("EndOfStream", (), {"__repr__": lambda self: "END"})()


class StreamError(DeliriumError):
    """A source, sink, or stream-runner contract violation."""


_DIGEST0 = hashlib.sha256(b"").hexdigest()


def _encode_item(item: Any) -> bytes:
    """Canonical bytes for one sink item (JSON, sorted keys).

    Sink items must be JSON-representable — emit functions reduce rich
    results (NumPy state, aggregates) to plain scalars/lists/dicts.
    This is what makes "bit-identical sink output" a *file-level*
    statement rather than a Python-object one.
    """
    try:
        return (
            json.dumps(item, sort_keys=True, separators=(",", ":")) + "\n"
        ).encode("utf-8")
    except TypeError as exc:
        raise StreamError(
            f"sink item {item!r} is not JSON-representable: {exc}; "
            f"pass an emit= function reducing results to plain data"
        )


def _chain(digest: str, line: bytes) -> str:
    """Advance the rolling sink digest by one encoded item."""
    return hashlib.sha256(digest.encode("ascii") + line).hexdigest()


# ----------------------------------------------------------------------
# Sources
# ----------------------------------------------------------------------
class CallableSource:
    """A pull-based source computing item ``i`` as ``fn(i)``.

    Deterministic by construction — the item depends only on the
    offset — which is what lets a checkpoint store *just* the offset.
    ``n_items=None`` streams forever (the caller bounds the run with
    ``limit=``).
    """

    def __init__(
        self, fn: Callable[[int], Any], n_items: int | None = None
    ) -> None:
        if n_items is not None and n_items < 0:
            raise StreamError(f"n_items={n_items} must be >= 0")
        self.fn = fn
        self.n_items = n_items
        self.offset = 0

    def next(self) -> Any:
        if self.n_items is not None and self.offset >= self.n_items:
            return END
        item = self.fn(self.offset)
        self.offset += 1
        return item

    def seek(self, offset: int) -> None:
        if self.n_items is not None and offset > self.n_items:
            raise StreamError(
                f"cannot seek to {offset}: source ends at {self.n_items}"
            )
        self.offset = offset

    def close(self) -> None:
        pass


def count_source(n_items: int | None = None) -> CallableSource:
    """The identity stream: item ``i`` is the integer ``i``."""
    return CallableSource(lambda i: i, n_items)


class LineSource:
    """A pull-based source of JSON lines; the offset is the line index.

    Each line is decoded as JSON (the ``delirium run --stream
    lines:FILE`` feed format); a line that is not valid JSON arrives as
    the raw string, so plain-text logs stream too.  ``seek`` re-reads
    from the start of the file — resume pays one linear scan of the
    already-consumed prefix, never re-emits it.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._fh = open(path, "r", encoding="utf-8")
        self.offset = 0

    def next(self) -> Any:
        line = self._fh.readline()
        if line == "":
            return END
        self.offset += 1
        text = line.rstrip("\n")
        try:
            return json.loads(text)
        except ValueError:
            return text

    def seek(self, offset: int) -> None:
        self._fh.seek(0)
        for _ in range(offset):
            if self._fh.readline() == "":
                raise StreamError(
                    f"cannot seek to line {offset}: {self.path!r} has "
                    f"fewer lines"
                )
        self.offset = offset

    def close(self) -> None:
        self._fh.close()


# ----------------------------------------------------------------------
# Sinks
# ----------------------------------------------------------------------
class MemorySink:
    """An in-memory sink with the same flushed/durable contract as the
    file sink — the property tests' reference output."""

    def __init__(self) -> None:
        self.items: list[Any] = []  # flushed ("durable") prefix
        self._pending: list[Any] = []
        self.digest = _DIGEST0

    def append(self, item: Any) -> None:
        self._pending.append(item)

    def flush(self) -> None:
        for item in self._pending:
            self.digest = _chain(self.digest, _encode_item(item))
            self.items.append(item)
        self._pending.clear()

    @property
    def flushed(self) -> int:
        return len(self.items)

    def state_dict(self) -> dict[str, Any]:
        return {"items": len(self.items), "digest": self.digest}

    def restore(self, state: dict[str, Any]) -> None:
        n = int(state["items"])
        if len(self.items) < n:
            raise StreamError(
                f"sink has {len(self.items)} flushed items, checkpoint "
                f"expects at least {n}"
            )
        self._pending.clear()
        del self.items[n:]
        digest = _DIGEST0
        for item in self.items:
            digest = _chain(digest, _encode_item(item))
        if digest != state["digest"]:
            raise StreamError(
                "sink content does not match checkpoint digest; refusing "
                "to resume onto divergent output"
            )
        self.digest = digest

    def close(self) -> None:
        pass


class JsonlSink:
    """An append-only JSON-lines file sink with durable flush offsets.

    ``append`` buffers; ``flush`` writes, ``fsync``\\ s, and advances the
    durable byte offset and rolling digest.  On resume,
    :meth:`restore` re-verifies the durable prefix against the
    checkpoint's digest and truncates anything after it — output
    beyond the last checkpoint was not durable at the crash and is
    re-produced, byte for byte, by the resumed run.
    """

    def __init__(self, path: str, resume: bool = False) -> None:
        self.path = path
        mode = "r+b" if (resume and os.path.exists(path)) else "wb"
        self._fh = open(path, mode)
        self._buffer: list[bytes] = []
        self.flushed = 0  # items durable
        self.nbytes = 0  # bytes durable
        self.digest = _DIGEST0

    def append(self, item: Any) -> None:
        self._buffer.append(_encode_item(item))

    def flush(self) -> None:
        if self._buffer:
            blob = b"".join(self._buffer)
            self._fh.seek(self.nbytes)
            self._fh.write(blob)
            for line in self._buffer:
                self.digest = _chain(self.digest, line)
            self.flushed += len(self._buffer)
            self.nbytes += len(blob)
            self._buffer.clear()
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def state_dict(self) -> dict[str, Any]:
        return {
            "items": self.flushed,
            "nbytes": self.nbytes,
            "digest": self.digest,
        }

    def restore(self, state: dict[str, Any]) -> None:
        nbytes = int(state["nbytes"])
        self._fh.seek(0, os.SEEK_END)
        size = self._fh.tell()
        if size < nbytes:
            raise StreamError(
                f"sink file {self.path!r} has {size} bytes, checkpoint "
                f"expects at least {nbytes}"
            )
        self._fh.seek(0)
        prefix = self._fh.read(nbytes)
        digest = _DIGEST0
        for line in prefix.splitlines(keepends=True):
            digest = _chain(digest, line)
        if digest != state["digest"]:
            raise StreamError(
                f"sink file {self.path!r} does not match checkpoint "
                f"digest; refusing to resume onto divergent output"
            )
        self._fh.truncate(nbytes)
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._buffer.clear()
        self.flushed = int(state["items"])
        self.nbytes = nbytes
        self.digest = digest

    def close(self) -> None:
        self._fh.close()


# ----------------------------------------------------------------------
# Fault-spec sharing across per-item runs
# ----------------------------------------------------------------------
class SharedFaultSpec:
    """One master-side injector shared by every per-item executor run.

    Executors call ``fault_spec.build()`` at the start of each run; with
    a plain :class:`~repro.faults.FaultSpec` that would reset the
    injection counters every item, making ``nth=`` clauses fire once
    *per item* instead of once per stream.  This wrapper pins a single
    master injector (whose cursors the checkpoint snapshots) while
    worker processes — which receive the wrapper by pickle and build at
    respawn salts — still get fresh per-incarnation injectors.
    """

    def __init__(self, spec: FaultSpec) -> None:
        self.spec = spec
        self.injector = spec.build()

    @property
    def clauses(self):  # noqa: ANN201 - mirrors FaultSpec
        return self.spec.clauses

    def build(self, salt: int = 0):  # noqa: ANN201 - mirrors FaultSpec
        if salt == 0 and not _in_worker_process():
            return self.injector
        return self.spec.build(salt)

    def describe(self) -> str:
        return self.spec.describe()

    def __getstate__(self) -> dict[str, Any]:
        # Workers must not inherit the master's cursors: ship the spec,
        # rebuild a pinned injector on the far side.
        return {"spec": self.spec}

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__init__(state["spec"])


# ----------------------------------------------------------------------
# The runner
# ----------------------------------------------------------------------
@dataclass
class StreamResult:
    """Outcome of one :meth:`StreamRunner.run` call."""

    items: int
    fires: int
    wall_seconds: float
    stats: dict[str, float]
    checkpoints_written: int
    resumed_from: str | None
    sink_digest: str
    value: Any  # final carry (carry mode) or last emitted item


class StreamRunner:
    """Drive one compiled program over a stream, one item per run.

    Parameters
    ----------
    program / registry:
        The compiled graph and its operators, identical for every item
        (that is what makes the cross-run plan cache and the warm
        worker pool pay off).
    executor:
        ``"sequential"`` | ``"threaded"`` | ``"process"``.  The choice
        does not affect sink output (bit-identity across executors is
        the runtime's standing guarantee) and deliberately does not
        enter the checkpoint identity: a run checkpointed under one
        executor may resume under another.
    carry:
        When True the previous item's result is threaded into the next
        run.  ``make_args`` builds each run's argument tuple from
        ``(item, carry)``; its default is ``(carry, item)`` in carry
        mode and ``(item,)`` otherwise.
    initial:
        The first carry value (carry mode only).
    emit:
        Reduces each run's result to the JSON-representable item
        appended to the sink (default: identity).
    checkpoint_path / checkpoint_every / fault_policy.checkpoint:
        Enable periodic snapshots: every ``checkpoint_every`` engine
        fires and/or every ``FaultPolicy(checkpoint=S)`` seconds.  A
        final snapshot is always written on normal completion when a
        path is configured.
    fault_spec:
        A :class:`~repro.faults.FaultSpec`; wrapped in
        :class:`SharedFaultSpec` so clause cursors span the whole
        stream and land in the checkpoint.  ``masterkill`` clauses are
        consulted at every item boundary.
    max_ready:
        Ready-queue saturation watermark passed through to the
        executor (see :class:`~repro.runtime.scheduler.ReadyQueue`).
    flags:
        Extra identity entries for the checkpoint manifest (the CLI
        records its graph-pass tuple and compile-cache key here);
        resume refuses a different flag set.
    """

    def __init__(
        self,
        program: Any,
        registry: Any = None,
        *,
        executor: str = "sequential",
        n_workers: int = 4,
        carry: bool = False,
        initial: Any = None,
        make_args: Callable[[Any, Any], tuple] | None = None,
        emit: Callable[[Any], Any] | None = None,
        max_ready: int | None = None,
        checkpoint_path: str | None = None,
        checkpoint_every: int | None = None,
        fault_policy: Any = None,
        fault_spec: FaultSpec | None = None,
        flags: dict[str, Any] | None = None,
        bus: EventBus | None = None,
        run_ctx: Any = None,
        executor_options: dict[str, Any] | None = None,
    ) -> None:
        if executor not in ("sequential", "threaded", "process"):
            raise StreamError(
                f"unknown executor {executor!r}; expected sequential, "
                f"threaded, or process"
            )
        # Accept a CompiledProgram (compiler front door) or a bare
        # GraphProgram; the executors want the graph, and the compiled
        # wrapper carries the registry the caller usually means.
        if not hasattr(program, "entry_template") and hasattr(
            program, "graph"
        ):
            if registry is None:
                registry = getattr(program, "registry", None)
            program = program.graph
        self.program = program
        self.registry = registry
        self.executor_name = executor
        self.n_workers = n_workers
        self.carry = carry
        self.initial = initial
        if make_args is not None:
            self.make_args = make_args
        elif carry:
            self.make_args = lambda item, carry: (carry, item)
        else:
            self.make_args = lambda item, carry: (item,)
        self.emit = emit if emit is not None else (lambda value: value)
        self.max_ready = max_ready
        self.checkpoint_path = checkpoint_path
        self.fault_policy = fault_policy
        self.fault_spec = (
            SharedFaultSpec(fault_spec) if fault_spec is not None else None
        )
        self.flags = dict(flags or {})
        self.flags.setdefault("carry", bool(carry))
        self.bus = bus
        self.run_ctx = run_ctx
        self.executor_options = dict(executor_options or {})
        every_seconds = (
            fault_policy.checkpoint if fault_policy is not None else None
        )
        self.cadence = CheckpointCadence(
            every_fires=checkpoint_every, every_seconds=every_seconds
        )
        self._program_fp: str | None = None
        self._registry_fp: str | None = None
        self._executor: Any = None

    # -- identity -------------------------------------------------------
    def fingerprints(self) -> tuple[str, str]:
        if self._program_fp is None:
            self._program_fp = program_fingerprint(self.program)
            from .operators import default_registry

            reg = (
                self.registry
                if self.registry is not None
                else default_registry()
            )
            self._registry_fp = registry_fingerprint(reg)
        return self._program_fp, self._registry_fp

    # -- executor -------------------------------------------------------
    def _resolve_bus(self) -> EventBus | None:
        bus = self.bus
        if bus is None and self.run_ctx is not None:
            bus = self.run_ctx.bus
        if bus is not None and not bus.active:
            bus = None
        return bus

    def _build_executor(self) -> Any:
        from .executors import (
            ProcessExecutor,
            SequentialExecutor,
            ThreadedExecutor,
        )

        common: dict[str, Any] = dict(
            bus=self.bus,
            run_ctx=self.run_ctx,
            fault_policy=self.fault_policy,
            fault_spec=self.fault_spec,
            max_ready=self.max_ready,
        )
        common.update(self.executor_options)
        if self.executor_name == "sequential":
            return SequentialExecutor(**common)
        if self.executor_name == "threaded":
            return ThreadedExecutor(n_workers=self.n_workers, **common)
        return ProcessExecutor(
            n_workers=self.n_workers, persistent=True, **common
        )

    @property
    def executor(self) -> Any:
        if self._executor is None:
            self._executor = self._build_executor()
        return self._executor

    def close(self) -> None:
        """Release the warm worker pool (process executor)."""
        if self._executor is not None:
            close = getattr(self._executor, "close", None)
            if close is not None:
                close()
            self._executor = None

    # -- checkpointing --------------------------------------------------
    def _snapshot(
        self,
        source: Any,
        sink: Any,
        carry: Any,
        items: int,
        fires: int,
        seq: int,
        stats: dict[str, float],
    ) -> int:
        """Flush the sink, then write one atomic snapshot.  Returns size."""
        sink.flush()
        program_fp, registry_fp = self.fingerprints()
        manifest = {
            "seq": seq,
            "items": items,
            "fires": fires,
            "source_offset": source.offset,
            "sink": sink.state_dict(),
            "program": program_fp,
            "registry": registry_fp,
            "flags": self.flags,
            "created": time.time(),
        }
        injector_state = (
            self.fault_spec.injector.state_dict()
            if self.fault_spec is not None
            else None
        )
        payload = {
            "carry": carry,
            "injector": injector_state,
            "stats": stats,
        }
        return write_checkpoint(self.checkpoint_path, manifest, payload)

    # -- the loop -------------------------------------------------------
    def run(
        self,
        source: Any,
        sink: Any,
        *,
        limit: int | None = None,
        resume: str | Checkpoint | None = None,
        stop_after_items: int | None = None,
    ) -> StreamResult:
        """Drain ``source`` into ``sink``; optionally resume a snapshot.

        ``limit`` bounds how many items this call processes (``None`` =
        until the source ends).  ``stop_after_items`` abandons the run
        after N items *without* a final flush or checkpoint — the
        in-process stand-in for a master crash that the property tests
        use (the real SIGKILL path is the ``masterkill`` fault kind).
        """
        began = time.perf_counter()
        bus = self._resolve_bus()
        stats: dict[str, float] = {}
        items = 0
        fires = 0
        seq = 0
        checkpoints = 0
        resumed_from: str | None = None
        carry = self.initial

        if resume is not None:
            ckpt = (
                resume
                if isinstance(resume, Checkpoint)
                else read_checkpoint(resume)
            )
            program_fp, registry_fp = self.fingerprints()
            verify_compatible(
                ckpt,
                program_fp=program_fp,
                registry_fp=registry_fp,
                flags=self.flags,
            )
            source.seek(ckpt.source_offset)
            sink.restore(ckpt.sink_state)
            carry = ckpt.payload.get("carry")
            stats = dict(ckpt.payload.get("stats") or {})
            if (
                self.fault_spec is not None
                and ckpt.payload.get("injector") is not None
            ):
                self.fault_spec.injector.load_state(
                    ckpt.payload["injector"]
                )
            items = ckpt.items
            fires = ckpt.fires
            seq = ckpt.seq
            resumed_from = ckpt.path
            self.cadence.mark(fires)
            if bus is not None and bus.wants(RunResumed):
                bus.emit(RunResumed(bus.now(), ckpt.path, items, fires))
        else:
            self.cadence.mark(0)

        injector = (
            self.fault_spec.injector if self.fault_spec is not None else None
        )
        executor = self.executor
        done = 0
        while limit is None or done < limit:
            item = source.next()
            if item is END:
                break
            args = self.make_args(item, carry)
            result = executor.run(self.program, args, self.registry)
            value = result.value
            if self.carry:
                carry = value
            sink.append(self.emit(value))
            items += 1
            done += 1
            fires += result.stats.tasks_fired
            _accumulate(stats, result.stats)
            if injector is not None:
                # May SIGKILL this process (masterkill) — everything
                # after this line must be redoable from the last
                # checkpoint, and is.
                injector.on_master_boundary()
            if (
                stop_after_items is not None
                and done >= stop_after_items
            ):
                # Simulated crash: no flush, no snapshot, just stop.
                return StreamResult(
                    items=items,
                    fires=fires,
                    wall_seconds=time.perf_counter() - began,
                    stats=stats,
                    checkpoints_written=checkpoints,
                    resumed_from=resumed_from,
                    sink_digest=sink.digest,
                    value=carry if self.carry else None,
                )
            if self.checkpoint_path is not None and (
                self.cadence.enabled and self.cadence.due(fires)
            ):
                t0 = time.perf_counter()
                seq += 1
                nbytes = self._snapshot(
                    source, sink, carry, items, fires, seq, stats
                )
                self.cadence.mark(fires)
                checkpoints += 1
                if bus is not None and bus.wants(CheckpointWritten):
                    bus.emit(
                        CheckpointWritten(
                            bus.now(),
                            self.checkpoint_path,
                            seq,
                            items,
                            fires,
                            nbytes,
                            time.perf_counter() - t0,
                        )
                    )

        sink.flush()
        if self.checkpoint_path is not None:
            t0 = time.perf_counter()
            seq += 1
            nbytes = self._snapshot(
                source, sink, carry, items, fires, seq, stats
            )
            self.cadence.mark(fires)
            checkpoints += 1
            if bus is not None and bus.wants(CheckpointWritten):
                bus.emit(
                    CheckpointWritten(
                        bus.now(),
                        self.checkpoint_path,
                        seq,
                        items,
                        fires,
                        nbytes,
                        time.perf_counter() - t0,
                    )
                )
        last = self.emit_last(sink)
        return StreamResult(
            items=items,
            fires=fires,
            wall_seconds=time.perf_counter() - began,
            stats=stats,
            checkpoints_written=checkpoints,
            resumed_from=resumed_from,
            sink_digest=sink.digest,
            value=carry if self.carry else last,
        )

    @staticmethod
    def emit_last(sink: Any) -> Any:
        items = getattr(sink, "items", None)
        if items:
            return items[-1]
        return None


def _accumulate(into: dict[str, float], stats: EngineStats) -> None:
    """Sum one run's numeric counters into the stream-wide totals."""
    for f in dataclasses.fields(stats):
        value = getattr(stats, f.name)
        if isinstance(value, (int, float)):
            into[f.name] = into.get(f.name, 0) + value
