"""Operator registry: embedding sequential code in Delirium.

In the original system, operators were sequential C or Fortran routines
compiled with existing tools and embedded in the coordination framework.
Here an operator is any Python callable registered with the runtime.  The
only coordination-relevant metadata — exactly as in the paper — is which
arguments the operator may **destructively modify** (``modifies``); the
runtime uses that declaration plus reference counts to guarantee
deterministic execution.

Optional metadata powers the rest of the environment:

``pure``
    No side effects and output determined by inputs.  Licenses
    common-subexpression and dead-code elimination in the compiler.
``foldable``
    Pure *and* safe to execute at compile time on literal arguments
    (constant propagation).
``cost``
    Simulated execution cost in ticks: a number, or a callable receiving
    the raw argument payloads.  Defaults let the machine models charge a
    small constant; the case studies install analytic costs so simulated
    speedup curves depend only on the dependency structure.
``arity``
    Expected argument count, checked at graph execution time.
"""

from __future__ import annotations

import functools
import operator as _pyop
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator

from ..errors import DeliriumError, UnknownOperatorError
from .values import NULL, MultiValue


@dataclass(frozen=True)
class OperatorSpec:
    """Metadata for one registered operator."""

    name: str
    fn: Callable[..., Any]
    modifies: frozenset[int] = frozenset()
    pure: bool = False
    foldable: bool = False
    cost: float | Callable[..., float] | None = None
    arity: int | None = None
    doc: str = ""

    def cost_ticks(self, args: tuple[Any, ...]) -> float | None:
        """Evaluate the cost hint for a concrete argument tuple."""
        if self.cost is None:
            return None
        if callable(self.cost):
            return float(self.cost(*args))
        return float(self.cost)

    def try_cost_ticks(self, args: tuple[Any, ...]) -> float | None:
        """Like :meth:`cost_ticks`, but ``None`` when the hint fails.

        Dispatch heuristics (is this operator worth shipping to a worker
        process?) probe costs on payloads the hint callable may not have
        been written for; a broken hint must never abort the run.
        """
        try:
            return self.cost_ticks(args)
        except Exception:  # noqa: BLE001 - hints are advisory only
            return None


class OperatorRegistry:
    """A named collection of operators.

    Registries compose: apps build theirs from :func:`builtin_registry`
    plus their own kernels.  Iteration order is insertion order, which
    keeps compiled artifacts deterministic.
    """

    def __init__(self, specs: Iterable[OperatorSpec] = ()) -> None:
        self._specs: dict[str, OperatorSpec] = {}
        for spec in specs:
            self.add(spec)

    # ------------------------------------------------------------------
    def add(self, spec: OperatorSpec) -> OperatorSpec:
        if spec.name in self._specs:
            raise DeliriumError(f"operator {spec.name!r} already registered")
        self._specs[spec.name] = spec
        return spec

    def register(
        self,
        name: str | None = None,
        *,
        modifies: Iterable[int] = (),
        pure: bool = False,
        foldable: bool = False,
        cost: float | Callable[..., float] | None = None,
        arity: int | None = None,
    ) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
        """Decorator: register the wrapped callable as an operator.

        Example::

            reg = OperatorRegistry()

            @reg.register(modifies=(0,), cost=lambda b, q, l: 50.0)
            def add_queen(board, queen, location):
                board[queen - 1] = location
                return board
        """

        def decorate(fn: Callable[..., Any]) -> Callable[..., Any]:
            op_name = name or fn.__name__
            self.add(
                OperatorSpec(
                    name=op_name,
                    fn=fn,
                    modifies=frozenset(modifies),
                    pure=pure,
                    foldable=foldable or (pure and foldable),
                    cost=cost,
                    arity=arity,
                    doc=(fn.__doc__ or "").strip(),
                )
            )
            return fn

        return decorate

    # ------------------------------------------------------------------
    def get(self, name: str) -> OperatorSpec:
        try:
            return self._specs[name]
        except KeyError:
            raise UnknownOperatorError(name) from None

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __iter__(self) -> Iterator[OperatorSpec]:
        return iter(self._specs.values())

    def __len__(self) -> int:
        return len(self._specs)

    def names(self) -> set[str]:
        return set(self._specs)

    def pure_names(self) -> set[str]:
        return {s.name for s in self._specs.values() if s.pure}

    def merged_with(self, other: "OperatorRegistry") -> "OperatorRegistry":
        """A new registry containing both sides (``other`` wins clashes)."""
        merged = OperatorRegistry()
        merged._specs.update(self._specs)
        merged._specs.update(other._specs)
        return merged


# ---------------------------------------------------------------------------
# Built-in operators
# ---------------------------------------------------------------------------


def _pure(reg: OperatorRegistry, name: str, fn: Callable[..., Any], arity: int) -> None:
    reg.add(
        OperatorSpec(
            name=name,
            fn=fn,
            pure=True,
            foldable=True,
            cost=1.0,
            arity=arity,
            doc=(fn.__doc__ or "").strip(),
        )
    )


def _is_null(x: Any) -> int:
    """1 when the argument is NULL, else 0."""
    return 1 if x is NULL else 0


def _merge_variadic(*items: Any) -> Any:
    """Collect results, dropping NULLs, into a flat list.

    This mirrors the paper's eight-queens ``merge``: failed tries return
    NULL and successful subtrees return solutions or solution lists.
    """
    out: list[Any] = []
    for item in items:
        if item is NULL:
            continue
        if isinstance(item, list):
            out.extend(item)
        else:
            out.append(item)
    return out


@functools.lru_cache(maxsize=1)
def builtin_registry() -> OperatorRegistry:
    """The standard operators every program may assume.

    All are pure and foldable, tiny-cost scalar helpers — the Delirium
    analogue of the host language's expression syntax (the language itself
    has no infix operators; the paper's examples use ``incr``,
    ``is_equal``, ``is_not_equal``).  The returned registry is cached and
    must be treated as read-only; compose with :meth:`merged_with`.
    """
    reg = OperatorRegistry()
    _pure(reg, "incr", lambda x: x + 1, 1)
    _pure(reg, "decr", lambda x: x - 1, 1)
    _pure(reg, "add", _pyop.add, 2)
    _pure(reg, "sub", _pyop.sub, 2)
    _pure(reg, "mul", _pyop.mul, 2)
    _pure(reg, "div", lambda a, b: a / b, 2)
    _pure(reg, "idiv", lambda a, b: a // b, 2)
    _pure(reg, "mod", lambda a, b: a % b, 2)
    _pure(reg, "neg", lambda a: -a, 1)
    _pure(reg, "min2", min, 2)
    _pure(reg, "max2", max, 2)
    _pure(reg, "is_equal", lambda a, b: 1 if a == b else 0, 2)
    _pure(reg, "is_not_equal", lambda a, b: 1 if a != b else 0, 2)
    _pure(reg, "is_less", lambda a, b: 1 if a < b else 0, 2)
    _pure(reg, "is_less_equal", lambda a, b: 1 if a <= b else 0, 2)
    _pure(reg, "is_greater", lambda a, b: 1 if a > b else 0, 2)
    _pure(reg, "is_greater_equal", lambda a, b: 1 if a >= b else 0, 2)
    _pure(reg, "not", lambda a: 0 if a else 1, 1)
    _pure(reg, "and", lambda a, b: 1 if (a and b) else 0, 2)
    _pure(reg, "or", lambda a, b: 1 if (a or b) else 0, 2)
    _pure(reg, "is_null", _is_null, 1)
    _pure(reg, "identity", lambda x: x, 1)
    reg.add(
        OperatorSpec(
            name="merge",
            fn=_merge_variadic,
            pure=True,
            foldable=False,  # variadic; keep it out of the constant folder
            cost=1.0,
            arity=None,
            doc=_merge_variadic.__doc__ or "",
        )
    )
    # --- list and package helpers for the coordination-structure prelude
    # (the section 9.2 extension: dynamic-width parallelism).  ``element``
    # copies mutable payloads defensively: pulling an interior mutable
    # object out of a package would otherwise alias it behind the
    # reference counter's back.  Zero-copy decomposition is what the
    # ``<a, b, c> = pkg`` binding form is for.
    import copy as _copy

    def _element(pkg: Any, i: int) -> Any:
        value = pkg[i]
        if isinstance(value, IMMUTABLE_PRELUDE_TYPES) or value is NULL:
            return value
        return _copy.deepcopy(value)

    _pure(reg, "pkg_len", lambda pkg: len(pkg), 1)
    reg.add(
        OperatorSpec(
            name="element",
            fn=_element,
            pure=True,
            foldable=False,
            cost=2.0,
            arity=2,
            doc=(_element.__doc__ or "package element access (copying)"),
        )
    )
    _pure(reg, "nil", lambda: [], 0)
    _pure(reg, "list1", lambda x: [x], 1)
    _pure(reg, "append2", lambda a, b: list(a) + list(b), 2)
    return reg


#: Types ``element`` may return without copying.
IMMUTABLE_PRELUDE_TYPES = (int, float, complex, bool, str, bytes, frozenset)


def default_registry() -> OperatorRegistry:
    """A fresh, extensible registry pre-populated with the builtins."""
    return OperatorRegistry().merged_with(builtin_registry())


def unwrap_multivalue(value: Any) -> Any:
    """Convert a MultiValue to a tuple for operator consumption."""
    if isinstance(value, MultiValue):
        return tuple(unwrap_multivalue(v) for v in value.items)
    return value
