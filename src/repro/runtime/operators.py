"""Operator registry: embedding sequential code in Delirium.

In the original system, operators were sequential C or Fortran routines
compiled with existing tools and embedded in the coordination framework.
Here an operator is any Python callable registered with the runtime.  The
only coordination-relevant metadata — exactly as in the paper — is which
arguments the operator may **destructively modify** (``modifies``); the
runtime uses that declaration plus reference counts to guarantee
deterministic execution.

Optional metadata powers the rest of the environment:

``pure``
    No side effects and output determined by inputs.  Licenses
    common-subexpression and dead-code elimination in the compiler.
``foldable``
    Pure *and* safe to execute at compile time on literal arguments
    (constant propagation).
``cost``
    Simulated execution cost in ticks: a number, or a callable receiving
    the raw argument payloads.  Defaults let the machine models charge a
    small constant; the case studies install analytic costs so simulated
    speedup curves depend only on the dependency structure.
``arity``
    Expected argument count, checked at graph execution time.
``batch``
    Opt-in vectorized protocol: a callable receiving a *list of argument
    tuples* (N firings of the same operator) and returning N results in
    order.  Executors that coalesce same-node firings into one batch call
    it through :func:`batch_call`, which falls back to a plain loop over
    ``fn`` when no vectorized form is registered — results are required
    to be bit-identical either way (the batching property suite enforces
    it).  Batched operators must not declare ``modifies``: a vectorized
    body has no per-firing copy-on-write boundary.
"""

from __future__ import annotations

import functools
import operator as _pyop
from dataclasses import dataclass, replace
from typing import Any, Callable, Iterable, Iterator

from ..errors import DeliriumError, RuntimeFailure, UnknownOperatorError
from .values import NULL, MultiValue


@dataclass(frozen=True)
class OperatorSpec:
    """Metadata for one registered operator."""

    name: str
    fn: Callable[..., Any]
    modifies: frozenset[int] = frozenset()
    pure: bool = False
    foldable: bool = False
    cost: float | Callable[..., float] | None = None
    arity: int | None = None
    doc: str = ""
    #: Optional vectorized form: ``batch_fn(args_lists)`` executes N
    #: firings (one argument tuple each) and returns their N results in
    #: order.  ``None`` (the default) means :func:`batch_call` loops over
    #: ``fn`` — batching then still wins on scheduling and IPC, just not
    #: on kernel vectorization.
    batch_fn: Callable[[list[tuple[Any, ...]]], Any] | None = None

    def cost_ticks(self, args: tuple[Any, ...]) -> float | None:
        """Evaluate the cost hint for a concrete argument tuple."""
        if self.cost is None:
            return None
        if callable(self.cost):
            return float(self.cost(*args))
        return float(self.cost)

    def try_cost_ticks(self, args: tuple[Any, ...]) -> float | None:
        """Like :meth:`cost_ticks`, but ``None`` when the hint fails.

        Dispatch heuristics (is this operator worth shipping to a worker
        process?) probe costs on payloads the hint callable may not have
        been written for; a broken hint must never abort the run.
        """
        try:
            return self.cost_ticks(args)
        except Exception:  # noqa: BLE001 - hints are advisory only
            return None


class OperatorRegistry:
    """A named collection of operators.

    Registries compose: apps build theirs from :func:`builtin_registry`
    plus their own kernels.  Iteration order is insertion order, which
    keeps compiled artifacts deterministic.
    """

    def __init__(self, specs: Iterable[OperatorSpec] = ()) -> None:
        self._specs: dict[str, OperatorSpec] = {}
        for spec in specs:
            self.add(spec)

    # ------------------------------------------------------------------
    def add(self, spec: OperatorSpec) -> OperatorSpec:
        if spec.name in self._specs:
            raise DeliriumError(f"operator {spec.name!r} already registered")
        self._specs[spec.name] = spec
        return spec

    def register(
        self,
        name: str | None = None,
        *,
        modifies: Iterable[int] = (),
        pure: bool = False,
        foldable: bool = False,
        cost: float | Callable[..., float] | None = None,
        arity: int | None = None,
        batch: Callable[[list[tuple[Any, ...]]], Any] | None = None,
    ) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
        """Decorator: register the wrapped callable as an operator.

        ``batch`` opts the operator into the vectorized protocol: it
        receives a list of argument tuples (N coalesced firings) and must
        return their N results in order, bit-identical to N calls of the
        plain function.

        Example::

            reg = OperatorRegistry()

            @reg.register(modifies=(0,), cost=lambda b, q, l: 50.0)
            def add_queen(board, queen, location):
                board[queen - 1] = location
                return board
        """

        def decorate(fn: Callable[..., Any]) -> Callable[..., Any]:
            op_name = name or fn.__name__
            mods = frozenset(modifies)
            if batch is not None and mods:
                raise DeliriumError(
                    f"operator {op_name!r} cannot register a batch form: "
                    f"it declares modifies={sorted(mods)} (vectorized "
                    "bodies have no per-firing copy-on-write boundary)"
                )
            self.add(
                OperatorSpec(
                    name=op_name,
                    fn=fn,
                    modifies=mods,
                    pure=pure,
                    foldable=foldable or (pure and foldable),
                    cost=cost,
                    arity=arity,
                    doc=(fn.__doc__ or "").strip(),
                    batch_fn=batch,
                )
            )
            return fn

        return decorate

    # ------------------------------------------------------------------
    def get(self, name: str) -> OperatorSpec:
        try:
            return self._specs[name]
        except KeyError:
            raise UnknownOperatorError(name) from None

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __iter__(self) -> Iterator[OperatorSpec]:
        return iter(self._specs.values())

    def __len__(self) -> int:
        return len(self._specs)

    def names(self) -> set[str]:
        return set(self._specs)

    def pure_names(self) -> set[str]:
        return {s.name for s in self._specs.values() if s.pure}

    def merged_with(self, other: "OperatorRegistry") -> "OperatorRegistry":
        """A new registry containing both sides (``other`` wins clashes)."""
        merged = OperatorRegistry()
        merged._specs.update(self._specs)
        merged._specs.update(other._specs)
        return merged


# ---------------------------------------------------------------------------
# Built-in operators
# ---------------------------------------------------------------------------


def _pure(reg: OperatorRegistry, name: str, fn: Callable[..., Any], arity: int) -> None:
    reg.add(
        OperatorSpec(
            name=name,
            fn=fn,
            pure=True,
            foldable=True,
            cost=1.0,
            arity=arity,
            doc=(fn.__doc__ or "").strip(),
        )
    )


def _is_null(x: Any) -> int:
    """1 when the argument is NULL, else 0."""
    return 1 if x is NULL else 0


def _merge_variadic(*items: Any) -> Any:
    """Collect results, dropping NULLs, into a flat list.

    This mirrors the paper's eight-queens ``merge``: failed tries return
    NULL and successful subtrees return solutions or solution lists.
    """
    out: list[Any] = []
    for item in items:
        if item is NULL:
            continue
        if isinstance(item, list):
            out.extend(item)
        else:
            out.append(item)
    return out


@functools.lru_cache(maxsize=1)
def builtin_registry() -> OperatorRegistry:
    """The standard operators every program may assume.

    All are pure and foldable, tiny-cost scalar helpers — the Delirium
    analogue of the host language's expression syntax (the language itself
    has no infix operators; the paper's examples use ``incr``,
    ``is_equal``, ``is_not_equal``).  The returned registry is cached and
    must be treated as read-only; compose with :meth:`merged_with`.
    """
    reg = OperatorRegistry()
    _pure(reg, "incr", lambda x: x + 1, 1)
    _pure(reg, "decr", lambda x: x - 1, 1)
    _pure(reg, "add", _pyop.add, 2)
    _pure(reg, "sub", _pyop.sub, 2)
    _pure(reg, "mul", _pyop.mul, 2)
    _pure(reg, "div", lambda a, b: a / b, 2)
    _pure(reg, "idiv", lambda a, b: a // b, 2)
    _pure(reg, "mod", lambda a, b: a % b, 2)
    _pure(reg, "neg", lambda a: -a, 1)
    _pure(reg, "min2", min, 2)
    _pure(reg, "max2", max, 2)
    _pure(reg, "is_equal", lambda a, b: 1 if a == b else 0, 2)
    _pure(reg, "is_not_equal", lambda a, b: 1 if a != b else 0, 2)
    _pure(reg, "is_less", lambda a, b: 1 if a < b else 0, 2)
    _pure(reg, "is_less_equal", lambda a, b: 1 if a <= b else 0, 2)
    _pure(reg, "is_greater", lambda a, b: 1 if a > b else 0, 2)
    _pure(reg, "is_greater_equal", lambda a, b: 1 if a >= b else 0, 2)
    _pure(reg, "not", lambda a: 0 if a else 1, 1)
    _pure(reg, "and", lambda a, b: 1 if (a and b) else 0, 2)
    _pure(reg, "or", lambda a, b: 1 if (a or b) else 0, 2)
    _pure(reg, "is_null", _is_null, 1)
    _pure(reg, "identity", lambda x: x, 1)
    reg.add(
        OperatorSpec(
            name="merge",
            fn=_merge_variadic,
            pure=True,
            foldable=False,  # variadic; keep it out of the constant folder
            cost=1.0,
            arity=None,
            doc=_merge_variadic.__doc__ or "",
        )
    )
    # --- list and package helpers for the coordination-structure prelude
    # (the section 9.2 extension: dynamic-width parallelism).  ``element``
    # copies mutable payloads defensively: pulling an interior mutable
    # object out of a package would otherwise alias it behind the
    # reference counter's back.  Zero-copy decomposition is what the
    # ``<a, b, c> = pkg`` binding form is for.
    import copy as _copy

    def _element(pkg: Any, i: int) -> Any:
        value = pkg[i]
        if isinstance(value, IMMUTABLE_PRELUDE_TYPES) or value is NULL:
            return value
        return _copy.deepcopy(value)

    _pure(reg, "pkg_len", lambda pkg: len(pkg), 1)
    reg.add(
        OperatorSpec(
            name="element",
            fn=_element,
            pure=True,
            foldable=False,
            cost=2.0,
            arity=2,
            doc=(_element.__doc__ or "package element access (copying)"),
        )
    )
    _pure(reg, "nil", lambda: [], 0)
    _pure(reg, "list1", lambda x: [x], 1)
    _pure(reg, "append2", lambda a, b: list(a) + list(b), 2)
    return reg


#: Types ``element`` may return without copying.
IMMUTABLE_PRELUDE_TYPES = (int, float, complex, bool, str, bytes, frozenset)


def default_registry() -> OperatorRegistry:
    """A fresh, extensible registry pre-populated with the builtins."""
    return OperatorRegistry().merged_with(builtin_registry())


# ---------------------------------------------------------------------------
# Fused operators (compiler fusion pass support)
# ---------------------------------------------------------------------------

#: ``Node.fused`` recipe type: ``(steps, untuple_n)`` where each step is
#: ``(op_name, arg_refs)`` and each arg ref is ``("i", k)`` — the fused
#: node's k-th input — or ``("t", j)`` — the j-th step's result.
FusedChain = tuple[tuple[tuple[str, tuple[tuple[str, int], ...]], ...], int]


def compose_fused(
    name: str,
    steps: tuple[tuple[str, tuple[tuple[str, int], ...]], ...],
    untuple_n: int,
    registry: OperatorRegistry,
) -> OperatorSpec:
    """Build the composed :class:`OperatorSpec` for one fused chain.

    The callable runs every member operator in chain order inside one
    Python frame — one fire, one dispatch, one set of queue/activation
    bookkeeping for the whole chain.  Composition happens at run time
    against whatever registry is present (the master's or a worker's), so
    fused graphs serialize like any other: the recipe is metadata, never
    pickled code.

    Cost model: a single-step chain (a split whose ``untuple`` was
    absorbed) passes the member's cost hint through unchanged — the
    arguments are identical.  Multi-step chains sum the members' numeric
    hints; if any member's hint is a callable (its arguments would no
    longer line up) the fused spec carries no hint and dispatch falls back
    to the payload-size test.
    """
    plan: list[tuple[Callable[..., Any], tuple[tuple[str, int], ...]]] = []
    pure = True
    costs: list[float | Callable[..., float] | None] = []
    n_inputs = 0
    for op_name, arg_refs in steps:
        spec = registry.get(op_name)
        if spec.modifies:
            raise DeliriumError(
                f"cannot fuse operator {op_name!r}: it declares modifies="
                f"{sorted(spec.modifies)}"
            )
        plan.append((spec.fn, tuple(arg_refs)))
        pure = pure and spec.pure
        costs.append(spec.cost)
        for kind, k in arg_refs:
            if kind == "i":
                n_inputs = max(n_inputs, k + 1)

    cost: float | Callable[..., float] | None
    if len(costs) == 1:
        cost = costs[0]
    else:
        total = 0.0
        cost = 0.0
        for c in costs:
            if isinstance(c, (int, float)):
                total += float(c)
            else:
                cost = None
                break
        if cost is not None:
            cost = total

    if len(plan) == 1:
        # Single-step chain (split + absorbed untuple): call the member
        # directly — no per-step indirection at all.
        fused_fn = plan[0][0]
    else:
        run_plan = tuple(plan)

        def fused_fn(*args: Any) -> Any:
            tmps: list[Any] = []
            append = tmps.append
            for fn, refs in run_plan:
                append(
                    fn(*[args[k] if kind == "i" else tmps[k] for kind, k in refs])
                )
            return tmps[-1]

    doc_chain = ">".join(op_name for op_name, _ in steps)
    if untuple_n:
        doc_chain += f">untuple{untuple_n}"
    return OperatorSpec(
        name=name,
        fn=fused_fn,
        modifies=frozenset(),
        pure=pure,
        foldable=False,
        cost=cost,
        arity=n_inputs,
        doc=f"fused chain: {doc_chain}",
    )


def batch_call(
    spec: OperatorSpec, args_lists: list[tuple[Any, ...]]
) -> list[Any]:
    """Execute N firings of one operator, vectorized when possible.

    The single entry point of the batched execution path's operator
    protocol: when ``spec`` registered a vectorized form it runs once
    over the whole batch; otherwise the fallback is a plain loop over
    ``spec.fn`` — same results, one call frame per firing.  A vectorized
    form that returns the wrong number of results is a contract
    violation and raises :class:`~repro.errors.RuntimeFailure` (silently
    mis-aligning results with firings would corrupt single-assignment
    state).
    """
    fn = spec.batch_fn
    if fn is None:
        call = spec.fn
        return [call(*args) for args in args_lists]
    results = list(fn(args_lists))
    if len(results) != len(args_lists):
        raise RuntimeFailure(
            f"batch form of operator {spec.name!r} returned "
            f"{len(results)} result(s) for {len(args_lists)} firing(s)"
        )
    return results


#: Name of the factory every generated codegen source must define.  The
#: codegen pass emits sources shaped ``def _delirium_bind(_f0, ...): ...``;
#: each process compiles the text and calls the binder with the member
#: operator functions from its *own* registry (closure cells, so calls in
#: the generated body are plain ``LOAD_DEREF`` + ``CALL``).
CODEGEN_BINDER_NAME = "_delirium_bind"

#: Name of the *batch* factory the ``batch`` lowering pass appends to
#: generated codegen sources: ``def _delirium_bind_batch(_f0, ...)``
#: returns a callable with the :attr:`OperatorSpec.batch_fn` signature
#: (list of argument tuples in, list of results out) that loops the
#: specialized fused body inside one generated frame.  Optional — plain
#: codegen sources simply have no batch binder and the chain stays
#: unbatchable at the vectorized level.
BATCH_BINDER_NAME = "_delirium_bind_batch"


#: Sticky flag: a failed ``import numba`` walks ``sys.path`` every time,
#: which is far too slow to repeat once per binding.
_NUMBA_ABSENT = False

#: Compiled code objects by source text.  Generated sources are pure
#: functions of the recipe, so the text is a safe process-wide key; the
#: (cheap) ``exec`` + bind still runs per registry.
_CODE_CACHE: dict[str, Any] = {}


def _maybe_jit(fn: Callable[..., Any], member_fns: list) -> Callable[..., Any]:
    """Optional numba tier: jit the generated body when every member is
    already a numba dispatcher (``pip install delirium[jit]``).  Absent
    numba, non-dispatcher members, or a failed compile all fall back to
    the plain Python function silently — results are identical either way.
    """
    global _NUMBA_ABSENT
    if _NUMBA_ABSENT:
        return fn
    try:
        import numba
    except Exception:
        _NUMBA_ABSENT = True
        return fn
    try:
        dispatcher = numba.core.dispatcher.Dispatcher
        if not member_fns or not all(isinstance(m, dispatcher) for m in member_fns):
            return fn
        return numba.njit(fn)
    except Exception:
        return fn


def bind_codegen(
    source: str,
    steps: tuple[tuple[str, tuple[tuple[str, int], ...]], ...],
    registry: OperatorRegistry,
    name: str = "<fused>",
    jit: bool = True,
) -> Callable[..., Any]:
    """Compile generated codegen ``source`` and bind it against ``registry``.

    Returns the specialized callable for the chain.  Binding always uses
    the *calling* process's registry — a serialized graph only ships the
    source text, and a substituted registry (tests, workers) must win over
    whatever was present at compile time.
    """
    namespace: dict[str, Any] = {}
    code = _CODE_CACHE.get(source)
    if code is None:
        code = _CODE_CACHE[source] = compile(
            source, f"<delirium-codegen {name}>", "exec"
        )
    exec(code, namespace)
    member_fns = [registry.get(op_name).fn for op_name, _ in steps]
    fn = namespace[CODEGEN_BINDER_NAME](*member_fns)
    if jit and len(steps) > 1:
        fn = _maybe_jit(fn, member_fns)
    return fn


def bind_codegen_batch(
    source: str,
    steps: tuple[tuple[str, tuple[tuple[str, int], ...]], ...],
    registry: OperatorRegistry,
    name: str = "<fused>",
) -> Callable[[list[tuple[Any, ...]]], Any] | None:
    """Bind the batch binder of a generated source, when it has one.

    Returns a ``batch_fn``-shaped callable for chains the ``batch``
    lowering pass extended with :data:`BATCH_BINDER_NAME`, or ``None``
    for plain codegen sources (the chain then falls back to
    :func:`batch_call`'s loop when batched).  Shares the compiled-code
    cache with :func:`bind_codegen` — the source text is the key.
    """
    if BATCH_BINDER_NAME not in source:
        return None
    namespace: dict[str, Any] = {}
    code = _CODE_CACHE.get(source)
    if code is None:
        code = _CODE_CACHE[source] = compile(
            source, f"<delirium-codegen {name}>", "exec"
        )
    exec(code, namespace)
    binder = namespace.get(BATCH_BINDER_NAME)
    if binder is None:  # pragma: no cover - name mentioned in a comment
        return None
    member_fns = [registry.get(op_name).fn for op_name, _ in steps]
    return binder(*member_fns)


def node_spec(
    registry: OperatorRegistry,
    node: Any,
    cache: dict[str, OperatorSpec] | None = None,
) -> OperatorSpec:
    """Resolve the spec for an ``OP`` node, composing fused bodies.

    ``cache`` (name -> spec) amortizes composition; fused names encode
    their full recipe, so a name is a safe cache key.  A node lowered by
    the codegen pass re-binds its generated source here instead of using
    the interpreted replay — metadata (cost, purity, arity) is identical,
    so dispatch decisions don't change, only the call body does.
    """
    fused = node.fused
    if fused is None:
        return registry.get(node.name)
    if cache is not None:
        spec = cache.get(node.name)
        if spec is not None:
            return spec
    spec = compose_fused(node.name, fused[0], fused[1], registry)
    codegen = getattr(node, "codegen", None)
    if codegen is not None:
        spec = replace(
            spec,
            fn=bind_codegen(codegen, fused[0], registry, name=node.name),
            batch_fn=bind_codegen_batch(
                codegen, fused[0], registry, name=node.name
            ),
        )
    if cache is not None:
        cache[node.name] = spec
    return spec


def collect_fused_chains(program: Any) -> dict[str, FusedChain]:
    """Every fused recipe in a compiled program, keyed by fused node name.

    The table is plain picklable data; :class:`~repro.runtime.workers.
    WorkerPool` ships it to worker processes so they can compose the same
    callables against their own registries (fork- and spawn-safe).
    """
    chains: dict[str, FusedChain] = {}
    for template in program.templates.values():
        for node in template.nodes:
            if node.fused is not None:
                chains[node.name] = node.fused
    return chains


def collect_codegen_sources(program: Any) -> dict[str, str]:
    """Generated codegen source per fused node name, for shipping.

    Mirrors :func:`collect_fused_chains`: plain picklable strings that a
    worker process ``exec``\\ s and binds against its own registry.  Empty
    when the codegen pass didn't run.
    """
    sources: dict[str, str] = {}
    for template in program.templates.values():
        for node in template.nodes:
            codegen = getattr(node, "codegen", None)
            if node.fused is not None and codegen is not None:
                sources[node.name] = codegen
    return sources


def unwrap_multivalue(value: Any) -> Any:
    """Convert a MultiValue to a tuple for operator consumption."""
    if isinstance(value, MultiValue):
        return tuple(unwrap_multivalue(v) for v in value.items)
    return value
