"""The Delirium runtime: values, blocks, operators, engine, executors."""

from .activation import Activation, ActivationPool
from .blocks import (
    DataBlock,
    get_block_hook,
    release,
    retain,
    set_block_hook,
    unwrap,
    wrap_payload,
)
from .engine import (
    EngineStats,
    ExecutionState,
    FireOutcome,
    PendingOp,
    PurityViolationError,
)
from .executors import (
    ProcessExecutor,
    RunResult,
    SequentialExecutor,
    ThreadedExecutor,
)
from .operators import (
    OperatorRegistry,
    OperatorSpec,
    builtin_registry,
    default_registry,
)
from .scheduler import (
    PRIORITY_CALL,
    PRIORITY_NORMAL,
    PRIORITY_RECURSIVE_CALL,
    ReadyQueue,
    Task,
)
from .supervise import FaultPolicy, Supervisor, run_with_retries
from .tracing import NodeTiming, Tracer
from .values import NULL, Closure, MultiValue, OperatorValue, is_truthy
from .workers import DispatchPolicy, RegistryRef, WorkerPool

__all__ = [
    "Activation",
    "ActivationPool",
    "Closure",
    "DataBlock",
    "DispatchPolicy",
    "EngineStats",
    "ExecutionState",
    "FaultPolicy",
    "FireOutcome",
    "MultiValue",
    "NULL",
    "NodeTiming",
    "OperatorRegistry",
    "OperatorSpec",
    "OperatorValue",
    "PRIORITY_CALL",
    "PRIORITY_NORMAL",
    "PRIORITY_RECURSIVE_CALL",
    "PendingOp",
    "ProcessExecutor",
    "PurityViolationError",
    "ReadyQueue",
    "RegistryRef",
    "RunResult",
    "SequentialExecutor",
    "Supervisor",
    "Task",
    "ThreadedExecutor",
    "Tracer",
    "WorkerPool",
    "builtin_registry",
    "default_registry",
    "get_block_hook",
    "is_truthy",
    "release",
    "set_block_hook",
    "retain",
    "run_with_retries",
    "unwrap",
    "wrap_payload",
]
