"""The Delirium runtime: values, blocks, operators, engine, executors."""

from .activation import Activation, ActivationPool
from .checkpoint import (
    Checkpoint,
    CheckpointCadence,
    CheckpointError,
    CheckpointMismatchError,
    read_checkpoint,
    write_checkpoint,
)
from .blocks import (
    DataBlock,
    get_block_hook,
    release,
    retain,
    set_block_hook,
    unwrap,
    wrap_payload,
)
from .engine import (
    EngineStats,
    ExecutionState,
    FireOutcome,
    PendingOp,
    PurityViolationError,
)
from .executors import (
    ProcessExecutor,
    RunResult,
    SequentialExecutor,
    ThreadedExecutor,
)
from .operators import (
    OperatorRegistry,
    OperatorSpec,
    builtin_registry,
    default_registry,
)
from .scheduler import (
    PRIORITY_CALL,
    PRIORITY_NORMAL,
    PRIORITY_RECURSIVE_CALL,
    ReadyQueue,
    Task,
)
from .stream import (
    END,
    CallableSource,
    JsonlSink,
    LineSource,
    MemorySink,
    StreamError,
    StreamResult,
    StreamRunner,
    count_source,
)
from .supervise import FaultPolicy, Supervisor, run_with_retries
from .tracing import NodeTiming, Tracer
from .values import NULL, Closure, MultiValue, OperatorValue, is_truthy
from .workers import (
    DispatchPolicy,
    RegistryRef,
    WorkerPool,
    cleanup_arenas,
    install_arena_signal_cleanup,
)

__all__ = [
    "Activation",
    "ActivationPool",
    "CallableSource",
    "Checkpoint",
    "CheckpointCadence",
    "CheckpointError",
    "CheckpointMismatchError",
    "Closure",
    "DataBlock",
    "DispatchPolicy",
    "END",
    "EngineStats",
    "ExecutionState",
    "FaultPolicy",
    "FireOutcome",
    "JsonlSink",
    "LineSource",
    "MemorySink",
    "MultiValue",
    "NULL",
    "NodeTiming",
    "OperatorRegistry",
    "OperatorSpec",
    "OperatorValue",
    "PRIORITY_CALL",
    "PRIORITY_NORMAL",
    "PRIORITY_RECURSIVE_CALL",
    "PendingOp",
    "ProcessExecutor",
    "PurityViolationError",
    "ReadyQueue",
    "RegistryRef",
    "RunResult",
    "SequentialExecutor",
    "StreamError",
    "StreamResult",
    "StreamRunner",
    "Supervisor",
    "Task",
    "ThreadedExecutor",
    "Tracer",
    "WorkerPool",
    "builtin_registry",
    "cleanup_arenas",
    "count_source",
    "default_registry",
    "get_block_hook",
    "install_arena_signal_cleanup",
    "is_truthy",
    "read_checkpoint",
    "release",
    "set_block_hook",
    "retain",
    "run_with_retries",
    "unwrap",
    "wrap_payload",
    "write_checkpoint",
]
