"""Execution tracing: node timings and event logs.

The paper's programming environment prints "the amount of time each of the
nodes in the graph took to execute" — the tool that exposed the retina
model's ``post_up`` bottleneck (section 5.2) and the compiler's unbalanced
tree division (section 6.3).  :class:`Tracer` collects per-node records in
whatever time unit the executor uses (wall seconds for the real executors,
ticks for the simulated machines); :mod:`repro.tools.timing_report`
formats them in the paper's ``call of X took N`` style.

Since the observability subsystem landed, the tracer is a thin subscriber
on the runtime event bus: executors emit one
:class:`~repro.obs.events.TaskFired` span per node firing, and
:meth:`Tracer.attach` turns each into a :class:`NodeTiming` record.  The
direct :meth:`Tracer.record` API remains for tools that build traces by
hand.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, TypeVar

from ..obs.events import EventBus, TaskFired

_A = TypeVar("_A")


@dataclass(frozen=True, slots=True)
class NodeTiming:
    """One node execution record."""

    label: str          #: node label (operator name for OP nodes)
    kind: str           #: node kind value ("op", "call", ...)
    ticks: float        #: duration in the executor's time unit
    start: float = 0.0  #: start time (simulated executors only)
    processor: int = 0  #: executing processor (simulated executors only)


@dataclass
class Tracer:
    """Accumulates node timings during one run."""

    records: list[NodeTiming] = field(default_factory=list)

    def record(
        self,
        label: str,
        kind: str,
        ticks: float,
        start: float = 0.0,
        processor: int = 0,
    ) -> None:
        self.records.append(NodeTiming(label, kind, ticks, start, processor))

    def attach(self, bus: EventBus) -> Callable[[], None]:
        """Subscribe to ``bus``: record every task-firing span.

        Returns the unsubscribe callable.
        """

        def on_fired(event: TaskFired) -> None:
            self.records.append(
                NodeTiming(
                    event.label,
                    event.kind,
                    event.duration,
                    event.ts,
                    event.processor,
                )
            )

        return bus.subscribe(on_fired, events=(TaskFired,))

    # ------------------------------------------------------------------
    def op_records(self) -> list[NodeTiming]:
        """Only operator executions (what the paper's dumps show)."""
        return [r for r in self.records if r.kind == "op"]

    def aggregate_by_label(
        self, combine: Callable[[_A, float], _A], initial: _A
    ) -> dict[str, _A]:
        """Fold each record's duration into a per-label accumulator.

        The one grouped-aggregation primitive behind the ``*_by_label``
        views; insertion-ordered by first appearance of each label.
        """
        out: dict[str, _A] = {}
        for r in self.records:
            out[r.label] = combine(out.get(r.label, initial), r.ticks)
        return out

    def totals_by_label(self) -> dict[str, float]:
        """Total time per label, insertion-ordered."""
        return self.aggregate_by_label(lambda acc, t: acc + t, 0.0)

    def count_by_label(self) -> dict[str, int]:
        return self.aggregate_by_label(lambda acc, _t: acc + 1, 0)

    def max_by_label(self) -> dict[str, float]:
        return self.aggregate_by_label(max, 0.0)

    def total_ticks(self) -> float:
        return sum(r.ticks for r in self.records)
