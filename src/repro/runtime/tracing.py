"""Execution tracing: node timings and event logs.

The paper's programming environment prints "the amount of time each of the
nodes in the graph took to execute" — the tool that exposed the retina
model's ``post_up`` bottleneck (section 5.2) and the compiler's unbalanced
tree division (section 6.3).  :class:`Tracer` collects per-node records in
whatever time unit the executor uses (wall seconds for the real executors,
ticks for the simulated machines); :mod:`repro.tools.timing_report`
formats them in the paper's ``call of X took N`` style.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class NodeTiming:
    """One node execution record."""

    label: str          #: node label (operator name for OP nodes)
    kind: str           #: node kind value ("op", "call", ...)
    ticks: float        #: duration in the executor's time unit
    start: float = 0.0  #: start time (simulated executors only)
    processor: int = 0  #: executing processor (simulated executors only)


@dataclass
class Tracer:
    """Accumulates node timings during one run."""

    records: list[NodeTiming] = field(default_factory=list)

    def record(
        self,
        label: str,
        kind: str,
        ticks: float,
        start: float = 0.0,
        processor: int = 0,
    ) -> None:
        self.records.append(NodeTiming(label, kind, ticks, start, processor))

    # ------------------------------------------------------------------
    def op_records(self) -> list[NodeTiming]:
        """Only operator executions (what the paper's dumps show)."""
        return [r for r in self.records if r.kind == "op"]

    def totals_by_label(self) -> dict[str, float]:
        """Total time per label, insertion-ordered."""
        out: dict[str, float] = {}
        for r in self.records:
            out[r.label] = out.get(r.label, 0.0) + r.ticks
        return out

    def count_by_label(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for r in self.records:
            out[r.label] = out.get(r.label, 0) + 1
        return out

    def max_by_label(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for r in self.records:
            out[r.label] = max(out.get(r.label, 0.0), r.ticks)
        return out

    def total_ticks(self) -> float:
        return sum(r.ticks for r in self.records)
