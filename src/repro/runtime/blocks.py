"""Reference-counted data blocks with copy-on-write.

Section 2.1 of the paper: "The Delirium run time system uses this
information to enforce determinism.  It maintains reference counts in the
data blocks, copying them when two or more operators need simultaneous
write access."

The reference count of a block equals the number of *input slots* currently
holding it (plus one pinned reference per closure capture, a deliberate
conservatism documented below).  When an operator that declared it
*modifies* argument ``i`` fires:

* if the block's count is 1, the operator holds the sole reference and may
  write the payload in place (the fast path the paper's "merging is free"
  idiom relies on);
* otherwise the engine copies the block first and hands the operator the
  private copy — no other consumer can ever observe the write.

Closure captures pin one extra reference for the closure's lifetime, so a
captured block is always treated as shared.  This is conservative (a copy
where the 1990 system might have mutated in place) but never wrong, and
matches the paper's advice that programmers arrange the data flow so large
structures are not captured and mutated simultaneously.

Blocks also carry a *home* processor and a byte-size estimate: the machine
simulator charges NUMA remote-access penalties and accounts bus traffic
from them (sections 7 and 9.3).
"""

from __future__ import annotations

import copy
import sys
from typing import Any

import numpy as np

from .values import Closure, MultiValue, NULL, OperatorValue

#: Types that circulate unwrapped (immutable atomic values).
IMMUTABLE_TYPES = (int, float, complex, bool, str, bytes, frozenset, type(None))

#: Optional module-wide observer of reference-count traffic, called as
#: ``hook(kind, block, n)`` with kind ``"retain"`` or ``"release"`` after
#: the count update.  Retain/release are module functions with no per-run
#: state, so the hook is global; install it scoped via
#: :func:`repro.obs.events.observe_blocks`.  ``None`` (the default) keeps
#: the hot path at one global load + identity check.
_BLOCK_HOOK = None


def set_block_hook(hook) -> None:
    """Install (or clear, with ``None``) the block reference-count hook."""
    global _BLOCK_HOOK
    _BLOCK_HOOK = hook


def get_block_hook():
    """The currently installed hook (for save/restore nesting)."""
    return _BLOCK_HOOK


def payload_nbytes(payload: Any) -> int:
    """Estimated size in bytes of an operator payload.

    NumPy arrays report exactly; containers sum their items shallowly;
    everything else falls back to ``sys.getsizeof``.  The estimate feeds
    the simulated machines' traffic accounting, where only relative
    magnitudes matter.
    """
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, (list, tuple, set)):
        return int(
            sys.getsizeof(payload) + sum(payload_nbytes(i) for i in payload)
        )
    if isinstance(payload, dict):
        return int(
            sys.getsizeof(payload)
            + sum(payload_nbytes(v) for v in payload.values())
        )
    try:
        return int(sys.getsizeof(payload))
    except TypeError:  # pragma: no cover - exotic objects
        return 64


def copy_payload(payload: Any) -> Any:
    """Copy a payload for copy-on-write.

    NumPy arrays use ``np.copy`` (cheap, contiguous); everything else gets
    ``copy.deepcopy`` — application objects are opaque to the runtime, so
    only a deep copy is guaranteed to isolate the writer.
    """
    if isinstance(payload, np.ndarray):
        return payload.copy()
    return copy.deepcopy(payload)


class DataBlock:
    """A shared memory block: payload + reference count + placement.

    Attributes
    ----------
    payload:
        The raw object operators see.
    rc:
        Number of live references (input slots + closure pins).
    home:
        Processor id that produced the payload (simulated machines), or
        ``-1`` when unplaced.
    nbytes:
        Cached size estimate.
    """

    __slots__ = ("payload", "rc", "home", "nbytes")

    _COUNTER = 0

    def __init__(self, payload: Any, home: int = -1) -> None:
        self.payload = payload
        self.rc = 0
        self.home = home
        self.nbytes = payload_nbytes(payload)

    def unique(self) -> bool:
        """True when this block holds the sole reference (writable)."""
        return self.rc == 1

    def copy(self, home: int = -1) -> "DataBlock":
        """Copy-on-write: a fresh block around a copied payload."""
        return DataBlock(copy_payload(self.payload), home=home)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DataBlock(rc={self.rc}, home={self.home}, "
            f"nbytes={self.nbytes}, payload={type(self.payload).__name__})"
        )


def wrap_payload(payload: Any, home: int = -1) -> Any:
    """Wrap an operator result for circulation on graph edges.

    * Immutable atomics, ``NULL``, closures, and operator values pass
      through unwrapped.
    * A Python ``tuple`` becomes a :class:`MultiValue` with each element
      wrapped — this is how operators return multiple values (the paper's
      ``target_split`` returning four pieces).
    * Everything else (arrays, lists, dicts, application objects) is
      wrapped in a fresh :class:`DataBlock`.

    The engine layers block *reuse* on top of this (an operator returning
    one of its own input payloads keeps that input's block identity, which
    is what makes the paper's pointer-returning "merge is free" operators
    free here too); see ``engine.py``.
    """
    if payload is NULL or isinstance(
        payload, (Closure, OperatorValue, MultiValue, DataBlock)
    ):
        return payload
    if isinstance(payload, IMMUTABLE_TYPES):
        return payload
    if isinstance(payload, tuple):
        return MultiValue(tuple(wrap_payload(p, home) for p in payload))
    if isinstance(payload, (np.integer, np.floating, np.bool_)):
        # NumPy scalars are immutable; circulate them unwrapped.
        return payload
    return DataBlock(payload, home=home)


def retain(value: Any, n: int = 1) -> None:
    """Add ``n`` references to every block reachable through packages."""
    if n == 0:
        return
    if isinstance(value, DataBlock):
        value.rc += n
        if _BLOCK_HOOK is not None:
            _BLOCK_HOOK("retain", value, n)
    elif isinstance(value, MultiValue):
        for item in value.items:
            retain(item, n)


def release(value: Any, n: int = 1) -> None:
    """Drop ``n`` references from every block reachable through packages."""
    if n == 0:
        return
    if isinstance(value, DataBlock):
        value.rc -= n
        assert value.rc >= 0, "data block reference count went negative"
        if _BLOCK_HOOK is not None:
            _BLOCK_HOOK("release", value, n)
    elif isinstance(value, MultiValue):
        for item in value.items:
            release(item, n)


def unwrap(value: Any) -> Any:
    """Recursively strip runtime wrappers for the public API boundary.

    Blocks yield their payloads; multiple values yield tuples; closures and
    operator values pass through (they are meaningful results too).
    """
    if isinstance(value, DataBlock):
        return value.payload
    if isinstance(value, MultiValue):
        return tuple(unwrap(i) for i in value.items)
    return value


def value_nbytes(value: Any) -> int:
    """Byte estimate of a value as placed on an edge (for NUMA accounting)."""
    if isinstance(value, DataBlock):
        return value.nbytes
    if isinstance(value, MultiValue):
        return sum(value_nbytes(i) for i in value.items)
    if isinstance(value, (Closure, OperatorValue)) or value is NULL:
        return 16
    return payload_nbytes(value)
