"""Reference-counted data blocks with copy-on-write.

Section 2.1 of the paper: "The Delirium run time system uses this
information to enforce determinism.  It maintains reference counts in the
data blocks, copying them when two or more operators need simultaneous
write access."

The reference count of a block equals the number of *input slots* currently
holding it (plus one pinned reference per closure capture, a deliberate
conservatism documented below).  When an operator that declared it
*modifies* argument ``i`` fires:

* if the block's count is 1, the operator holds the sole reference and may
  write the payload in place (the fast path the paper's "merging is free"
  idiom relies on);
* otherwise the engine copies the block first and hands the operator the
  private copy — no other consumer can ever observe the write.

Closure captures pin one extra reference for the closure's lifetime, so a
captured block is always treated as shared.  This is conservative (a copy
where the 1990 system might have mutated in place) but never wrong, and
matches the paper's advice that programmers arrange the data flow so large
structures are not captured and mutated simultaneously.

Blocks also carry a *home* processor and a byte-size estimate: the machine
simulator charges NUMA remote-access penalties and accounts bus traffic
from them (sections 7 and 9.3).
"""

from __future__ import annotations

import copy
import sys
from typing import Any

import numpy as np

from .values import Closure, MultiValue, NULL, OperatorValue

#: Types that circulate unwrapped (immutable atomic values).
IMMUTABLE_TYPES = (int, float, complex, bool, str, bytes, frozenset, type(None))

#: Optional module-wide observer of block traffic, called as
#: ``hook(kind, block, n)`` with kind ``"retain"`` or ``"release"`` after
#: a count update, or ``"alloc"`` when a fresh block is constructed.
#: Retain/release are module functions with no per-run state, so the hook
#: is global; install it scoped via
#: :func:`repro.obs.events.observe_blocks`.  ``None`` (the default) keeps
#: the hot path at one global load + identity check.
_BLOCK_HOOK = None


def set_block_hook(hook) -> None:
    """Install (or clear, with ``None``) the block reference-count hook."""
    global _BLOCK_HOOK
    _BLOCK_HOOK = hook


def get_block_hook():
    """The currently installed hook (for save/restore nesting)."""
    return _BLOCK_HOOK


def payload_nbytes(payload: Any) -> int:
    """Estimated size in bytes of an operator payload.

    NumPy arrays report exactly; containers sum their items shallowly;
    everything else falls back to ``sys.getsizeof``.  The estimate feeds
    the simulated machines' traffic accounting, where only relative
    magnitudes matter.
    """
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, (list, tuple, set)):
        return int(
            sys.getsizeof(payload) + sum(payload_nbytes(i) for i in payload)
        )
    if isinstance(payload, dict):
        return int(
            sys.getsizeof(payload)
            + sum(payload_nbytes(v) for v in payload.values())
        )
    try:
        return int(sys.getsizeof(payload))
    except TypeError:  # pragma: no cover - exotic objects
        return 64


def copy_payload(payload: Any) -> Any:
    """Copy a payload for copy-on-write.

    NumPy arrays use ``np.copy`` (cheap, contiguous); everything else gets
    ``copy.deepcopy`` — application objects are opaque to the runtime, so
    only a deep copy is guaranteed to isolate the writer.
    """
    if isinstance(payload, np.ndarray):
        return payload.copy()
    return copy.deepcopy(payload)


class DataBlock:
    """A shared memory block: payload + reference count + placement.

    Attributes
    ----------
    payload:
        The raw object operators see.
    rc:
        Number of live references (input slots + closure pins).
    home:
        Processor id that produced the payload (simulated machines), or
        ``-1`` when unplaced.
    nbytes:
        Cached size estimate.
    bid:
        Master-assigned block id for worker-cache residency tracking
        (process executor with an affinity policy), or ``None`` while the
        block has never crossed the wire.  An in-place write must clear
        it (see ``ExecutionState._begin_operator``): resident worker
        copies keyed by the old id would otherwise serve stale payloads.

    Blocks are weak-referenceable so the residency tracker can observe
    block death without extending any lifetime.
    """

    __slots__ = ("payload", "rc", "home", "nbytes", "bid", "__weakref__")

    _COUNTER = 0

    def __init__(self, payload: Any, home: int = -1) -> None:
        self.payload = payload
        self.rc = 0
        self.home = home
        self.nbytes = payload_nbytes(payload)
        self.bid: int | None = None
        if _BLOCK_HOOK is not None:
            _BLOCK_HOOK("alloc", self, 1)

    def unique(self) -> bool:
        """True when this block holds the sole reference (writable)."""
        return self.rc == 1

    def copy(self, home: int = -1) -> "DataBlock":
        """Copy-on-write: a fresh block around a copied payload."""
        return DataBlock(copy_payload(self.payload), home=home)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DataBlock(rc={self.rc}, home={self.home}, "
            f"nbytes={self.nbytes}, payload={type(self.payload).__name__})"
        )


class BufferPool:
    """Free lists of same-shape/dtype NumPy buffers for COW reuse.

    When a donated block dies at rc→0 and its payload is a bare array the
    engine proved the operator result cannot alias, the buffer lands here
    instead of going back to the allocator; the next copy-on-write copy of
    a matching shape/dtype becomes ``np.copyto`` into the recycled buffer
    instead of a fresh allocation.  Capacity is bounded in bytes (oldest
    offers are simply dropped once full), so the pool can never turn the
    runtime into a leak — the CI memory-smoke benchmark guards this.

    The pool is per-:class:`~repro.runtime.engine.ExecutionState` and is
    only touched under the engine's serialization discipline (the single
    thread, the threaded executor's condition lock, or the process
    master), so it needs no locking of its own.
    """

    __slots__ = (
        "max_bytes", "held_bytes", "recycled", "recycled_bytes", "dropped",
        "_free",
    )

    def __init__(self, max_bytes: int = 128 * 1024 * 1024) -> None:
        self.max_bytes = max_bytes
        self.held_bytes = 0
        self.recycled = 0        #: buffers handed back out via get()
        self.recycled_bytes = 0  #: bytes of those buffers
        self.dropped = 0         #: offers rejected (full pool / unusable)
        self._free: dict[tuple, list[np.ndarray]] = {}

    @staticmethod
    def _key(shape: tuple, dtype: Any) -> tuple:
        return (shape, np.dtype(dtype).str)

    def put(self, arr: Any) -> bool:
        """Offer a dead buffer for reuse; returns whether it was kept.

        Only owning, C-contiguous, non-empty arrays are poolable — a view
        does not own its memory, and copying into a strided target would
        lose the cheap-``copyto`` property.
        """
        if (
            not isinstance(arr, np.ndarray)
            or arr.base is not None
            or not arr.flags.c_contiguous
            or not arr.flags.writeable
            or arr.nbytes == 0
            or self.held_bytes + arr.nbytes > self.max_bytes
        ):
            self.dropped += 1
            return False
        free = self._free.setdefault(self._key(arr.shape, arr.dtype), [])
        for held in free:
            if held is arr:
                raise RuntimeError(
                    "buffer offered to the pool twice — a firing was "
                    "released more than once (retry double-release?)"
                )
        free.append(arr)
        self.held_bytes += arr.nbytes
        return True

    def get(self, shape: tuple, dtype: Any) -> np.ndarray | None:
        """A recycled buffer of exactly this shape/dtype, or ``None``."""
        free = self._free.get(self._key(shape, dtype))
        if not free:
            return None
        arr = free.pop()
        self.held_bytes -= arr.nbytes
        self.recycled += 1
        self.recycled_bytes += arr.nbytes
        return arr

    def stats(self) -> dict[str, int]:
        return {
            "recycled": self.recycled,
            "recycled_bytes": self.recycled_bytes,
            "held_bytes": self.held_bytes,
            "dropped": self.dropped,
        }


#: Exact-class dispatch cache for :func:`wrap_payload`: 0 = circulate
#: unwrapped, 1 = tuple-like → MultiValue, 2 = wrap in a DataBlock.  Every
#: isinstance outcome below is a function of the payload's exact class, so
#: the decision is computed once per class and then served from one dict
#: probe — operator results are overwhelmingly drawn from a handful of
#: application types.  The ``NULL`` sentinel is handled by identity and
#: its class never enters the cache.
_WRAP_KIND: dict[type, int] = {}

_NULL_CLS = type(NULL)


def wrap_payload(payload: Any, home: int = -1) -> Any:
    """Wrap an operator result for circulation on graph edges.

    * Immutable atomics, ``NULL``, closures, and operator values pass
      through unwrapped.
    * A Python ``tuple`` becomes a :class:`MultiValue` with each element
      wrapped — this is how operators return multiple values (the paper's
      ``target_split`` returning four pieces).
    * Everything else (arrays, lists, dicts, application objects) is
      wrapped in a fresh :class:`DataBlock`.

    The engine layers block *reuse* on top of this (an operator returning
    one of its own input payloads keeps that input's block identity, which
    is what makes the paper's pointer-returning "merge is free" operators
    free here too); see ``engine.py``.
    """
    cls = payload.__class__
    kind = _WRAP_KIND.get(cls)
    if kind is not None:
        if kind == 2:
            return DataBlock(payload, home=home)
        if kind == 0:
            return payload
        return MultiValue(tuple(wrap_payload(p, home) for p in payload))
    if payload is NULL or isinstance(
        payload, (Closure, OperatorValue, MultiValue, DataBlock)
    ):
        if cls is not _NULL_CLS:
            _WRAP_KIND[cls] = 0
        return payload
    if isinstance(payload, IMMUTABLE_TYPES):
        _WRAP_KIND[cls] = 0
        return payload
    if isinstance(payload, tuple):
        _WRAP_KIND[cls] = 1
        return MultiValue(tuple(wrap_payload(p, home) for p in payload))
    if isinstance(payload, (np.integer, np.floating, np.bool_)):
        # NumPy scalars are immutable; circulate them unwrapped.
        _WRAP_KIND[cls] = 0
        return payload
    if cls is not _NULL_CLS:
        _WRAP_KIND[cls] = 2
    return DataBlock(payload, home=home)


def wraps_as_block(payload: Any) -> bool:
    """Would :func:`wrap_payload` put this payload in a fresh DataBlock?

    The worker-resident block cache keys on this mirror of the wrap
    classification: a result worth caching under its block id is exactly
    one the master will circulate as a :class:`DataBlock` (atomics,
    tuples, and pre-wrapped values never carry a block id).  Kept next to
    :func:`wrap_payload` so the two classifications cannot drift.
    """
    cls = payload.__class__
    kind = _WRAP_KIND.get(cls)
    if kind is not None:
        return kind == 2
    if payload is NULL or isinstance(
        payload, (Closure, OperatorValue, MultiValue, DataBlock)
    ):
        return False
    if isinstance(payload, IMMUTABLE_TYPES) or isinstance(payload, tuple):
        return False
    if isinstance(payload, (np.integer, np.floating, np.bool_)):
        return False
    return True


def retain(value: Any, n: int = 1) -> None:
    """Add ``n`` references to every block reachable through packages."""
    if n == 0:
        return
    if isinstance(value, DataBlock):
        value.rc += n
        if _BLOCK_HOOK is not None:
            _BLOCK_HOOK("retain", value, n)
    elif isinstance(value, MultiValue):
        for item in value.items:
            retain(item, n)


def release(value: Any, n: int = 1) -> None:
    """Drop ``n`` references from every block reachable through packages."""
    if n == 0:
        return
    if isinstance(value, DataBlock):
        value.rc -= n
        if value.rc < 0:
            # A real error, not an assert: a negative count means some
            # consumer released a share it never held, which silently
            # corrupts copy-on-write decisions — and asserts vanish under
            # ``python -O``, exactly when nobody is watching.
            value.rc += n
            raise RuntimeError(
                f"data block reference count went negative "
                f"(released {n} share(s) from rc={value.rc}): {value!r}"
            )
        if _BLOCK_HOOK is not None:
            _BLOCK_HOOK("release", value, n)
    elif isinstance(value, MultiValue):
        for item in value.items:
            release(item, n)


def unwrap(value: Any) -> Any:
    """Recursively strip runtime wrappers for the public API boundary.

    Blocks yield their payloads; multiple values yield tuples; closures and
    operator values pass through (they are meaningful results too).
    """
    if isinstance(value, DataBlock):
        return value.payload
    if isinstance(value, MultiValue):
        return tuple(unwrap(i) for i in value.items)
    return value


def value_nbytes(value: Any) -> int:
    """Byte estimate of a value as placed on an edge (for NUMA accounting)."""
    if isinstance(value, DataBlock):
        return value.nbytes
    if isinstance(value, MultiValue):
        return sum(value_nbytes(i) for i in value.items)
    if isinstance(value, (Closure, OperatorValue)) or value is NULL:
        return 16
    return payload_nbytes(value)
