"""Fault-tolerant supervision of operator firings.

Delirium's single-assignment semantics make re-execution of a failed
firing safe by construction: a fired operator either delivered its
outputs through ``complete_fire`` or it never happened — the master's
memory is untouched until the commit, and a worker only ever receives
serialized *copies* of the arguments.  This module turns that property
into a fault-tolerance layer:

* :class:`FaultPolicy` — the run-level knobs: how many times a firing is
  re-executed, how long a dispatched firing may take, how retries back
  off, and whether an irrecoverable worker pool degrades to an
  in-process executor or surfaces an error.
* :class:`Supervisor` — owns the dispatch bookkeeping for
  :class:`~repro.runtime.executors.ProcessExecutor`: per-worker batch
  assignment, multiplexed result/sentinel waiting, crash detection with
  automatic respawn (re-shipping registry refs, fused chains, and the
  fault spec), deterministic re-fire of the calls a dead worker held,
  per-fire timeouts (a hung worker is killed and replaced), reclamation
  of shared-memory arena segments checked out to crashed workers, and a
  poison-fire ledger that converts a repeatedly failing firing into a
  structured :class:`~repro.errors.OperatorError` carrying the node id,
  attempt history, and worker pid.
* :func:`run_with_retries` — the in-process analogue used by the
  sequential and threaded executors (and the process executor's inline
  path): injected faults fire *before* the operator body and are
  therefore always retryable; real operator exceptions are retried only
  for operators without declared in-place writes (a failed ``modifies``
  body may have half-mutated its argument).

Every fault surfaces as a typed event on the bus (``WorkerCrashed``,
``WorkerRespawned``, ``FireRetried``, ``FireTimedOut``,
``ShmSegmentReclaimed``, ``ExecutorDegraded``) and as counters on
:class:`~repro.runtime.engine.EngineStats` / the metrics registry.

The supervisor is also where the paper's §9.3 locality story meets the
real dispatch path.  With an affinity policy active it keeps a
:class:`ResidencyTracker` — the master-side record of which workers hold
decoded copies of which live blocks — chooses among *idle* workers with
the shared :mod:`repro.runtime.affinity` policies (work-conserving: a
busy preference never queues work), ships already-resident inputs as
``("ref", bid)`` wire tokens instead of full encodings, and piggybacks
block invalidations on outgoing task messages so cache hygiene costs no
extra IPC.  A worker-side miss comes back as a structured reply and the
fire is re-dispatched fully encoded — residency is an optimization
belief, never a correctness input.
"""

from __future__ import annotations

import time
import weakref
from dataclasses import dataclass, field
from typing import Any, Callable

from ..errors import OperatorError, PoolIrrecoverableError, RuntimeFailure
from ..obs.events import (
    AffinityMiss,
    BlockCached,
    BlockRefShipped,
    EventBus,
    FireBatchFormed,
    FireRetried,
    FireTimedOut,
    ShmBlockCreated,
    ShmSegmentReclaimed,
    TaskDispatched,
    WorkerCrashed,
    WorkerRespawned,
)
from .affinity import (
    AffinityPolicy,
    DataAffinity,
    input_residency,
    make_policy,
    pick_most_resident,
)
from .blocks import DataBlock
from .engine import EngineStats, PendingOp
from .workers import (
    EncodedValue,
    WorkerPool,
    _decode_exception,
    decode_value,
    discard_encoded,
    encode_value,
)

#: Degradation modes: ``"ladder"`` falls process → threaded → sequential
#: when the pool is irrecoverable; ``"off"`` raises
#: :class:`~repro.errors.PoolIrrecoverableError` to the caller instead.
DEGRADE_MODES = ("ladder", "off")

#: Default cap on how many same-node fires coalesce into one batched
#: group (one IPC message / one vectorized kernel call).  Lives here
#: rather than in :mod:`repro.machine.calibrate` — which computes a
#: measured suggestion via ``suggest_batch_threshold`` — because
#: calibrate imports the executors and the executors need the default.
DEFAULT_BATCH_THRESHOLD = 32


@dataclass(frozen=True)
class FaultPolicy:
    """Run-level fault-tolerance knobs.

    max_retries:
        How many times a failed firing is re-executed after its first
        attempt (so a firing runs at most ``1 + max_retries`` times
        before it is declared poison).
    timeout:
        Per-fire wall-clock budget in seconds for dispatched firings
        (scaled by batch length, since a worker runs its batch
        serially); ``None`` disables timeouts.  A worker that blows the
        budget is presumed hung, killed, and respawned.
    backoff:
        Base delay in seconds before a retry; attempt ``n`` waits
        ``backoff * 2**(n-1)``.  ``0`` retries immediately.
    degrade:
        ``"ladder"`` (default) or ``"off"`` — see :data:`DEGRADE_MODES`.
    max_respawns:
        Worker replacements allowed per run before the pool is declared
        irrecoverable.
    checkpoint:
        Wall-clock checkpoint cadence in seconds for streaming runs
        (:class:`~repro.runtime.stream.StreamRunner`); ``None`` (the
        default) means no time-based cadence.  Non-streaming executors
        ignore it — there is nothing durable to snapshot mid-run until
        a sink exists.
    """

    max_retries: int = 2
    timeout: float | None = None
    backoff: float = 0.05
    degrade: str = "ladder"
    max_respawns: int = 8
    checkpoint: float | None = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive (or None)")
        if self.backoff < 0:
            raise ValueError("backoff must be >= 0")
        if self.degrade not in DEGRADE_MODES:
            raise ValueError(
                f"degrade must be one of {DEGRADE_MODES}, not {self.degrade!r}"
            )
        if self.max_respawns < 0:
            raise ValueError("max_respawns must be >= 0")
        if self.checkpoint is not None and self.checkpoint <= 0:
            raise ValueError("checkpoint cadence must be positive (or None)")

    @classmethod
    def parse(cls, text: str) -> "FaultPolicy":
        """Build a policy from CLI syntax: ``key=value`` pairs, ``,``-split.

        Keys: ``retries``, ``timeout`` (seconds, or ``none``),
        ``backoff`` (seconds), ``degrade`` (``ladder``/``off``),
        ``respawns``, ``checkpoint`` (seconds, or ``none``).
        Example: ``retries=3,timeout=10,degrade=off,checkpoint=30``.
        """
        kwargs: dict[str, Any] = {}
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            key, eq, value = part.partition("=")
            key, value = key.strip(), value.strip()
            if not eq:
                raise ValueError(
                    f"bad fault-policy entry {part!r}; expected KEY=VALUE"
                )
            try:
                if key == "retries":
                    kwargs["max_retries"] = int(value)
                elif key == "timeout":
                    kwargs["timeout"] = (
                        None
                        if value.lower() in ("none", "off")
                        else float(value)
                    )
                elif key == "backoff":
                    kwargs["backoff"] = float(value)
                elif key == "degrade":
                    kwargs["degrade"] = value
                elif key == "respawns":
                    kwargs["max_respawns"] = int(value)
                elif key == "checkpoint":
                    kwargs["checkpoint"] = (
                        None
                        if value.lower() in ("none", "off")
                        else float(value)
                    )
                else:
                    raise ValueError(f"unknown fault-policy key {key!r}")
            except ValueError as exc:
                if "fault-policy" in str(exc):
                    raise
                raise ValueError(
                    f"bad fault-policy value for {key!r}: {value!r}"
                ) from exc
        return cls(**kwargs)


@dataclass
class Completion:
    """One successfully executed remote firing, ready to commit."""

    pending: PendingOp
    raw: Any
    call_id: int
    worker: int
    t0: float
    duration: float
    nbytes: int
    via_shm: bool
    #: The worker kept its raw result resident under ``rbid`` — the
    #: executor adopts the committed block into the residency tracker.
    cached: bool = False
    rbid: int | None = None


@dataclass
class _CallRecord:
    """Supervisor bookkeeping for one dispatched firing."""

    call_id: int
    pending: PendingOp
    #: Wire-form arguments: plain :class:`EncodedValue` entries mixed
    #: with ``("blk", bid, EncodedValue)`` / ``("ref", bid)`` tuples.
    enc_args: list[Any] = field(default_factory=list)
    pooled: list[str] = field(default_factory=list)
    worker: int = -1
    #: Completed failed attempts: ``(attempt, worker_pid, outcome)``.
    attempts: list[tuple[int, int | None, str]] = field(default_factory=list)
    deadline: float | None = None
    encoded: bool = False
    #: Eligible for grouped ("batch", op, calls) dispatch.  First
    #: attempts only: a retried record always goes out as a plain
    #: singleton so the per-call salvage semantics govern recovery.
    vector: bool = False
    #: Master-assigned block id for the worker to cache its result under.
    rbid: int | None = None
    #: Force full encodings on the next dispatch (set after a cache-miss
    #: reply; full encodings cannot miss, so the fallback terminates).
    no_ref: bool = False
    #: Block ids shipped by reference in the current encoding — refs are
    #: only meaningful to the worker they were encoded for.
    ref_bids: list[int] = field(default_factory=list)
    #: Worker the current encoding targets (refs bind to one worker).
    enc_worker: int = -1

    @property
    def attempt_next(self) -> int:
        return len(self.attempts) + 1


class ResidencyTracker:
    """Master-side record of which workers hold which live blocks.

    Block ids are master-assigned, monotonically increasing, and *never
    reused* — so a stale id in a worker cache can at worst waste budget,
    never alias a different block.  Residency is tracker-owned (not on
    the block) because block death is observed through weakref callbacks,
    which must not touch the dying object.  Invalidations queue per
    worker and piggyback on the next outgoing task message — block
    hygiene costs no extra IPC, and a worker that never receives another
    message simply exits with its cache.
    """

    def __init__(self, n_workers: int) -> None:
        self._next_bid = 0
        #: bid → weakref to the live master block (death callback queues
        #: invalidations to every holder).
        self._blocks: dict[int, weakref.ref] = {}
        self._nbytes: dict[int, int] = {}
        #: bid → workers believed to hold a resident decoded copy.
        self._residency: dict[int, set[int]] = {}
        self._by_worker: dict[int, set[int]] = {
            i: set() for i in range(n_workers)
        }
        self._pending_inval: dict[int, list[int]] = {
            i: [] for i in range(n_workers)
        }
        self.invalidations_queued = 0
        self.refs_shipped = 0
        self.refs_missed = 0

    # -- block identity --------------------------------------------------
    def reserve_bid(self) -> int:
        """A fresh id with no registration yet (result ids: the block
        does not exist on the master until the fire commits)."""
        self._next_bid += 1
        return self._next_bid

    def ensure_bid(self, block: DataBlock) -> int:
        """The block's id, assigning and registering one on first use."""
        bid = block.bid
        if bid is None:
            bid = self.reserve_bid()
            block.bid = bid
            self._register(block, bid)
        return bid

    def adopt(self, block: DataBlock, bid: int, worker: int) -> None:
        """A worker cached its raw result under ``bid``; register the
        master's committed block under the same id, resident there."""
        if block.bid is not None:
            return  # identity-reused an already-tracked block
        block.bid = bid
        self._register(block, bid)
        self.add(bid, worker)

    def _register(self, block: DataBlock, bid: int) -> None:
        self._blocks[bid] = weakref.ref(
            block, lambda _ref, _bid=bid: self._dead(_bid)
        )
        self._nbytes[bid] = block.nbytes
        self._residency[bid] = set()

    def _dead(self, bid: int) -> None:
        # GC dropped the master's last reference: queue invalidations so
        # holders release their resident copies.  Runs from a weakref
        # callback — only tracker-owned dicts are touched.
        self._blocks.pop(bid, None)
        self._nbytes.pop(bid, None)
        holders = self._residency.pop(bid, None)
        if holders:
            for w in holders:
                self._by_worker[w].discard(bid)
                self._pending_inval[w].append(bid)
                self.invalidations_queued += 1

    def forget(self, block: DataBlock) -> None:
        """The engine is about to mutate this block in place: invalidate
        every resident copy *now* (the engine clears ``block.bid``)."""
        bid = block.bid
        if bid is None:
            return
        # Drop the weakref registration so eventual death of the block
        # does not queue a second round for an id nobody holds anymore.
        self._blocks.pop(bid, None)
        self._nbytes.pop(bid, None)
        holders = self._residency.pop(bid, None)
        if holders:
            for w in holders:
                self._by_worker[w].discard(bid)
                self._pending_inval[w].append(bid)
                self.invalidations_queued += 1

    # -- residency -------------------------------------------------------
    def add(self, bid: int, worker: int) -> None:
        holders = self._residency.get(bid)
        if holders is not None:
            holders.add(worker)
            self._by_worker[worker].add(bid)

    def discard(self, bid: int, worker: int) -> None:
        holders = self._residency.get(bid)
        if holders is not None:
            holders.discard(worker)
        self._by_worker[worker].discard(bid)

    def resident(self, bid: int, worker: int) -> bool:
        holders = self._residency.get(bid)
        return holders is not None and worker in holders

    def holders(self, block: DataBlock) -> Any:
        """Workers holding this block (the ``input_residency`` feed)."""
        bid = block.bid
        if bid is None:
            return ()
        return self._residency.get(bid, ())

    def drop_worker(self, worker: int) -> None:
        """A worker died (or was killed): its cache died with it.  Purge
        its residency *before* re-fire/respawn so salvage and retries
        never ref a dead cache, and drop its queued invalidations — a
        fresh process has nothing to invalidate."""
        for bid in self._by_worker[worker]:
            holders = self._residency.get(bid)
            if holders is not None:
                holders.discard(worker)
        self._by_worker[worker] = set()
        self._pending_inval[worker] = []

    def take_invalidations(self, worker: int) -> list[int]:
        """Drain the worker's queued invalidations for piggybacking."""
        out = self._pending_inval[worker]
        if out:
            self._pending_inval[worker] = []
        return out

    def stats(self) -> dict[str, Any]:
        resident_blocks = sum(len(s) for s in self._by_worker.values())
        resident_bytes = sum(
            self._nbytes.get(bid, 0)
            for bids in self._by_worker.values()
            for bid in bids
        )
        shipped = self.refs_shipped
        return {
            "blocks_tracked": len(self._blocks),
            "resident_blocks": resident_blocks,
            "resident_bytes": resident_bytes,
            "invalidations_queued": self.invalidations_queued,
            "pending_invalidations": sum(
                len(v) for v in self._pending_inval.values()
            ),
            "refs_shipped": shipped,
            "refs_missed": self.refs_missed,
            "hit_rate": (
                (shipped - self.refs_missed) / shipped if shipped else 1.0
            ),
        }


class _DispatchLabel:
    """Adapter giving a dispatch batch the ``label()`` surface the
    simulator-facing affinity policies expect from a task."""

    __slots__ = ("_label",)

    def __init__(self, label: str) -> None:
        self._label = label

    def label(self) -> str:
        return self._label


class Supervisor:
    """Dispatch bookkeeping + fault handling for the process executor.

    The executor calls :meth:`dispatch` for every remote
    :class:`~repro.runtime.engine.PendingOp` and :meth:`pump` whenever
    its ready queue drains; ``pump`` returns committed-ready
    :class:`Completion` objects and internally handles everything that
    can go wrong in between: worker crashes (drain late results, reclaim
    arena segments, respawn, re-fire), hung workers (kill + crash path),
    failed attempts (exponential-backoff re-dispatch as singleton
    batches, so a poison fire cannot keep dragging innocent batchmates
    past their retry budget), and the poison ledger.

    Raises :class:`~repro.errors.OperatorError` when one firing exhausts
    its retries, and :class:`~repro.errors.PoolIrrecoverableError` when
    the pool itself does; in both cases already-received completions
    stay buffered (:meth:`take_completions`) and the unfinished firings
    can be recovered with :meth:`drain_in_flight` for inline execution.
    """

    def __init__(
        self,
        pool: WorkerPool,
        policy: FaultPolicy,
        *,
        batch_size: int = 4,
        batch_threshold: int = DEFAULT_BATCH_THRESHOLD,
        shm_threshold: int | None = None,
        bus: EventBus | None = None,
        stats: EngineStats | None = None,
        affinity: str | AffinityPolicy = "none",
    ) -> None:
        self.pool = pool
        self.policy = policy
        self.batch_size = batch_size
        #: Locality layer: placement policy + residency tracker, or both
        #: ``None`` for ``affinity="none"`` — which is exactly the legacy
        #: least-loaded dispatch path (full encodings, no caches), the
        #: baseline the affinity benchmarks compare against.
        _policy = make_policy(affinity)
        if _policy.name == "none":
            self._affinity: AffinityPolicy | None = None
            self.residency: ResidencyTracker | None = None
        else:
            self._affinity = _policy
            self.residency = ResidencyTracker(pool.n_workers)
        self.batch_threshold = max(1, batch_threshold)
        #: Staging bar for the eager flush in :meth:`dispatch` — high
        #: enough that a vectorizable group is not broken up just because
        #: the plain-batch bar (batch_size × workers) filled first.
        self._flush_bar = max(
            batch_size * pool.n_workers, self.batch_threshold
        )
        self.shm_threshold = (
            shm_threshold if shm_threshold is not None else pool.shm_threshold
        )
        self.bus = bus
        self.stats = stats if stats is not None else EngineStats()
        self._call_seq = 0
        #: Records staged for (re-)dispatch, in arrival order.
        self._staged: list[_CallRecord] = []
        #: Backoff queue: ``(fire_at_monotonic, record)``.
        self._delayed: list[tuple[float, _CallRecord]] = []
        #: call_id -> record for calls sitting in a worker's pipe/loop.
        self._assigned: dict[int, _CallRecord] = {}
        #: worker index -> call_ids currently assigned to it.
        self._worker_calls: dict[int, set[int]] = {
            i: set() for i in range(pool.n_workers)
        }
        self._completions: list[Completion] = []

    # -- public surface -------------------------------------------------
    @property
    def in_flight(self) -> int:
        """Firings the supervisor still owes the executor a commit for."""
        return len(self._assigned) + len(self._staged) + len(self._delayed)

    def dispatch(self, pending: PendingOp, vector: bool = False) -> int:
        """Accept one remote firing; returns its call id.

        ``vector=True`` marks the firing eligible for grouped dispatch:
        staged vector records of the same operator ship as one
        ``("batch", op, calls)`` wire entry — one IPC message, answered
        by one N-result message — instead of ``batch_size``-chunked
        per-call entries.
        """
        self._call_seq += 1
        record = _CallRecord(self._call_seq, pending, vector=vector)
        self._staged.append(record)
        self.stats.dispatched_fires += 1
        if len(self._staged) >= self._flush_bar:
            self.flush()
        return record.call_id

    def take_completions(self) -> list[Completion]:
        out = self._completions
        self._completions = []
        return out

    def pump(self, block: bool) -> list[Completion]:
        """Advance the pool: send staged work, absorb results and faults.

        With ``block=True``, waits until at least one result, crash,
        timeout, or due retry makes progress possible; with ``False``,
        polls.  Returns (and clears) the buffered completions.
        """
        self._promote_delayed()
        self.flush()
        self._poll(self._wait_timeout(block))
        self._check_timeouts()
        self._promote_delayed()
        self.flush()
        return self.take_completions()

    def drain_in_flight(self) -> list[PendingOp]:
        """Abandon the pool: hand back every uncommitted firing.

        Reclaims/discards any encodings still outstanding and clears the
        supervisor's bookkeeping.  The caller (the degradation path)
        re-executes the returned pendings in-process — on fresh private
        argument copies, since remote pendings skipped physical COW.
        """
        records = list(self._staged)
        records.extend(r for _, r in self._delayed)
        records.extend(self._assigned.values())
        self._staged.clear()
        self._delayed.clear()
        self._assigned.clear()
        for calls in self._worker_calls.values():
            calls.clear()
        for record in records:
            self._release_encodings(record, crashed=True, pid=None)
        return [r.pending for r in records]

    # -- encoding / staging ---------------------------------------------
    @staticmethod
    def _enc_values(enc_args: list[Any]) -> Any:
        """The :class:`EncodedValue` objects inside a wire-form argument
        list (plain entries and the payloads of ``("blk", ...)`` forms;
        ``("ref", ...)`` tokens carry none)."""
        for e in enc_args:
            if type(e) is tuple:
                if e[0] == "blk":
                    yield e[2]
            else:
                yield e

    def _encode(self, record: _CallRecord, worker: int) -> None:
        """Produce the wire-form argument list for ``worker``.

        Without the locality layer every argument is a plain
        :class:`EncodedValue` (the legacy path).  With it, an input that
        is a live block the worker already holds ships as a ``("ref",
        bid)`` token; a block input the worker does not hold ships as
        ``("blk", bid, enc)`` so the worker makes it resident for next
        time.  Only arguments that provably *are* a block's payload
        (identity-checked against ``pending.op_inputs``) and are not
        declared-``modifies`` positions participate — a worker must
        never cache a payload its operator is allowed to mutate.
        """
        pending = record.pending
        tracker = self.residency
        stats = self.stats
        bus = self.bus
        enc_args: list[Any] = []
        ref_bids: list[int] = []
        encoded_nbytes = 0
        if tracker is not None:
            modifies = pending.spec.modifies
            op_inputs = pending.op_inputs
            n_inputs = len(op_inputs)
            op_name = pending.spec.name
            use_refs = not record.no_ref
            for i, a in enumerate(pending.args):
                block = op_inputs[i] if i < n_inputs else None
                if (
                    type(block) is DataBlock
                    and block.payload is a
                    and i not in modifies
                ):
                    bid = tracker.ensure_bid(block)
                    if use_refs and tracker.resident(bid, worker):
                        enc_args.append(("ref", bid))
                        ref_bids.append(bid)
                        tracker.refs_shipped += 1
                        stats.blocks_ref_shipped += 1
                        stats.encode_bytes_avoided += block.nbytes
                        if bus is not None and bus.wants(BlockRefShipped):
                            bus.emit(
                                BlockRefShipped(
                                    bus.now(),
                                    bid,
                                    block.nbytes,
                                    worker,
                                    op_name,
                                )
                            )
                        continue
                    enc = encode_value(
                        a, self.shm_threshold, arena=self.pool.arena
                    )
                    encoded_nbytes += enc.nbytes
                    tracker.add(bid, worker)
                    stats.blocks_cached += 1
                    if bus is not None and bus.wants(BlockCached):
                        bus.emit(
                            BlockCached(
                                bus.now(), bid, block.nbytes, worker, "arg"
                            )
                        )
                    enc_args.append(("blk", bid, enc))
                    continue
                enc = encode_value(
                    a, self.shm_threshold, arena=self.pool.arena
                )
                encoded_nbytes += enc.nbytes
                enc_args.append(enc)
            record.rbid = tracker.reserve_bid()
        else:
            for a in pending.args:
                enc = encode_value(
                    a, self.shm_threshold, arena=self.pool.arena
                )
                encoded_nbytes += enc.nbytes
                enc_args.append(enc)
            record.rbid = None
        stats.encode_bytes += encoded_nbytes
        record.enc_args = enc_args
        record.ref_bids = ref_bids
        record.enc_worker = worker
        record.pooled = [
            e.shm_name
            for e in self._enc_values(enc_args)
            if e.pooled and e.shm_name is not None
        ]
        record.encoded = True
        if bus is not None and bus.wants(ShmBlockCreated):
            now = bus.now()
            for enc in self._enc_values(enc_args):
                if enc.shm_name is not None:
                    bus.emit(ShmBlockCreated(now, enc.shm_name, enc.shm_nbytes))

    def _release_encodings(
        self, record: _CallRecord, crashed: bool, pid: int | None
    ) -> None:
        """Retire a record's encodings.

        ``crashed=False`` is the normal path: the worker decoded (and
        for fresh segments unlinked) every argument before computing, so
        only the pooled arena segments need returning.  ``crashed=True``
        means consumption is unknown: pooled segments are *reclaimed*
        (the dead process's mappings died with it) and fresh segments
        unlinked best-effort.
        """
        if not record.encoded:
            return
        if crashed:
            reclaimed = self.pool.arena.reclaim(record.pooled)
            if reclaimed:
                self.stats.shm_segments_reclaimed += len(reclaimed)
                bus = self.bus
                if bus is not None and bus.wants(ShmSegmentReclaimed):
                    now = bus.now()
                    for name, nbytes in reclaimed:
                        bus.emit(
                            ShmSegmentReclaimed(now, name, nbytes, pid or 0)
                        )
            for enc in self._enc_values(record.enc_args):
                if not enc.pooled:
                    discard_encoded(enc)
        else:
            for name in record.pooled:
                self.pool.arena.release(name)
        record.enc_args = []
        record.pooled = []
        record.ref_bids = []
        record.encoded = False

    def _least_loaded(self) -> int:
        return min(
            self._worker_calls, key=lambda i: len(self._worker_calls[i])
        )

    def _choose_worker(self, batch: list[_CallRecord]) -> int:
        """Pick the target worker for one batch.

        Without affinity: least-loaded (the legacy rule).  With it:
        choose among *idle* workers only (work-conserving — when none is
        idle, fall back to least-loaded rather than queueing behind a
        preference, exactly the paper's "overridden if the desired
        processor is busy").  Data affinity feeds the shared
        :func:`~repro.runtime.affinity.input_residency` scan with the
        residency tracker's holders; operator affinity sees the batch's
        operator name through a :class:`_DispatchLabel`.
        """
        policy = self._affinity
        if policy is None:
            return self._least_loaded()
        idle = [i for i, calls in self._worker_calls.items() if not calls]
        if not idle:
            return self._least_loaded()
        tracker = self.residency
        if tracker is not None and isinstance(policy, DataAffinity):
            bytes_by_worker = input_residency(
                (
                    v
                    for record in batch
                    for v in record.pending.op_inputs
                ),
                tracker.holders,
            )
            return pick_most_resident(bytes_by_worker, idle)
        return policy.choose(
            _DispatchLabel(batch[0].pending.spec.name), set(idle)
        )

    def flush(self) -> None:
        """Assign staged records to workers and send the batches.

        Retried records go out as singleton batches (a poison fire must
        not drag batchmates past their deadlines or retry budgets —
        and a crashed *vectorized* group retries through the per-call
        worker loop, isolating the poison member); fresh plain records
        are chunked so every worker gets work; fresh vector records are
        grouped by operator into ``("batch", ...)`` wire entries capped
        at ``batch_threshold`` firings each.
        """
        while True:
            staged, self._staged = self._staged, []
            if not staged:
                return
            retries = [r for r in staged if r.attempts]
            fresh = [r for r in staged if not r.attempts]
            batches: list[tuple[list[_CallRecord], bool]] = [
                ([r], False) for r in retries
            ]
            plain = [r for r in fresh if not r.vector]
            if plain:
                chunk = max(
                    1,
                    min(
                        self.batch_size,
                        -(-len(plain) // self.pool.n_workers),
                    ),
                )
                batches.extend(
                    (plain[i : i + chunk], False)
                    for i in range(0, len(plain), chunk)
                )
            vector = [r for r in fresh if r.vector]
            if vector:
                groups: dict[str, list[_CallRecord]] = {}
                for r in vector:
                    groups.setdefault(r.pending.spec.name, []).append(r)
                for records in groups.values():
                    chunk = max(
                        1,
                        min(
                            self.batch_threshold,
                            -(-len(records) // self.pool.n_workers),
                        ),
                    )
                    batches.extend(
                        (records[i : i + chunk], True)
                        for i in range(0, len(records), chunk)
                    )
            resend = False
            for batch, is_vector in batches:
                if not self._send(batch, vector=is_vector):
                    resend = True  # a worker died on send; records restaged
            if not resend and not self._staged:
                return

    def _send(self, batch: list[_CallRecord], vector: bool = False) -> bool:
        """Send one batch to its chosen worker; False on dead pipe.

        ``vector=True`` with two or more records ships the batch as one
        grouped wire entry (all records share one operator by
        construction in :meth:`flush`), which the worker answers with a
        single N-result message.  The batch is placed as a unit — one
        :meth:`_choose_worker` decision covers all members, so grouped
        fires cannot be split across caches.
        """
        worker = self._choose_worker(batch)
        now = time.monotonic()
        bus = self.bus
        for record in batch:
            if (
                record.encoded
                and record.enc_worker != worker
                and record.ref_bids
            ):
                # The old encoding refs a different worker's cache —
                # refs are worker-bound, so drop it and re-encode.  The
                # old target never saw the message (crashed=True: its
                # consumption state is exactly "never consumed").
                self._release_encodings(record, crashed=True, pid=None)
            if not record.encoded:
                self._encode(record, worker)
        grouped = vector and len(batch) > 1
        payload: list[tuple]
        if grouped:
            payload = [
                (
                    "batch",
                    batch[0].pending.spec.name,
                    [(r.call_id, r.enc_args, r.rbid) for r in batch],
                )
            ]
        else:
            payload = [
                (
                    record.call_id,
                    record.pending.spec.name,
                    record.enc_args,
                    record.rbid,
                )
                for record in batch
            ]
        inval = (
            self.residency.take_invalidations(worker)
            if self.residency is not None
            else []
        )
        try:
            self.pool.submit_to(worker, (inval, payload))
        except (BrokenPipeError, OSError):
            # The worker died before taking the batch: nothing executed,
            # so the records go back to staging without an attempt mark.
            # The encodings are released on the crash path (refs/blk
            # entries bind to the dead worker's cache) and the drained
            # invalidations are moot — drop_worker purges the queue a
            # fresh respawn must not see.
            for record in batch:
                self._release_encodings(record, crashed=True, pid=None)
            self._staged.extend(batch)
            process = self.pool.processes[worker]
            if process is not None and process.is_alive():
                process.join(timeout=1.0)
                if process.is_alive():
                    process.kill()
                    process.join(timeout=5.0)
            self._handle_crash(worker)
            return False
        self.stats.ipc_messages_sent += 1
        if self._affinity is not None:
            for record in batch:
                self._affinity.notify(
                    _DispatchLabel(record.pending.spec.name), worker
                )
        if grouped:
            self.stats.fire_batches += 1
            self.stats.batched_fires += len(batch)
            if bus is not None and bus.wants(FireBatchFormed):
                bus.emit(
                    FireBatchFormed(
                        bus.now(),
                        batch[0].pending.spec.name,
                        batch[0].pending.node_id,
                        len(batch),
                        True,
                    )
                )
        timeout = self.policy.timeout
        for record in batch:
            record.worker = worker
            record.deadline = (
                now + timeout * len(batch) if timeout is not None else None
            )
            self._assigned[record.call_id] = record
            self._worker_calls[worker].add(record.call_id)
            if bus is not None and bus.wants(TaskDispatched):
                bus.emit(
                    TaskDispatched(
                        bus.now(),
                        record.pending.spec.name,
                        record.call_id,
                        sum(e.nbytes for e in self._enc_values(record.enc_args)),
                        any(e.via_shm for e in self._enc_values(record.enc_args)),
                        record.pending.node_id,
                    )
                )
        return True

    def locality_stats(self) -> dict[str, Any]:
        """Residency-tracker counters, or ``{}`` with affinity off."""
        tracker = self.residency
        return tracker.stats() if tracker is not None else {}

    def snapshot(self) -> dict[str, Any]:
        """Point-in-time dispatch state (flight-recorder snapshot source).

        Called at dump time — possibly mid-crash-handling — so it only
        reads, never mutates, the bookkeeping.
        """
        assigned = [
            {
                "call_id": r.call_id,
                "operator": r.pending.spec.name,
                "node_id": r.pending.node_id,
                "worker": r.worker,
                "attempt": r.attempt_next,
            }
            for r in self._assigned.values()
        ]
        return {
            "in_flight": self.in_flight,
            "assigned": assigned,
            "staged": len(self._staged),
            "delayed": len(self._delayed),
            "completions_buffered": len(self._completions),
        }

    # -- waiting / absorption -------------------------------------------
    def _wait_timeout(self, block: bool) -> float | None:
        if not block:
            return 0.0
        now = time.monotonic()
        candidates: list[float] = []
        if self._delayed:
            candidates.append(min(t for t, _ in self._delayed))
        if self.policy.timeout is not None:
            deadlines = [
                r.deadline
                for r in self._assigned.values()
                if r.deadline is not None
            ]
            if deadlines:
                candidates.append(min(deadlines))
        if not candidates:
            return None if self._assigned else 0.0
        return max(0.0, min(candidates) - now)

    def _poll(self, timeout: float | None) -> bool:
        if not self._assigned:
            if timeout:
                time.sleep(min(timeout, 0.5))
            return False
        progressed = False
        for obj in self.pool.wait(timeout):
            worker = self.pool.worker_for_conn(obj)
            if worker is not None:
                try:
                    message = obj.recv()
                except (EOFError, OSError):
                    self._handle_crash(worker)
                    progressed = True
                    continue
                if message is not None:
                    self._absorb(message)
                    progressed = True
                continue
            worker = self.pool.worker_for_sentinel(obj)
            if worker is not None:
                self._handle_crash(worker)
                progressed = True
        return progressed

    def _absorb(self, message: tuple[int, list[tuple]]) -> None:
        worker_id, results = message
        self.stats.ipc_messages_received += 1
        bus = self.bus
        for call_id, ok, payload, t0, duration, cached in results:
            record = self._assigned.pop(call_id, None)
            if record is None:
                continue  # already resolved via the crash path
            self._worker_calls[record.worker].discard(call_id)
            pending = record.pending
            if ok == "miss":
                # The worker's cache no longer held a ref-shipped block.
                # It decoded every full encoding before resolving refs
                # (pooled segments were consumed), so release normally,
                # correct the residency belief, and re-dispatch fully
                # encoded — no attempt is recorded: nothing executed,
                # and a miss must never eat the retry budget.
                self._release_encodings(record, crashed=False, pid=None)
                tracker = self.residency
                if tracker is not None:
                    for bid in payload:
                        tracker.discard(bid, worker_id)
                    tracker.refs_missed += len(payload)
                record.no_ref = True
                record.worker = -1
                record.deadline = None
                self.stats.affinity_misses += 1
                if bus is not None and bus.wants(AffinityMiss):
                    bus.emit(
                        AffinityMiss(
                            bus.now(),
                            pending.spec.name,
                            call_id,
                            worker_id,
                            len(payload),
                        )
                    )
                self._staged.append(record)
                continue
            self._release_encodings(record, crashed=False, pid=None)
            if ok:
                raw_payload: EncodedValue = payload
                self._completions.append(
                    Completion(
                        pending,
                        decode_value(raw_payload),
                        call_id,
                        worker_id,
                        t0,
                        duration,
                        raw_payload.nbytes,
                        raw_payload.via_shm,
                        cached=bool(cached),
                        rbid=record.rbid,
                    )
                )
                continue
            exc = _decode_exception(payload)
            pid = self._worker_pid(record.worker)
            self._record_failure(record, pid, f"raised: {exc!r}", exc, "error")

    def _record_failure(
        self,
        record: _CallRecord,
        pid: int | None,
        outcome: str,
        exc: BaseException | None,
        reason: str,
    ) -> None:
        """Mark one failed attempt; schedule a retry or declare poison."""
        attempt = record.attempt_next
        record.attempts.append((attempt, pid, outcome))
        if len(record.attempts) > self.policy.max_retries:
            cause = exc if exc is not None else RuntimeFailure(outcome)
            raise OperatorError(
                record.pending.spec.name,
                cause,
                node_id=record.pending.node_id,
                attempts=tuple(record.attempts),
                worker_pid=pid,
            ) from cause
        backoff = (
            self.policy.backoff * (2 ** (attempt - 1))
            if self.policy.backoff
            else 0.0
        )
        self.stats.fires_retried += 1
        bus = self.bus
        if bus is not None and bus.wants(FireRetried):
            bus.emit(
                FireRetried(
                    bus.now(),
                    record.pending.spec.name,
                    record.call_id,
                    record.pending.node_id,
                    attempt + 1,
                    reason,
                    backoff,
                )
            )
        record.worker = -1
        record.deadline = None
        if backoff > 0.0:
            self._delayed.append((time.monotonic() + backoff, record))
        else:
            self._staged.append(record)

    # -- faults ----------------------------------------------------------
    def _worker_pid(self, worker: int) -> int | None:
        if 0 <= worker < len(self.pool.processes):
            p = self.pool.processes[worker]
            return p.pid if p is not None else None
        return None

    def _handle_crash(
        self,
        worker: int,
        reason: str = "worker crashed",
        kind: str = "crash",
    ) -> None:
        """A worker died: salvage, reclaim, re-fire, respawn."""
        process = self.pool.processes[worker]
        if process is None or process.is_alive():
            return  # stale handle (already respawned this pump round)
        pid = process.pid
        exitcode = process.exitcode
        # Salvage results the worker completed before dying.
        conn = self.pool.conns[worker]
        try:
            while conn is not None and conn.poll(0):
                message = conn.recv()
                if message is not None:
                    self._absorb(message)
        except (EOFError, OSError):
            pass
        lost_ids = [
            cid
            for cid in sorted(self._worker_calls[worker])
            if cid in self._assigned
        ]
        self.stats.worker_crashes += 1
        bus = self.bus
        if bus is not None and bus.wants(WorkerCrashed):
            # Emitted while the lost calls are still in ``_assigned``: a
            # flight recorder triggered by this event snapshots the
            # supervisor, and the dump must show the in-flight fires the
            # dead worker held.
            bus.emit(
                WorkerCrashed(
                    bus.now(), worker, pid or 0, exitcode, len(lost_ids)
                )
            )
        lost = [self._assigned.pop(cid) for cid in lost_ids]
        self._worker_calls[worker].clear()
        if self.residency is not None:
            # The cache died with the process: purge residency before
            # any re-fire so retries never ship refs into a dead (or
            # freshly respawned, hence empty) cache.
            self.residency.drop_worker(worker)
        if self.pool.respawns >= self.policy.max_respawns:
            # Put the lost records back so drain_in_flight can recover
            # them for the degradation path.
            self._staged.extend(lost)
            raise PoolIrrecoverableError(
                f"worker {worker} (pid {pid}) died with exit code "
                f"{exitcode} and the respawn budget is exhausted",
                respawns=self.pool.respawns,
            )
        self.pool.respawn(worker)
        self.stats.worker_respawns += 1
        if bus is not None and bus.wants(WorkerRespawned):
            bus.emit(
                WorkerRespawned(
                    bus.now(),
                    worker,
                    self.pool.processes[worker].pid or 0,
                    self.pool.respawns,
                )
            )
        # Deterministic re-fire: the worker held serialized copies only,
        # so the master-side pending is pristine and safe to re-dispatch.
        for record in lost:
            self._release_encodings(record, crashed=True, pid=pid)
            self._record_failure(record, pid, reason, None, kind)

    def _check_timeouts(self) -> None:
        if self.policy.timeout is None or not self._assigned:
            return
        now = time.monotonic()
        hung: dict[int, list[_CallRecord]] = {}
        for record in self._assigned.values():
            if record.deadline is not None and now > record.deadline:
                hung.setdefault(record.worker, []).append(record)
        bus = self.bus
        for worker, records in hung.items():
            self.stats.fires_timed_out += len(records)
            if bus is not None and bus.wants(FireTimedOut):
                for record in records:
                    bus.emit(
                        FireTimedOut(
                            bus.now(),
                            record.pending.spec.name,
                            record.call_id,
                            worker,
                            self.policy.timeout,
                        )
                    )
            process = self.pool.processes[worker]
            if process is not None and process.is_alive():
                process.kill()
                process.join(timeout=5.0)
            timeout = self.policy.timeout
            self._handle_crash(
                worker,
                reason=f"timed out after {timeout}s",
                kind="timeout",
            )

    def _promote_delayed(self) -> None:
        if not self._delayed:
            return
        now = time.monotonic()
        due = [r for t, r in self._delayed if t <= now]
        self._delayed = [(t, r) for t, r in self._delayed if t > now]
        self._staged.extend(due)


def run_with_retries(
    spec: Any,
    args: tuple[Any, ...],
    policy: FaultPolicy | None,
    injector: Any = None,
    *,
    node_id: int = -1,
    on_retry: Callable[[int, BaseException], None] | None = None,
) -> Any:
    """Execute one operator body in-process under the fault policy.

    The shared retry loop for the sequential and threaded executors and
    the process executor's inline path.  An installed fault injector is
    consulted *before* the body, so anything it raises is retryable for
    every operator; a real body exception is retried only when the
    operator declares no in-place writes (``spec.modifies`` empty — a
    failed mutating body may have left its argument half-written, and
    in-process there is no serialization boundary to hide that).
    """
    max_retries = policy.max_retries if policy is not None else 0
    backoff = policy.backoff if policy is not None else 0.0
    attempts: list[tuple[int, int | None, str]] = []
    attempt = 0
    while True:
        attempt += 1
        pre_body = True
        try:
            if injector is not None:
                injector.on_call(spec.name)
            pre_body = False
            return spec.fn(*args)
        except Exception as exc:  # noqa: BLE001 - policy decides
            attempts.append((attempt, None, f"raised: {exc!r}"))
            retryable = pre_body or not spec.modifies
            if not retryable or attempt > max_retries:
                raise OperatorError(
                    spec.name,
                    exc,
                    node_id=node_id,
                    attempts=tuple(attempts) if len(attempts) > 1 else (),
                ) from exc
            if on_retry is not None:
                on_retry(attempt, exc)
            if backoff:
                time.sleep(backoff * (2 ** (attempt - 1)))
