"""The ready queue with the paper's three-level priority scheme.

Section 7: "The ready queue has three levels of priority.  In decreasing
order of priority, they are: normal operators, non-recursive call-closure
operators, and recursive call-closure operators.  The priority scheme
reduces the number of template activations required to evaluate a Delirium
program, by making activations available for re-use as early as possible."

Normal node firings drain existing activations toward completion before any
new subgraph is expanded; recursive expansions — the ones that can multiply
without bound in programs like parallel backtracking — go last.  The effect
is a bounded-frontier, depth-biased exploration instead of a breadth-first
explosion, and it is ablatable (``use_priorities=False`` degrades to a
single FIFO) so the claim can be measured (``benchmarks/
bench_priority_ablation.py``).

Determinism note: the *results* of a Delirium program never depend on pop
order (that is the coordination model's guarantee, which the property tests
exercise by randomizing pop order with ``seed``); only resource usage does.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Any

from ..graph.ir import (  # noqa: F401 - canonical home; re-exported here
    PRIORITY_CALL,
    PRIORITY_NORMAL,
    PRIORITY_RECURSIVE_CALL,
)
from ..obs.events import EventBus, QueueDepthSample, QueueSaturated


@dataclass(slots=True, eq=False)
class Task:
    """A ready node firing: (activation, node) plus its priority class.

    Treated as immutable by convention; not ``frozen=True`` because the
    engine constructs one per firing and the frozen ``__init__`` pays an
    ``object.__setattr__`` per field on the hottest allocation path.
    """

    activation: Any  # Activation; typed loosely to avoid an import cycle
    node_id: int
    priority: int
    seq: int

    def label(self) -> str:
        return self.activation.template.nodes[self.node_id].label


class ReadyQueue:
    """Three-level priority queue of :class:`Task`.

    Parameters
    ----------
    use_priorities:
        When ``False`` all tasks share one FIFO — the ablation mode.
    seed:
        When given, pops within the selected priority class pick a random
        queued task (seeded, reproducible).  Used by the determinism
        property tests; production executors leave it ``None`` for FIFO
        order within each class.
    bus:
        Optional event bus; when it has subscribers the queue emits a
        :class:`~repro.obs.events.QueueDepthSample` after every push and
        pop — the depth-over-time telemetry scaling PRs are judged by.
    max_ready:
        Optional saturation watermark.  The queue never refuses a push
        (engine correctness requires every newly ready task to be
        accepted), but crossing the watermark sets :attr:`saturated` and
        emits one :class:`~repro.obs.events.QueueSaturated` per upward
        crossing.  Streaming sources poll :attr:`saturated` as the
        backpressure signal; ``None`` (the default) disables the check
        entirely so non-streaming hot loops pay nothing.
    """

    def __init__(
        self,
        use_priorities: bool = True,
        seed: int | None = None,
        bus: EventBus | None = None,
        max_ready: int | None = None,
    ) -> None:
        if max_ready is not None and max_ready < 1:
            raise ValueError(f"max_ready={max_ready} must be >= 1")
        self.use_priorities = use_priorities
        self._rng = random.Random(seed) if seed is not None else None
        # Three named, preallocated deques; ``_queues`` aliases them for
        # the sampling and seeded-pop paths.  The common production case
        # (no rng, no bus) pops through the named references directly.
        self._q0: deque[Task] = deque()
        self._q1: deque[Task] = deque()
        self._q2: deque[Task] = deque()
        self._queues: list[deque[Task]] = [self._q0, self._q1, self._q2]
        self._size = 0
        self._bus = bus if (bus is not None and bus.active) else None
        # Snapshot of the subscriber set (executors do the same for
        # TaskFired): a bus whose subscribers ignore depth samples must
        # not pay a ``wants`` resolution on every push and pop.  Queues
        # are constructed after subscriptions are attached.
        self._sampling = self._bus is not None and self._bus.wants(
            QueueDepthSample
        )
        self._fast = self._rng is None and not self._sampling
        self.max_ready = max_ready
        self._watch = max_ready is not None
        #: True while the depth sits at or above ``max_ready``; re-armed
        #: (set back False) as soon as a pop takes the depth below it.
        self.saturated = False
        #: Total upward watermark crossings over the queue's lifetime.
        self.saturations = 0
        self._sat_emit = self._bus is not None and self._bus.wants(
            QueueSaturated
        )

    def _check_high(self) -> None:
        """Record an upward watermark crossing (``_watch`` is True)."""
        if not self.saturated and self._size >= self.max_ready:
            self.saturated = True
            self.saturations += 1
            if self._sat_emit:
                bus = self._bus
                bus.emit(
                    QueueSaturated(bus.now(), self._size, self.max_ready)
                )

    def depths(self) -> tuple[int, int, int]:
        """Current depth per priority class (flight-recorder snapshot)."""
        return (len(self._q0), len(self._q1), len(self._q2))

    def _sample_depth(self) -> None:
        bus = self._bus
        q0, q1, q2 = self._queues
        bus.emit(QueueDepthSample(bus.now(), (len(q0), len(q1), len(q2))))

    def push(self, task: Task) -> None:
        level = task.priority if self.use_priorities else 0
        self._queues[level].append(task)
        self._size += 1
        if self._watch:
            self._check_high()
        if self._sampling:
            self._sample_depth()

    def push_all(self, tasks: list[Task]) -> None:
        if self._fast and self.use_priorities:
            q = self._queues
            for t in tasks:
                q[t.priority].append(t)
            self._size += len(tasks)
            if self._watch:
                self._check_high()
            return
        for t in tasks:
            self.push(t)

    def pop(self) -> Task:
        if self._size == 0:
            raise IndexError("pop from empty ready queue")
        if self._fast:
            self._size -= 1
            if self.saturated and self._size < self.max_ready:
                self.saturated = False
            q0 = self._q0
            if q0:
                return q0.popleft()
            q1 = self._q1
            if q1:
                return q1.popleft()
            return self._q2.popleft()
        for q in self._queues:
            if q:
                self._size -= 1
                if self.saturated and self._size < self.max_ready:
                    self.saturated = False
                if self._rng is None or len(q) == 1:
                    task = q.popleft()
                else:
                    i = self._rng.randrange(len(q))
                    q.rotate(-i)
                    task = q.popleft()
                    q.rotate(i)
                if self._sampling:
                    self._sample_depth()
                return task
        raise AssertionError("size/queue mismatch")  # pragma: no cover

    def pop_batch(self, limit: int, key: Any) -> list[Task]:
        """Pop the next task plus same-key peers from its priority class.

        ``key(task)`` names the coalescing group — the batched executors
        pass ``(template, node)`` for batchable operator nodes and
        ``None`` for everything else.  The head task is popped exactly as
        :meth:`pop` would (so a seeded queue still randomizes the head),
        then up to ``limit - 1`` tasks with the head's key are collected
        from the *same* priority class; non-matching tasks keep their
        relative order.  A ``None``-keyed head returns as a singleton.

        Safe under single-assignment: batching reorders only *when*
        bodies run relative to other groups, and results never depend on
        pop order (the module docstring's determinism note) — resource
        usage is the only observable difference, exactly as with seeded
        pops.
        """
        head = self.pop()
        if limit <= 1 or self._size == 0:
            return [head]
        k = key(head)
        if k is None:
            return [head]
        level = head.priority if self.use_priorities else 0
        q = self._queues[level]
        batch = [head]
        kept: list[Task] = []
        take = limit - 1
        while q and take:
            t = q.popleft()
            if key(t) == k:
                batch.append(t)
                take -= 1
            else:
                kept.append(t)
        if kept:
            q.extendleft(reversed(kept))
        self._size -= len(batch) - 1
        if self.saturated and self._size < self.max_ready:
            self.saturated = False
        if self._sampling:
            self._sample_depth()
        return batch

    def drain(self, fire: Any) -> None:
        """Pop → ``fire`` → push-newly until the queue runs dry.

        The sequential executors' hot loop, kept here so the per-task
        pop/push method dispatch and size bookkeeping stay inside one
        frame.  ``fire`` takes a :class:`Task` and returns the newly
        ready tasks.  Falls back to the generic pop/push path whenever
        sampling or seeded pops are active.
        """
        if not self._fast or self._watch:
            while self._size:
                newly = fire(self.pop())
                for t in newly:
                    self.push(t)
            return
        q0, q1, q2 = self._q0, self._q1, self._q2
        queues = self._queues
        use_priorities = self.use_priorities
        while self._size:
            task = (
                q0.popleft() if q0 else q1.popleft() if q1 else q2.popleft()
            )
            self._size -= 1
            newly = fire(task)
            if newly:
                if use_priorities:
                    for t in newly:
                        queues[t.priority].append(t)
                else:
                    q0.extend(newly)
                self._size += len(newly)

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0
