"""Crash-consistent checkpoints of a streaming run's master state.

PR 5 made the runtime survive any *worker* death; the master process
remained a single point of total loss.  This module is the durable half
of fixing that: a compact, atomically written snapshot of everything the
master needs to resume a streaming run (:mod:`repro.runtime.stream`)
after ``kill -9`` — and nothing it does not.

Single-assignment (PAPER.md §8) is what makes the snapshot cheap and
honest.  A Delirium value, once produced, is final; a stream item, once
committed to the sink, is final.  So the master's recovery state is just
the *frontier*:

========================  ==============================================
field                     why it suffices
========================  ==============================================
completed-item frontier   items before it are committed (final, never
                          re-fired); items after it have produced **no**
                          observable effect — their partial firings died
                          with the master's heap
live blocks (carry)       the only values crossing an item boundary; a
                          pickle of the carried value is bit-exact
source offset             pull-based sources are deterministic functions
                          of their offset; re-seek and continue
sink flush position       the byte offset + rolling digest of the
                          durable prefix; resume truncates the sink back
                          to exactly this point, making the append-only
                          output idempotent
fault cursors             injection decisions are pure functions of
                          ``(seed, salt, kind, op, count)``; restoring
                          the counters restores the decision sequence
EngineStats               accumulated counters, so resumed telemetry
                          reports the whole logical run
========================  ==============================================

No Chandy–Lamport coordination, no message-channel draining: the
checkpoint is taken at an item boundary, where by construction nothing
is in flight.

File format (single file)::

    magic (8 bytes) | header length (4 bytes LE) | header JSON | payload

The header is the *manifest*: format version, fingerprints of the
program graph and operator registry, the flag set (compile-cache pass
tuple and stream options), frontier counters, and the SHA-256 of the
pickled payload.  :func:`read_checkpoint` refuses a payload whose hash
does not match; :func:`verify_compatible` refuses resume against a
different program, registry, or flag set with a structured
:class:`CheckpointMismatchError` naming the offending key.  Writes are
atomic and durable: temp file in the target directory, ``fsync`` of the
file, ``os.replace``, ``fsync`` of the directory — a checkpoint either
exists completely or not at all.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import pickle
import struct
import time
from dataclasses import dataclass, field
from typing import Any

from ..errors import DeliriumError

CHECKPOINT_MAGIC = b"DLRMCKPT"
CHECKPOINT_VERSION = 1

_LEN = struct.Struct("<I")


class CheckpointError(DeliriumError):
    """A checkpoint file is missing, truncated, or corrupt."""


class CheckpointMismatchError(CheckpointError):
    """Resume was attempted against an incompatible checkpoint.

    ``key`` names the mismatched manifest entry (``"program"``,
    ``"registry"``, ``"flags"``, or ``"version"``); ``expected`` is the
    checkpoint's value, ``found`` the resuming run's.  Structured so
    callers (and tests) can assert on *which* compatibility gate fired
    rather than string-matching a message.
    """

    def __init__(self, key: str, expected: Any, found: Any) -> None:
        self.key = key
        self.expected = expected
        self.found = found
        super().__init__(
            f"checkpoint mismatch on {key!r}: checkpoint has "
            f"{expected!r}, this run has {found!r} — refusing to resume "
            f"(resume requires the identical program, registry, and "
            f"flag set)"
        )


def program_fingerprint(program: Any) -> str:
    """Content hash of a compiled program graph.

    Hashes the canonical serialized form (:mod:`repro.graph.serialize`),
    which includes fusion recipes, donation plans, and codegen sources —
    so ``--no-codegen`` against a codegen checkpoint already differs
    here, before the flag set is even compared.
    """
    from ..graph import serialize

    text = serialize.dumps(program)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:40]


def registry_fingerprint(registry: Any) -> str:
    """Content hash of an operator registry's *interface*.

    Function bodies cannot be hashed portably; what resume correctness
    needs is that the same operator names exist with the same shapes
    (arity, destructive-modify sets, purity, batched form present).
    """
    entries = []
    for name in sorted(registry.names()):
        spec = registry.get(name)
        entries.append(
            [
                name,
                spec.arity,
                sorted(spec.modifies),
                bool(spec.pure),
                spec.batch_fn is not None,
            ]
        )
    blob = json.dumps(entries, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:40]


def canonical_flags(flags: dict[str, Any]) -> str:
    """The flag set as a canonical JSON string (sorted keys)."""
    return json.dumps(flags, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class Checkpoint:
    """One loaded snapshot: the JSON manifest plus the pickled payload."""

    path: str
    manifest: dict[str, Any]
    payload: dict[str, Any]

    @property
    def seq(self) -> int:
        return int(self.manifest["seq"])

    @property
    def items(self) -> int:
        return int(self.manifest["items"])

    @property
    def fires(self) -> int:
        return int(self.manifest["fires"])

    @property
    def source_offset(self) -> int:
        return int(self.manifest["source_offset"])

    @property
    def sink_state(self) -> dict[str, Any]:
        return dict(self.manifest["sink"])


def write_checkpoint(
    path: str, manifest: dict[str, Any], payload: dict[str, Any]
) -> int:
    """Atomically write one snapshot; returns the file size in bytes.

    The caller's ``manifest`` is augmented with the format version and
    the payload hash/size; it must already carry the identity keys
    (``program``, ``registry``, ``flags``) and the frontier counters.
    """
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    head = dict(manifest)
    head["format_version"] = CHECKPOINT_VERSION
    head["payload_sha256"] = hashlib.sha256(blob).hexdigest()
    head["payload_nbytes"] = len(blob)
    header = json.dumps(head, sort_keys=True).encode("utf-8")

    buf = io.BytesIO()
    buf.write(CHECKPOINT_MAGIC)
    buf.write(_LEN.pack(len(header)))
    buf.write(header)
    buf.write(blob)
    data = buf.getvalue()

    directory = os.path.dirname(os.path.abspath(path))
    tmp = os.path.join(
        directory, f".{os.path.basename(path)}.{os.getpid()}.tmp"
    )
    try:
        with open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    # Durability of the *name*: without the directory fsync a crash can
    # survive the rename in the page cache but lose it on disk.
    try:
        dfd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic filesystems
        return len(data)
    try:
        os.fsync(dfd)
    finally:
        os.close(dfd)
    return len(data)


def read_checkpoint(path: str) -> Checkpoint:
    """Load and verify one snapshot written by :func:`write_checkpoint`."""
    try:
        with open(path, "rb") as fh:
            data = fh.read()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path!r}: {exc}")
    if len(data) < len(CHECKPOINT_MAGIC) + _LEN.size:
        raise CheckpointError(f"checkpoint {path!r} is truncated")
    if not data.startswith(CHECKPOINT_MAGIC):
        raise CheckpointError(
            f"checkpoint {path!r} has bad magic "
            f"{data[: len(CHECKPOINT_MAGIC)]!r}"
        )
    off = len(CHECKPOINT_MAGIC)
    (hlen,) = _LEN.unpack_from(data, off)
    off += _LEN.size
    if len(data) < off + hlen:
        raise CheckpointError(f"checkpoint {path!r} header is truncated")
    try:
        manifest = json.loads(data[off : off + hlen].decode("utf-8"))
    except ValueError as exc:
        raise CheckpointError(
            f"checkpoint {path!r} header is not valid JSON: {exc}"
        )
    version = manifest.get("format_version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointMismatchError(
            "version", version, CHECKPOINT_VERSION
        )
    blob = data[off + hlen :]
    if len(blob) != manifest.get("payload_nbytes"):
        raise CheckpointError(
            f"checkpoint {path!r} payload is truncated: "
            f"{len(blob)} bytes, manifest says "
            f"{manifest.get('payload_nbytes')}"
        )
    digest = hashlib.sha256(blob).hexdigest()
    if digest != manifest.get("payload_sha256"):
        raise CheckpointError(
            f"checkpoint {path!r} payload hash mismatch: file has "
            f"{digest}, manifest says {manifest.get('payload_sha256')}"
        )
    payload = pickle.loads(blob)
    return Checkpoint(path=path, manifest=manifest, payload=payload)


def verify_compatible(
    ckpt: Checkpoint,
    *,
    program_fp: str,
    registry_fp: str,
    flags: dict[str, Any],
) -> None:
    """Refuse resume unless program, registry, and flag set all match.

    Raises :class:`CheckpointMismatchError` naming the first mismatched
    key.  Committed sink output is never touched on refusal — a wrong
    resume must not corrupt a right run's output.
    """
    if ckpt.manifest.get("program") != program_fp:
        raise CheckpointMismatchError(
            "program", ckpt.manifest.get("program"), program_fp
        )
    if ckpt.manifest.get("registry") != registry_fp:
        raise CheckpointMismatchError(
            "registry", ckpt.manifest.get("registry"), registry_fp
        )
    want = canonical_flags(flags)
    have = canonical_flags(ckpt.manifest.get("flags", {}))
    if have != want:
        raise CheckpointMismatchError(
            "flags", ckpt.manifest.get("flags", {}), flags
        )


@dataclass
class CheckpointCadence:
    """When is the next snapshot due?  Firing-count and/or wall-clock.

    ``every_fires`` counts engine firings since the last snapshot (the
    natural unit for the <5% overhead budget: cost amortizes over work
    actually done); ``every_seconds`` bounds data loss on a wall clock
    (the :class:`~repro.runtime.supervise.FaultPolicy` ``checkpoint=``
    knob).  Either, both, or neither may be set; with neither, only
    final checkpoints happen.
    """

    every_fires: int | None = None
    every_seconds: float | None = None
    _last_fires: int = 0
    _last_time: float = field(default_factory=time.monotonic)

    def __post_init__(self) -> None:
        if self.every_fires is not None and self.every_fires < 1:
            raise ValueError("every_fires must be >= 1")
        if self.every_seconds is not None and self.every_seconds <= 0:
            raise ValueError("every_seconds must be > 0")

    @property
    def enabled(self) -> bool:
        return self.every_fires is not None or self.every_seconds is not None

    def due(self, fires: int) -> bool:
        """Is a snapshot due, given total fires committed so far?"""
        if (
            self.every_fires is not None
            and fires - self._last_fires >= self.every_fires
        ):
            return True
        return (
            self.every_seconds is not None
            and time.monotonic() - self._last_time >= self.every_seconds
        )

    def mark(self, fires: int) -> None:
        """Record that a snapshot was just taken at ``fires``."""
        self._last_fires = fires
        self._last_time = time.monotonic()
