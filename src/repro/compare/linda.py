"""A miniature Linda: tuple space with ``out``/``in``/``rd`` (section 8).

"Linda coordinates sub-computations through Tuple Space ... A
sub-computation requests a particular kind of tuple, and the system
responds with a **random selection** from the set of tuples which match
the request."  That random selection is the semantic point Table 2 turns
on: Linda programs may be nondeterministic where Delirium programs cannot
be.

This implementation runs worker processes as cooperative generators over a
seeded scheduler, so a given seed is reproducible while different seeds
explore different interleavings and different tuple selections — exactly
what the Table 2 benchmark measures.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Generator, Iterable

from ..errors import DeliriumError


class TupleSpaceDeadlock(DeliriumError):
    """Every worker is blocked on ``in_``/``rd`` and no tuple matches."""


def _matches(pattern: tuple, candidate: tuple) -> bool:
    """Anti-tuple matching: ``None`` is a wildcard, values must equal."""
    if len(pattern) != len(candidate):
        return False
    return all(p is None or p == c for p, c in zip(pattern, candidate))


class TupleSpace:
    """The shared associative store."""

    def __init__(self, rng: random.Random) -> None:
        self._tuples: list[tuple] = []
        self._rng = rng

    def out(self, *values: Any) -> None:
        """Insert a tuple."""
        self._tuples.append(tuple(values))

    def try_in(self, *pattern: Any) -> tuple | None:
        """Remove and return a random matching tuple, or None."""
        hits = [i for i, t in enumerate(self._tuples) if _matches(pattern, t)]
        if not hits:
            return None
        return self._tuples.pop(self._rng.choice(hits))

    def try_rd(self, *pattern: Any) -> tuple | None:
        """Return (without removing) a random matching tuple, or None."""
        hits = [t for t in self._tuples if _matches(pattern, t)]
        if not hits:
            return None
        return self._rng.choice(hits)

    def count(self, *pattern: Any) -> int:
        return sum(1 for t in self._tuples if _matches(pattern, t))


#: A worker is a generator: it yields ("in", pattern) / ("rd", pattern) to
#: block on a tuple (the matched tuple is sent back), or yields
#: ("out", tuple_values) / None to just give up the processor.
Worker = Generator[tuple | None, tuple | None, None]


def run_workers(
    make_workers: Callable[[TupleSpace], Iterable[Worker]],
    seed: int = 0,
    max_steps: int = 1_000_000,
) -> TupleSpace:
    """Run cooperative Linda workers under a seeded scheduler.

    Each step the scheduler picks a random runnable worker and advances it
    one operation — the model of "whatever interleaving the machine
    happened to produce".  Blocked workers wait for a matching tuple.
    """
    rng = random.Random(seed)
    space = TupleSpace(rng)
    workers = list(make_workers(space))
    waiting: dict[int, tuple[str, tuple]] = {}
    pending_send: dict[int, tuple | None] = {i: None for i in range(len(workers))}
    alive = set(range(len(workers)))

    for _ in range(max_steps):
        runnable = []
        for i in list(alive):
            if i not in waiting:
                runnable.append(i)
                continue
            kind, pattern = waiting[i]
            hit = (
                space.try_in(*pattern)
                if kind == "in"
                else space.try_rd(*pattern)
            )
            if hit is not None:
                del waiting[i]
                pending_send[i] = hit
                runnable.append(i)
        if not runnable:
            if not alive:
                return space
            raise TupleSpaceDeadlock(
                f"{len(alive)} worker(s) blocked with no matching tuples"
            )
        i = rng.choice(runnable)
        try:
            request = workers[i].send(pending_send[i])
            pending_send[i] = None
        except StopIteration:
            alive.discard(i)
            continue
        if request is None:
            continue
        op = request[0]
        if op in ("in", "rd"):
            waiting[i] = (op, tuple(request[1]))
        elif op == "out":
            space.out(*request[1])
        else:  # pragma: no cover - worker programming error
            raise DeliriumError(f"unknown tuple-space op {op!r}")
    raise TupleSpaceDeadlock("worker pool did not terminate")


def replicated_worker_sum(
    items: list[float], n_workers: int = 4, seed: int = 0
) -> float:
    """The replicated-worker idiom (section 9.1) over a float reduction.

    Workers repeatedly ``in`` two partial sums and ``out`` their sum; the
    result *value* depends on association order, which depends on the
    tuple selections — nondeterministic across seeds in floating point.
    """

    def make_workers(space: TupleSpace):
        for x in items:
            space.out("part", float(x))
        space.out("remaining", len(items) - 1)

        def worker() -> Worker:
            while True:
                remaining = yield ("in", ("remaining", None))
                assert remaining is not None
                if remaining[1] <= 0:
                    space.out("remaining", remaining[1])
                    return
                space.out("remaining", remaining[1] - 1)
                a = yield ("in", ("part", None))
                b = yield ("in", ("part", None))
                assert a is not None and b is not None
                space.out("part", a[1] + b[1])

        return [worker() for _ in range(n_workers)]

    space = run_workers(make_workers, seed=seed)
    final = space.try_in("part", None)
    assert final is not None
    return final[1]
