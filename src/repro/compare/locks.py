"""The uniform-shared-memory coordination model (section 8).

"The simplest of all coordination models is that of uniform, distributed
shared memory ... Higher-level coordination is done with locking (mutual
exclusion) primitives embedded in a host language."

This module models that style the way the Table 2 benchmark needs it:
tasks read and write shared cells under a lock, and the *interleaving* is
whatever the machine produced — here, a seeded scheduler, so one seed is
reproducible but different seeds yield different execution orders, and any
order-sensitive computation (floating-point reduction, last-writer-wins
updates) yields different results.  Locks give atomicity, not
determinism; that is the contrast with Delirium's model.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass
class SharedMemory:
    """Shared cells plus bookkeeping of every (atomic) access."""

    cells: dict[str, Any] = field(default_factory=dict)
    accesses: int = 0

    def read(self, key: str, default: Any = None) -> Any:
        self.accesses += 1
        return self.cells.get(key, default)

    def write(self, key: str, value: Any) -> None:
        self.accesses += 1
        self.cells[key] = value


@dataclass
class LockStats:
    acquisitions: int = 0
    contentions: int = 0


def run_lock_program(
    tasks: list[Callable[[SharedMemory], None]],
    n_workers: int = 4,
    seed: int = 0,
) -> tuple[SharedMemory, LockStats]:
    """Execute ``tasks`` on a simulated lock-based worker pool.

    Each worker repeatedly grabs the next task off a shared queue (under
    the lock) and runs it atomically.  The seeded scheduler decides which
    worker wins each race — the model's nondeterminism knob.  Tasks run
    atomically (coarse-grain critical sections), so this is the *best
    behaved* version of the model; even so, order-sensitive results vary
    by seed.
    """
    rng = random.Random(seed)
    memory = SharedMemory()
    stats = LockStats()
    queue = list(tasks)
    workers = list(range(n_workers))
    while queue:
        contenders = [w for w in workers if rng.random() < 0.9] or workers
        _winner = rng.choice(contenders)
        stats.acquisitions += 1
        stats.contentions += len(contenders) - 1
        task = queue.pop(rng.randrange(len(queue)) if len(queue) > 1 else 0)
        task(memory)
    return memory, stats


def lock_based_sum(items: list[float], n_workers: int = 4, seed: int = 0) -> float:
    """A float reduction through a shared accumulator under a lock.

    Atomic, race-free — and still seed-dependent, because addition order
    follows the workers' task-grabbing order.
    """

    def make_task(x: float) -> Callable[[SharedMemory], None]:
        def task(memory: SharedMemory) -> None:
            memory.write("acc", memory.read("acc", 0.0) + x)

        return task

    memory, _ = run_lock_program(
        [make_task(float(x)) for x in items], n_workers, seed
    )
    return memory.read("acc", 0.0)
