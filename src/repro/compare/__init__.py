"""Baseline coordination models for the Table 2 comparison.

Delirium's model (restricted shared data, embedding notation) is compared
against a miniature Linda (shared associative database, embedded) and a
uniform-shared-memory/locking model (embedded).  Both baselines are real
executable substrates with seeded schedulers, so the comparison in
``benchmarks/bench_table2_models.py`` can *measure* the one property the
paper's table is really about: whether results depend on execution order.
"""

from .linda import TupleSpace, TupleSpaceDeadlock, replicated_worker_sum, run_workers
from .locks import LockStats, SharedMemory, lock_based_sum, run_lock_program

__all__ = [
    "LockStats",
    "SharedMemory",
    "TupleSpace",
    "TupleSpaceDeadlock",
    "lock_based_sum",
    "replicated_worker_sum",
    "run_lock_program",
    "run_workers",
]
