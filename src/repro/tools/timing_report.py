"""Node-timing reports in the paper's format.

Section 5.2 shows the tool's output on the Cray-2::

    call of convol_split took 10013
    call of convol_bite took 1059919
    call of convol_bite took 1135594
    ...

and the narrative that found the ``post_up`` bottleneck: "Roughly half of
its invocations executed in negligible time while half took as long as all
the convolutions combined."  :func:`node_timing_report` renders a
:class:`~repro.runtime.tracing.Tracer` the same way;
:func:`load_balance_summary` computes the imbalance diagnosis the authors
did by eye.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..obs.critpath import CriticalPathReport
from ..runtime.tracing import Tracer


def node_timing_report(
    tracer: Tracer,
    include: set[str] | None = None,
    ops_only: bool = True,
    unit: str = "ticks",
) -> str:
    """The paper's ``call of X took N`` dump.

    Parameters
    ----------
    tracer:
        Timings from a traced run.
    include:
        Restrict to these labels (``None`` = all).
    ops_only:
        Show only operator executions (the engine nodes are noise).
    unit:
        Annotation only; ticks for simulated runs, seconds for real ones.
    """
    records = tracer.op_records() if ops_only else tracer.records
    lines = []
    for r in records:
        if include is not None and r.label not in include:
            continue
        shown = int(round(r.ticks)) if unit == "ticks" else r.ticks
        lines.append(f"call of {r.label} took {shown}")
    return "\n".join(lines)


@dataclass
class LoadBalanceSummary:
    """Imbalance diagnosis over one traced run."""

    #: label -> (count, total, mean, max)
    per_label: dict[str, tuple[int, float, float, float]]
    #: The label with the largest single execution.
    bottleneck: str
    bottleneck_max: float
    #: Largest single execution / mean of everything else — >> 1 means one
    #: node serializes the computation (the paper's post_up at ~4M ticks
    #: vs. ~1M-tick convolutions).
    imbalance_ratio: float

    def describe(self) -> str:
        # Tick totals are large integers; wall-clock totals are fractions
        # of a second and would all round to 0 in integer columns.
        whole = all(
            total >= 1 or total == 0
            for (_, total, _, _) in self.per_label.values()
        )
        fmt = ".0f" if whole else ".6f"
        lines = [
            f"{'label':<20} {'n':>5} {'total':>14} {'mean':>12} {'max':>12}"
        ]
        for label, (n, total, mean, peak) in sorted(
            self.per_label.items(), key=lambda kv: -kv[1][1]
        ):
            lines.append(
                f"{label:<20} {n:>5} {total:>14{fmt}} "
                f"{mean:>12{fmt}} {peak:>12{fmt}}"
            )
        lines.append(
            f"bottleneck: {self.bottleneck} (max {self.bottleneck_max:{fmt}}, "
            f"imbalance ratio {self.imbalance_ratio:.2f})"
        )
        return "\n".join(lines)


def load_balance_summary(
    tracer: Tracer, include: set[str] | None = None
) -> LoadBalanceSummary:
    """Aggregate a trace into the per-label table and imbalance ratio."""
    per_label: dict[str, tuple[int, float, float, float]] = {}
    grouped: dict[str, list[float]] = {}
    for r in tracer.op_records():
        if include is not None and r.label not in include:
            continue
        grouped.setdefault(r.label, []).append(r.ticks)
    for label, ticks in grouped.items():
        per_label[label] = (
            len(ticks),
            sum(ticks),
            sum(ticks) / len(ticks),
            max(ticks),
        )
    if not per_label:
        return LoadBalanceSummary({}, "", 0.0, 0.0)
    bottleneck, (_, _, _, peak) = max(
        per_label.items(), key=lambda kv: kv[1][3]
    )
    others = [
        t for label, ts in grouped.items() if label != bottleneck for t in ts
    ]
    mean_others = sum(others) / len(others) if others else peak
    ratio = peak / mean_others if mean_others > 0 else float("inf")
    return LoadBalanceSummary(per_label, bottleneck, peak, ratio)


def critical_path_section(
    report: CriticalPathReport, unit: str = "seconds", top: int = 12
) -> str:
    """Render a causal profile alongside the additive timing reports.

    The ``call of X took N`` dump says where time went in aggregate;
    this section says which chain of firings *determined* the makespan —
    and, via slack, which expensive-looking firings were actually free
    (their results sat unneeded, so speeding them up buys nothing).
    """
    lines = [report.describe(unit=unit, top=top)]
    fmt = (lambda v: f"{v:.6f}") if unit == "seconds" else (
        lambda v: f"{v:.0f}"
    )
    slackest = report.top_slack(5)
    if slackest:
        lines.append("most slack (off the path; optimizing these buys ~0):")
        for label, s in slackest:
            lines.append(f"  {label:<22} {fmt(s):>12}")
    return "\n".join(lines)


def pass_table(
    sequential: dict[str, float],
    parallel: dict[str, float],
    n_processors: int,
    unit: str = "ticks",
) -> str:
    """Render Table 1 ("Time Per Compiler Pass") from two timing dicts."""
    width = max(len(k) for k in sequential) + 2
    lines = [
        f"Time Per Compiler Pass (in {unit})",
        f"{'Pass':<{width}} {'Sequential':>12} {f'Parallel (n={n_processors})':>16}",
    ]
    total_seq = total_par = 0.0
    for name, seq in sequential.items():
        par = parallel.get(name, float("nan"))
        total_seq += seq
        total_par += par
        lines.append(f"{name:<{width}} {seq:>12.0f} {par:>16.0f}")
    lines.append(f"{'Totals':<{width}} {total_seq:>12.0f} {total_par:>16.0f}")
    lines.append(
        f"overall speedup: {total_seq / total_par:.2f}"
        if total_par
        else "overall speedup: n/a"
    )
    return "\n".join(lines)
