"""Compile cache for the ``delirium`` CLI.

Templates are static, so a compiled coordination graph is a pure function
of (source text, preprocessor defines, optimization passes).  The CLI
hashes that triple — plus the serialization format version, so stale
artifacts from older builds can never be misread — and keeps the
serialized graph JSON under the cache directory.  A later ``delirium
run``/``compile`` of unchanged source skips the compiler entirely, the
same shortcut the paper's environment got from shipping compiled
frameworks to the runtime.

The cache directory is ``$DELIRIUM_CACHE_DIR`` when set, otherwise
``~/.cache/delirium``.  Entries are content-addressed, so no invalidation
is ever needed: editing the source (or changing ``-D``/``--no-optimize``)
simply computes a different key.  ``--no-cache`` bypasses both read and
write.

The active pass set is part of the key, and the CLI encodes ``--fuse`` as
the extra pass name ``"fuse"`` in that tuple — so fused and unfused
compilations of identical source occupy *different* cache entries and can
never be served to each other (``tests/test_fuse.py`` pins this).  The
same mechanism keys ``--codegen`` (lowered and interpreted graphs never
share an entry) and ``--batch`` (sources with and without the generated
batch binder are distinct entries, even though the pass is a graph no-op
when codegen is off).

``$DELIRIUM_CACHE_MAX`` (an entry count) bounds the cache with LRU
eviction: every hit refreshes the entry's mtime, and a store that pushes
the population over the bound deletes the stalest entries.  Eviction is
safe under concurrent readers because a reader losing the race simply
sees a miss (``load_cached`` treats a vanished file as one) and
recompiles.  Unset or non-positive means unbounded, the historical
behavior.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile

from ..graph.ir import GraphProgram
from ..graph.serialize import FORMAT_VERSION, dumps, loads


def cache_dir() -> str:
    """The cache directory (not created until a graph is stored)."""
    override = os.environ.get("DELIRIUM_CACHE_DIR")
    if override:
        return override
    return os.path.join(os.path.expanduser("~"), ".cache", "delirium")


def cache_key(
    source: str,
    defines: dict[str, object] | None = None,
    passes: tuple[str, ...] | None = None,
) -> str:
    """Content hash of everything that determines the compiled graph."""
    payload = json.dumps(
        {
            "format": FORMAT_VERSION,
            "source": source,
            "defines": sorted(
                (k, repr(v)) for k, v in (defines or {}).items()
            ),
            "passes": list(passes or ()),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _entry_path(key: str) -> str:
    return os.path.join(cache_dir(), f"{key}.dlc")


def cache_max_entries() -> int | None:
    """The LRU bound from ``$DELIRIUM_CACHE_MAX``, or None (unbounded)."""
    raw = os.environ.get("DELIRIUM_CACHE_MAX")
    if not raw:
        return None
    try:
        bound = int(raw)
    except ValueError:
        return None
    return bound if bound > 0 else None


def _evict_lru(directory: str, bound: int) -> int:
    """Delete stalest ``.dlc`` entries beyond ``bound``; returns count.

    Recency is mtime: stores write it, hits refresh it.  Every
    filesystem call tolerates a concurrent evictor or reader having
    raced us — a vanished file is simply someone else's eviction.
    """
    try:
        names = [n for n in os.listdir(directory) if n.endswith(".dlc")]
    except OSError:
        return 0
    entries = []
    for name in names:
        path = os.path.join(directory, name)
        try:
            entries.append((os.path.getmtime(path), path))
        except OSError:
            continue  # already evicted by a concurrent process
    excess = len(entries) - bound
    if excess <= 0:
        return 0
    evicted = 0
    for _, path in sorted(entries)[:excess]:
        try:
            os.unlink(path)
            evicted += 1
        except OSError:
            continue
    return evicted


def load_cached(key: str) -> GraphProgram | None:
    """The cached graph for ``key``, or None on miss or unreadable entry."""
    path = _entry_path(key)
    try:
        with open(path, "r", encoding="utf-8") as fh:
            program = loads(fh.read())
    except Exception:  # noqa: BLE001
        # A missing, corrupt, or foreign-format entry is equivalent to a
        # miss; the store below rewrites it atomically.
        return None
    try:
        os.utime(path)  # LRU touch: a hit makes the entry recent again
    except OSError:
        pass  # concurrently evicted — the graph in hand is still good
    return program


def store_cached(key: str, program: GraphProgram) -> str:
    """Serialize ``program`` under ``key``; returns the entry path.

    The write is atomic (temp file + rename) so a concurrent reader never
    sees a truncated entry.
    """
    directory = cache_dir()
    os.makedirs(directory, exist_ok=True)
    path = _entry_path(key)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(dumps(program))
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    bound = cache_max_entries()
    if bound is not None:
        _evict_lru(directory, bound)
    return path
