"""Compare two simulated runs: the before/after view of a tuning step.

The paper's case studies are narratives of *differential* measurements —
v1 vs v2 of the retina, priorities on vs off, replication on vs off.
:func:`compare` packages that workflow: feed it two
:class:`~repro.machine.simulator.SimResult` objects (same program, any
two configurations) and it reports the speedup, per-operator time deltas
(from traces, when present), traffic deltas, and activation deltas — the
table a programmer reads after every change, like sections 5.2/6.3 did.

When both runs were profiled causally (``RunContext(record_events=True)``
+ :func:`~repro.obs.critpath.critical_path`), pass the two reports too:
the comparison then also diffs the *critical paths* — where the
bottleneck chain moved, not just which operators got faster in
aggregate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..machine.simulator import SimResult
from ..obs.critpath import CriticalPathReport, compare_critical_paths


@dataclass
class RunComparison:
    """The delta report between a baseline and a candidate run."""

    baseline_ticks: float
    candidate_ticks: float
    #: operator label -> (baseline total ticks, candidate total ticks)
    per_operator: dict[str, tuple[float, float]] = field(default_factory=dict)
    traffic_delta: dict[str, float] = field(default_factory=dict)
    activation_delta: dict[str, int] = field(default_factory=dict)
    #: Critical-path diff (:func:`~repro.obs.critpath.
    #: compare_critical_paths`) when both runs supplied reports.
    critical_path_diff: str = ""

    @property
    def speedup(self) -> float:
        if self.candidate_ticks <= 0:
            return float("inf")
        return self.baseline_ticks / self.candidate_ticks

    def regressions(self) -> list[str]:
        """Operator labels whose total time grew in the candidate."""
        return [
            label
            for label, (before, after) in self.per_operator.items()
            if after > before * 1.001
        ]

    def describe(self, top: int = 8) -> str:
        lines = [
            f"makespan: {self.baseline_ticks:.0f} -> "
            f"{self.candidate_ticks:.0f} ticks "
            f"(speedup {self.speedup:.2f}x)"
        ]
        if self.per_operator:
            lines.append(f"{'operator':<20}{'baseline':>12}{'candidate':>12}{'delta':>10}")
            ranked = sorted(
                self.per_operator.items(),
                key=lambda kv: -(kv[1][0] + kv[1][1]),
            )[:top]
            for label, (before, after) in ranked:
                lines.append(
                    f"{label:<20}{before:>12.0f}{after:>12.0f}"
                    f"{after - before:>+10.0f}"
                )
        for key, delta in self.traffic_delta.items():
            if delta:
                lines.append(f"traffic {key}: {delta:+.0f} bytes")
        for key, delta in self.activation_delta.items():
            if delta:
                lines.append(f"activations {key}: {delta:+d}")
        if self.critical_path_diff:
            lines.append("")
            lines.append(self.critical_path_diff)
        return "\n".join(lines)


def compare(
    baseline: SimResult,
    candidate: SimResult,
    baseline_critpath: CriticalPathReport | None = None,
    candidate_critpath: CriticalPathReport | None = None,
) -> RunComparison:
    """Build the delta report; raises if the runs computed different values
    (comparing runs of different programs is always a mistake)."""
    same = baseline.value == candidate.value
    try:
        same = bool(same)
    except Exception:  # numpy arrays etc.
        import numpy as np

        same = bool(np.array_equal(baseline.value, candidate.value))
    if not same:
        raise ValueError(
            "runs computed different results; comparison would be "
            "meaningless (different programs or arguments?)"
        )
    out = RunComparison(
        baseline_ticks=baseline.ticks, candidate_ticks=candidate.ticks
    )
    if baseline.tracer is not None and candidate.tracer is not None:
        before = baseline.tracer.totals_by_label()
        after = candidate.tracer.totals_by_label()
        for label in sorted(set(before) | set(after)):
            out.per_operator[label] = (
                before.get(label, 0.0),
                after.get(label, 0.0),
            )
    out.traffic_delta = {
        "remote": float(
            candidate.traffic.remote_bytes - baseline.traffic.remote_bytes
        ),
        "template_fetch": float(
            candidate.traffic.template_fetch_bytes
            - baseline.traffic.template_fetch_bytes
        ),
    }
    if baseline_critpath is not None and candidate_critpath is not None:
        out.critical_path_diff = compare_critical_paths(
            baseline_critpath, candidate_critpath
        )
    out.activation_delta = {
        "peak_live": (
            candidate.stats.activation_stats.get("peak_live", 0)
            - baseline.stats.activation_stats.get("peak_live", 0)
        ),
        "created": (
            candidate.stats.activation_stats.get("created", 0)
            - baseline.stats.activation_stats.get("created", 0)
        ),
    }
    return out
