"""``delirium`` command line interface.

Subcommands mirror the workflow of the paper's programming environment:

* ``compile FILE`` — compile a ``.dlm`` source, print template dumps and
  per-pass times;
* ``run FILE [--arg N ...]`` — compile and execute (sequentially or on a
  simulated machine), printing the result;
* ``viz FILE`` — emit the coordination framework (ASCII layers or DOT);
* ``profile FILE`` — run with node timings on a simulated machine and
  print the paper-style ``call of X took N`` report plus the load-balance
  summary (``--json`` for the metrics-registry snapshot instead);
* ``trace FILE`` — run with full observability (event bus + metrics +
  trace collection), write a Chrome/Perfetto trace file, and print the
  metrics summary.

Programs compiled here have access to the builtin operators only; the case
studies ship their own drivers (``python -m repro.apps.retina`` etc.)
because their operators are Python code.
"""

from __future__ import annotations

import argparse
import ast as python_ast
import sys

from ..compiler import compile_file
from ..graph.validate import validate_program
from ..graph.viz import ascii_framework, to_dot
from ..machine import PRESETS, SimulatedExecutor
from ..obs import (
    TICK_SCALE,
    WALL_SCALE,
    ChromeTraceCollector,
    EventBus,
    attach_metrics,
    observe_blocks,
)
from ..runtime import ProcessExecutor, SequentialExecutor, ThreadedExecutor
from .timeline import gantt
from .timing_report import (
    critical_path_section,
    load_balance_summary,
    node_timing_report,
)


def _parse_value(text: str) -> object:
    """Parse a CLI argument: int/float/string literal."""
    try:
        return python_ast.literal_eval(text)
    except (ValueError, SyntaxError):
        return text


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("file", help="Delirium source file")
    parser.add_argument(
        "--define",
        "-D",
        action="append",
        default=[],
        metavar="NAME=VALUE",
        help="symbolic constant for the preprocessor",
    )
    parser.add_argument(
        "--no-optimize",
        action="store_true",
        help="disable the optimization passes",
    )
    parser.add_argument(
        "--fuse",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="fuse cheap single-consumer operator chains into super-nodes "
        "(--no-fuse reproduces the unfused graphs bit-for-bit)",
    )
    parser.add_argument(
        "--donate",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="annotate statically-proven last-use edges so the engine "
        "skips copy-on-write and recycles buffers (--no-donate keeps "
        "every copy decision dynamic)",
    )
    parser.add_argument(
        "--codegen",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="lower fused chains to generated specialized Python at "
        "graph-finalize time (--no-codegen interprets each recipe step "
        "by step; results are bit-identical either way)",
    )
    parser.add_argument(
        "--batch",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="coalesce same-node ready fires into vectorized batches "
        "executed through one call (and, for --executor process, one "
        "IPC message per batch); --no-batch fires strictly one at a "
        "time.  Results are bit-identical either way",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the compile cache (~/.cache/delirium or "
        "$DELIRIUM_CACHE_DIR)",
    )


def _add_executor(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--executor",
        choices=("sequential", "threaded", "process"),
        default="sequential",
        help="how to execute: in-process sequentially (default), on OS "
        "threads, or with operator bodies on worker processes",
    )
    parser.add_argument(
        "--workers",
        "-w",
        type=int,
        default=4,
        metavar="N",
        help="worker count for --executor threaded/process (default 4)",
    )
    parser.add_argument(
        "--recalibrate",
        action="store_true",
        help="measure per-operator wall costs fresh (one traced "
        "sequential run) and persist them for this program/registry/"
        "machine; --executor process then dispatches from measured "
        "costs instead of heuristics.  Without the flag a previously "
        "persisted table is loaded when one exists",
    )
    parser.add_argument(
        "--affinity",
        choices=("none", "operator", "data"),
        default="data",
        help="locality policy for --executor process dispatch: 'data' "
        "(default) places fires on the idle worker holding the most "
        "input bytes and ships already-resident blocks by reference; "
        "'operator' prefers the worker an operator last ran on; 'none' "
        "is legacy least-loaded dispatch with full encodings.  Results "
        "are bit-identical across all three",
    )
    parser.add_argument(
        "--fault-policy",
        metavar="SPEC",
        default=None,
        help="fault-tolerance knobs as comma-separated KEY=VALUE pairs: "
        "retries=N, timeout=SECONDS|none, backoff=SECONDS, "
        "degrade=ladder|off, respawns=N (e.g. "
        "'retries=3,timeout=30,degrade=off')",
    )
    parser.add_argument(
        "--inject-faults",
        metavar="SPEC",
        default=None,
        help="deterministic fault injection for chaos testing: "
        "semicolon-separated clauses KIND[:KEY=VALUE,...] with kinds "
        "raise|delay|kill|arena|cachemiss and params op=, p=, nth=, "
        "times=, seconds=, seed= (e.g. "
        "'raise:op=scale,p=0.1;kill:p=0.02')",
    )


def _add_obs(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--run-id",
        metavar="ID",
        default=None,
        help="name for this run's observability scope (flight-recorder "
        "dump file, /healthz document); generated when omitted",
    )
    parser.add_argument(
        "--flight-recorder",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="keep a bounded ring of coarse runtime events and dump it "
        "to <run-id>.flightrec.json on worker crashes, fire timeouts, "
        "executor degradation, or failure (default on)",
    )
    parser.add_argument(
        "--flightrec-dir",
        metavar="DIR",
        default=None,
        help="directory for flight-recorder dumps (default: cwd)",
    )
    parser.add_argument(
        "--metrics-port",
        type=int,
        metavar="PORT",
        default=None,
        help="serve Prometheus metrics on http://127.0.0.1:PORT/metrics "
        "(and /healthz) for the duration of the run; 0 picks a free port",
    )


def _make_run_ctx(
    ns: argparse.Namespace, record_events: bool = False
):
    """Build the run-scoped observability context the flags ask for."""
    from ..obs import RunContext

    return RunContext(
        ns.run_id,
        # The metrics subscriber watches per-fire events; without a
        # scrape surface the default `run` path should not pay for it.
        metrics=ns.metrics_port is not None or record_events,
        flight_recorder=ns.flight_recorder,
        flightrec_dir=ns.flightrec_dir,
        record_events=record_events,
    )


def _serve_metrics(ctx, ns: argparse.Namespace):
    """Start the scrape endpoint when --metrics-port was given."""
    if ns.metrics_port is None:
        return None
    server = ctx.serve_metrics(port=ns.metrics_port)
    print(
        f"serving metrics at http://127.0.0.1:{server.port}/metrics "
        f"(run id {ctx.run_id})",
        file=sys.stderr,
    )
    return server


def _fault_options(ns: argparse.Namespace) -> dict:
    """Parse --fault-policy / --inject-faults into executor kwargs."""
    out: dict = {}
    if getattr(ns, "fault_policy", None):
        from ..runtime.supervise import FaultPolicy

        out["fault_policy"] = FaultPolicy.parse(ns.fault_policy)
    if getattr(ns, "inject_faults", None):
        from ..faults import parse_fault_spec

        out["fault_spec"] = parse_fault_spec(ns.inject_faults)
    return out


def _dispatch_costs(
    ns: argparse.Namespace, compiled, run_args: tuple
) -> dict | None:
    """Measured per-operator costs for the process executor, if any.

    ``--recalibrate`` measures fresh (and persists the table);
    otherwise a previously persisted table for this program/registry/
    machine is loaded when present.  Sequential and threaded executors
    never pay for this — dispatch costs only steer IPC decisions.
    """
    if getattr(ns, "executor", None) != "process":
        return None
    from ..machine.calibrate import calibrate_dispatch_cached

    if not ns.recalibrate:
        from ..machine.calibrate import load_dispatch_calibration

        loaded = load_dispatch_calibration(compiled.graph, compiled.registry)
        return loaded.seconds_by_operator if loaded is not None else None
    calibration = calibrate_dispatch_cached(
        compiled.graph,
        compiled.registry,
        args=run_args,
        force=True,
    )
    print(
        f"calibrated {len(calibration.seconds_by_operator)} operator(s): "
        f"{len(calibration.dispatch)} dispatched, "
        f"{len(calibration.keep_local)} kept local",
        file=sys.stderr,
    )
    return calibration.seconds_by_operator


def _make_executor(
    ns: argparse.Namespace,
    trace: bool = False,
    bus=None,
    run_ctx=None,
    measured_costs: dict | None = None,
):
    """Build the real (non-simulated) executor the flags ask for."""
    faults = _fault_options(ns)
    if run_ctx is not None:
        faults["run_ctx"] = run_ctx
    batch = getattr(ns, "batch", True)
    if ns.executor == "threaded":
        return ThreadedExecutor(
            ns.workers, trace=trace, bus=bus, batch=batch, **faults
        )
    if ns.executor == "process":
        if measured_costs:
            faults["measured_costs"] = measured_costs
            # Measured costs also size the batches: cheap dispatched
            # operators coalesce wide, expensive ones near-singleton.
            from ..machine.calibrate import suggest_batch_threshold

            faults["batch_threshold"] = suggest_batch_threshold(
                measured_costs
            )
        return ProcessExecutor(
            ns.workers,
            trace=trace,
            bus=bus,
            batch=batch,
            affinity=getattr(ns, "affinity", "data"),
            **faults,
        )
    return SequentialExecutor(trace=trace, bus=bus, batch=batch, **faults)


def _pass_tuple(args: argparse.Namespace) -> tuple[str, ...]:
    """The optimization pass tuple the flags select.

    Shared by compilation, the compile-cache key, and the checkpoint
    flag-set identity — a resume under different passes must fail the
    ``flags`` compatibility gate, not silently diverge.
    """
    passes = () if args.no_optimize else ("inline", "constprop", "cse", "dce")
    if args.fuse:
        # Graph-pass flags are part of the pass tuple, so the compile
        # cache key (which hashes the pass set) can never serve a --fuse
        # or --donate graph to an invocation that disabled it, or vice
        # versa.
        passes = passes + ("fuse",)
    if args.donate:
        passes = passes + ("donate",)
    if args.codegen:
        # On a --no-fuse graph the pass has nothing to lower and the
        # compiled output is unchanged, but the cache key still
        # distinguishes the two (the pass set is hashed).
        passes = passes + ("codegen",)
    if args.batch:
        # Appends batch binders to codegen sources (no-op without
        # codegen).  In the pass tuple even then, so --batch and
        # --no-batch compilations never share a cache entry.
        passes = passes + ("batch",)
    return passes


def _defines(pairs: list[str]) -> dict[str, object]:
    out: dict[str, object] = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"bad --define {pair!r}; expected NAME=VALUE")
        name, value = pair.split("=", 1)
        out[name] = _parse_value(value)
    return out


def _parse_stream_spec(spec: str):
    """``count:N`` / ``count:`` / ``lines:FILE`` → a pull-based source."""
    from ..runtime.stream import LineSource, count_source

    if spec.startswith("count:"):
        rest = spec[len("count:") :]
        if rest in ("", "inf"):
            return count_source(None)
        try:
            return count_source(int(rest))
        except ValueError:
            raise SystemExit(
                f"bad --stream {spec!r}: count wants an integer"
            )
    if spec.startswith("lines:"):
        return LineSource(spec[len("lines:") :])
    raise SystemExit(
        f"bad --stream {spec!r}; expected count:N or lines:FILE"
    )


def _run_stream(ns: argparse.Namespace, compiled) -> int:
    """The ``delirium run --stream`` path: one run per item, with
    optional durable sink, checkpoints, and resume."""
    import json as json_mod

    from ..runtime.checkpoint import CheckpointMismatchError
    from ..runtime.stream import JsonlSink, MemorySink, StreamRunner
    from ..runtime.workers import install_arena_signal_cleanup

    install_arena_signal_cleanup()
    ctx = _make_run_ctx(ns)
    server = _serve_metrics(ctx, ns)
    faults = _fault_options(ns)
    # The checkpoint's flag-set identity: the compile pass tuple (the
    # compile-cache key ingredient) plus everything that changes what
    # the stream writes.  Executor choice is deliberately absent —
    # bit-identity across executors is the standing guarantee.
    flags = {
        "passes": list(_pass_tuple(ns)),
        "defines": {k: v for k, v in sorted(_defines(ns.define).items())},
        "carry": bool(ns.carry),
    }
    source = _parse_stream_spec(ns.stream)
    sink = (
        JsonlSink(ns.sink, resume=ns.resume is not None)
        if ns.sink
        else MemorySink()
    )
    runner = StreamRunner(
        compiled,
        executor=ns.executor,
        n_workers=ns.workers,
        carry=ns.carry,
        initial=(
            _parse_value(ns.initial) if ns.initial is not None else None
        ),
        max_ready=ns.max_ready,
        checkpoint_path=ns.checkpoint,
        checkpoint_every=ns.checkpoint_every,
        fault_policy=faults.get("fault_policy"),
        fault_spec=faults.get("fault_spec"),
        flags=flags,
        run_ctx=ctx,
    )
    try:
        result = runner.run(source, sink, resume=ns.resume)
    except CheckpointMismatchError as exc:
        print(f"RESUME REFUSED: {exc}", file=sys.stderr)
        return 2
    finally:
        runner.close()
        sink.close()
        if server is not None:
            server.stop()
    summary = {
        "items": result.items,
        "fires": result.fires,
        "wall_seconds": round(result.wall_seconds, 6),
        "checkpoints": result.checkpoints_written,
        "resumed_from": result.resumed_from,
        "sink_digest": result.sink_digest,
    }
    print(f"# {json_mod.dumps(summary, sort_keys=True)}", file=sys.stderr)
    if isinstance(sink, MemorySink) and sink.items:
        print(sink.items[-1])
    elif ns.carry:
        print(result.value)
    return 0


class _LoadedGraph:
    """Adapter giving a loaded ``.dlc`` graph the CompiledProgram shape."""

    def __init__(self, graph, cached: bool = False) -> None:
        self.graph = graph
        self.registry = None  # builtins; supplied by the executor default
        self.pass_seconds: dict[str, float] = {}
        self.cached = cached


def _compile(args: argparse.Namespace):
    if args.file.endswith(".dlc"):
        from ..graph.serialize import load

        return _LoadedGraph(load(args.file))
    passes = _pass_tuple(args)
    defines = _defines(args.define)
    key = None
    if not args.no_cache:
        from .cache import cache_key, load_cached

        try:
            with open(args.file, "r", encoding="utf-8") as fh:
                source = fh.read()
        except OSError as exc:
            raise SystemExit(f"cannot read {args.file}: {exc}") from exc
        key = cache_key(source, defines, passes)
        graph = load_cached(key)
        if graph is not None:
            return _LoadedGraph(graph, cached=True)
    compiled = compile_file(
        args.file, defines=defines, optimize_passes=passes
    )
    if key is not None:
        from .cache import store_cached

        store_cached(key, compiled.graph)
    return compiled


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="delirium",
        description="The Delirium coordination-language environment "
        "(reproduction of Lucco & Sharp, SC 1990).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_compile = sub.add_parser("compile", help="compile and dump templates")
    _add_common(p_compile)
    p_compile.add_argument(
        "--emit",
        metavar="FILE.dlc",
        help="write the compiled coordination graphs as JSON",
    )

    p_validate = sub.add_parser(
        "validate", help="structurally validate a program or .dlc file"
    )
    _add_common(p_validate)

    p_run = sub.add_parser("run", help="compile and execute")
    _add_common(p_run)
    _add_executor(p_run)
    _add_obs(p_run)
    p_run.add_argument(
        "--arg", action="append", default=[], help="argument to main()"
    )
    p_run.add_argument(
        "--machine",
        choices=sorted(PRESETS),
        help="execute on a simulated machine instead of directly",
    )
    p_run.add_argument("--processors", "-p", type=int, default=None)
    p_run.add_argument(
        "--stream",
        metavar="SPEC",
        default=None,
        help="run the program once per stream item instead of once: "
        "'count:N' feeds item indices 0..N-1 ('count:' streams "
        "forever), 'lines:FILE' feeds JSON lines from FILE.  Items "
        "arrive as main()'s argument; memory stays flat regardless of "
        "stream length",
    )
    p_run.add_argument(
        "--carry",
        action="store_true",
        help="thread each run's result into the next as main()'s first "
        "argument (main(carry, item)); --initial seeds the first carry",
    )
    p_run.add_argument(
        "--initial",
        metavar="VALUE",
        default=None,
        help="initial carry value for --carry (int/float/string literal)",
    )
    p_run.add_argument(
        "--sink",
        metavar="FILE.jsonl",
        default=None,
        help="append one JSON line per committed stream item (durable, "
        "digest-chained); default: keep results in memory and print "
        "the last",
    )
    p_run.add_argument(
        "--checkpoint",
        metavar="FILE.ckpt",
        default=None,
        help="atomically snapshot the stream frontier to FILE so a "
        "killed run can --resume; written on the --checkpoint-every "
        "cadence, on the fault-policy checkpoint= wall-clock cadence, "
        "and at end of stream",
    )
    p_run.add_argument(
        "--checkpoint-every",
        type=int,
        metavar="FIRES",
        default=None,
        help="checkpoint after every N engine firings (cost amortizes "
        "over work done; keeps overhead under the <5%% budget)",
    )
    p_run.add_argument(
        "--resume",
        metavar="FILE.ckpt",
        default=None,
        help="resume a killed streaming run from its checkpoint: seeks "
        "the source, truncates the sink to its durable prefix, and "
        "continues — output is bit-identical to an uninterrupted run. "
        "Refuses (naming the key) if the program, registry, or flag "
        "set differs from the checkpointed run",
    )
    p_run.add_argument(
        "--max-ready",
        type=int,
        metavar="N",
        default=None,
        help="ready-queue saturation watermark: emits QueueSaturated "
        "(and counts queue_saturations) when a run's ready set crosses "
        "N — the backpressure signal",
    )

    p_viz = sub.add_parser("viz", help="render the coordination framework")
    _add_common(p_viz)
    p_viz.add_argument("--dot", action="store_true", help="emit Graphviz DOT")

    sub.add_parser("repl", help="interactive read-eval-print loop")

    p_profile = sub.add_parser("profile", help="node timings on a machine")
    _add_common(p_profile)
    _add_executor(p_profile)
    _add_obs(p_profile)
    p_profile.add_argument(
        "--critical-path",
        action="store_true",
        help="profile causally instead of additively: record the full "
        "event stream on a real executor, reconstruct the firing DAG, "
        "and print the critical path, per-node slack, and the "
        "master-overhead decomposition of the wall clock",
    )
    p_profile.add_argument(
        "--machine",
        choices=sorted(PRESETS),
        default=None,
        help="profile on a simulated machine (default cray-2 unless "
        "--executor is given)",
    )
    p_profile.add_argument("--processors", "-p", type=int, default=None)
    p_profile.add_argument(
        "--arg", action="append", default=[], help="argument to main()"
    )
    p_profile.add_argument(
        "--json",
        action="store_true",
        help="emit the metrics-registry snapshot as JSON instead of the "
        "human-readable reports",
    )

    p_trace = sub.add_parser(
        "trace",
        help="run with full observability; write a Perfetto/Chrome trace",
    )
    _add_common(p_trace)
    _add_executor(p_trace)
    _add_obs(p_trace)
    p_trace.add_argument(
        "--arg", action="append", default=[], help="argument to main()"
    )
    p_trace.add_argument(
        "--machine",
        choices=sorted(PRESETS),
        help="trace a simulated machine (ticks) instead of the real "
        "sequential executor (wall time)",
    )
    p_trace.add_argument("--processors", "-p", type=int, default=None)
    p_trace.add_argument(
        "--output",
        "-o",
        metavar="FILE.trace.json",
        help="trace file path (default: <source>.trace.json)",
    )
    p_trace.add_argument(
        "--json",
        action="store_true",
        help="emit the metrics-registry snapshot as JSON instead of the "
        "summary table",
    )

    ns = parser.parse_args(argv)

    if ns.command == "repl":
        from .repl import Repl

        return Repl().run()

    compiled = _compile(ns)

    if ns.command == "compile":
        report = validate_program(compiled.graph)
        for template in compiled.graph.templates.values():
            print(template.describe())
            print()
        print(f"{report.templates_checked} template(s); "
              f"{compiled.graph.total_nodes()} node(s)")
        if getattr(compiled, "cached", False):
            print("  (compile cache hit; --no-cache to recompile)")
        for name, seconds in compiled.pass_seconds.items():
            print(f"  {name:<18} {seconds * 1000:8.2f} ms")
        if getattr(compiled, "optimization", None) is not None:
            print(compiled.optimization.describe())
        if ns.emit:
            from ..graph.serialize import save

            save(compiled.graph, ns.emit)
            print(f"wrote {ns.emit}")
        return 0

    if ns.command == "validate":
        from ..errors import GraphError

        try:
            report = validate_program(compiled.graph)
        except GraphError as exc:
            print(f"INVALID: {exc}", file=sys.stderr)
            return 1
        print(
            f"OK: {report.templates_checked} template(s), "
            f"{len(report.dead_nodes)} dead node(s)"
        )
        return 0

    if ns.command == "viz":
        print(to_dot(compiled.graph) if ns.dot else ascii_framework(compiled.graph))
        return 0

    run_args = tuple(_parse_value(a) for a in ns.arg)
    if ns.command == "run":
        if ns.stream is not None:
            if ns.machine:
                raise SystemExit(
                    "--stream drives real executors; drop --machine"
                )
            return _run_stream(ns, compiled)
        if ns.resume or ns.checkpoint or ns.sink:
            raise SystemExit(
                "--checkpoint/--resume/--sink need --stream (checkpoints "
                "snapshot a stream frontier; a one-shot run has none)"
            )
        if ns.machine:
            machine = PRESETS[ns.machine]()
            if ns.processors:
                machine = machine.with_processors(ns.processors)
            result = SimulatedExecutor(machine).run(
                compiled.graph, args=run_args, registry=compiled.registry
            )
            print(result.value)
            print(f"# {result.describe()}", file=sys.stderr)
        else:
            ctx = _make_run_ctx(ns)
            server = _serve_metrics(ctx, ns)
            costs = _dispatch_costs(ns, compiled, run_args)
            try:
                result = _make_executor(
                    ns, run_ctx=ctx, measured_costs=costs
                ).run(
                    compiled.graph, args=run_args, registry=compiled.registry
                )
            finally:
                if server is not None:
                    server.stop()
            print(result.value)
        return 0

    if ns.command == "profile":
        import json as json_mod

        if ns.critical_path:
            if ns.machine is not None:
                raise SystemExit(
                    "--critical-path profiles real executors (wall "
                    "seconds); drop --machine"
                )
            ctx = _make_run_ctx(ns, record_events=True)
            server = _serve_metrics(ctx, ns)
            try:
                result = _make_executor(ns, run_ctx=ctx).run(
                    compiled.graph, args=run_args, registry=compiled.registry
                )
            finally:
                if server is not None:
                    server.stop()
            report = ctx.critical_path(result.wall_seconds)
            if ns.json:
                print(json_mod.dumps(report.to_dict(), indent=2))
            else:
                print(critical_path_section(report, unit="seconds"))
            print(f"result: {result.value}", file=sys.stderr)
            return 0

        bus = EventBus() if ns.json else None
        metrics = attach_metrics(bus) if bus is not None else None
        simulated = ns.machine is not None or ns.executor == "sequential"
        if simulated:
            machine = PRESETS[ns.machine or "cray-2"]()
            if ns.processors:
                machine = machine.with_processors(ns.processors)
            executor = SimulatedExecutor(machine, trace=True, bus=bus)
            tracks = machine.processors
            unit = "ticks"
        else:
            executor = _make_executor(ns, trace=True, bus=bus)
            tracks = 0
            unit = "seconds"
        result = executor.run(
            compiled.graph, args=run_args, registry=compiled.registry
        )
        if metrics is not None:
            print(json_mod.dumps(metrics.snapshot(), indent=2))
            if simulated:
                print(f"# {result.describe()}", file=sys.stderr)
            return 0
        assert result.tracer is not None
        print(node_timing_report(result.tracer, unit=unit))
        print()
        print(load_balance_summary(result.tracer).describe())
        if simulated:
            print()
            print(gantt(result.tracer, tracks))
            print(f"# {result.describe()}", file=sys.stderr)
        return 0

    if ns.command == "trace":
        import json as json_mod
        import os

        bus = EventBus()
        metrics = attach_metrics(bus)
        server = None
        if ns.metrics_port is not None:
            from ..obs import MetricsServer

            server = MetricsServer(metrics, port=ns.metrics_port).start()
            print(
                f"serving metrics at http://127.0.0.1:{server.port}/metrics",
                file=sys.stderr,
            )
        simulated = ns.machine is not None
        track_names = None
        if not simulated and ns.executor == "process":
            track_names = {0: "master"}
            track_names.update(
                {i + 1: f"worker {i}" for i in range(ns.workers)}
            )
        collector = ChromeTraceCollector(
            time_scale=TICK_SCALE if simulated else WALL_SCALE,
            process_name=f"delirium:{os.path.basename(ns.file)}",
            track_names=track_names,
        )
        collector.attach(bus)
        if simulated:
            machine = PRESETS[ns.machine]()
            if ns.processors:
                machine = machine.with_processors(ns.processors)
            executor = SimulatedExecutor(machine, trace=True, bus=bus)
        else:
            executor = _make_executor(ns, trace=True, bus=bus)
        try:
            with observe_blocks(bus):
                result = executor.run(
                    compiled.graph, args=run_args, registry=compiled.registry
                )
        finally:
            if server is not None:
                server.stop()
        out = ns.output
        if not out:
            base, _ = os.path.splitext(ns.file)
            out = base + ".trace.json"
        collector.write(out)
        unit = "ticks" if simulated else "seconds"
        if ns.json:
            print(json_mod.dumps(metrics.snapshot(), indent=2))
        else:
            assert result.tracer is not None
            print(node_timing_report(result.tracer, unit=unit))
            print()
            print(load_balance_summary(result.tracer).describe())
            print()
            print(metrics.summary_table(unit=unit))
        print(f"result: {result.value}", file=sys.stderr)
        if simulated:
            print(f"# {result.describe()}", file=sys.stderr)
        print(
            f"wrote {out} — open at https://ui.perfetto.dev or "
            "chrome://tracing",
            file=sys.stderr,
        )
        return 0

    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
