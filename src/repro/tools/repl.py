"""An interactive Delirium read-eval-print loop.

The paper's workflow starts on "a single-processor workstation like the
Sun"; the REPL is the smallest version of that: type an expression, it is
wrapped into ``main()``, compiled against the builtins (plus the prelude)
and any functions you've defined, and executed sequentially.

Commands::

    <expr>           evaluate an expression, e.g.  add(2, mul(3, 4))
    :def <fundef>    define a function for the session, e.g.
                     :def square(x) mul(x, x)
    :list            show session definitions
    :graph <expr>    show the coordination framework instead of running
    :quit            leave

Multi-line input: end a line with ``\\`` to continue.
"""

from __future__ import annotations

import sys
from typing import TextIO

from ..compiler import compile_source
from ..errors import DeliriumError
from ..graph.viz import ascii_framework
from ..runtime import SequentialExecutor, default_registry


class Repl:
    """One REPL session (I/O injected for testability)."""

    def __init__(
        self,
        stdin: TextIO | None = None,
        stdout: TextIO | None = None,
        use_prelude: bool = True,
    ) -> None:
        self.stdin = stdin or sys.stdin
        self.stdout = stdout or sys.stdout
        self.use_prelude = use_prelude
        self.definitions: list[str] = []
        self.registry = default_registry()

    # ------------------------------------------------------------------
    def _print(self, text: str) -> None:
        print(text, file=self.stdout)

    def _read_logical_line(self) -> str | None:
        parts: list[str] = []
        prompt = "delirium> " if not parts else "........> "
        while True:
            self._prompt("delirium> " if not parts else "........> ")
            line = self.stdin.readline()
            if not line:
                return None if not parts else " ".join(parts)
            line = line.rstrip("\n")
            if line.endswith("\\"):
                parts.append(line[:-1])
                continue
            parts.append(line)
            return " ".join(parts)

    def _prompt(self, text: str) -> None:
        if self.stdin is sys.stdin and sys.stdin.isatty():  # pragma: no cover
            print(text, end="", file=self.stdout, flush=True)

    def _program_source(self, expr: str) -> str:
        body = "\n\n".join(self.definitions)
        return f"{body}\n\nmain() {expr}\n"

    def _compile(self, expr: str):
        return compile_source(
            self._program_source(expr),
            registry=self.registry,
            prelude=self.use_prelude,
        )

    # ------------------------------------------------------------------
    def handle(self, line: str) -> bool:
        """Process one logical line; False means quit."""
        line = line.strip()
        if not line:
            return True
        if line in (":quit", ":q", ":exit"):
            return False
        try:
            if line.startswith(":def "):
                candidate = line[len(":def ") :].strip()
                # Validate before accepting: compile a probe program.
                probe = self.definitions + [candidate]
                compile_source(
                    "\n\n".join(probe) + "\n\nmain() 0\n",
                    registry=self.registry,
                    prelude=self.use_prelude,
                )
                self.definitions.append(candidate)
                self._print(f"defined: {candidate.split('(', 1)[0]}")
                return True
            if line == ":list":
                if not self.definitions:
                    self._print("(no session definitions)")
                for d in self.definitions:
                    self._print(d)
                return True
            if line.startswith(":graph "):
                compiled = self._compile(line[len(":graph ") :])
                self._print(ascii_framework(compiled.graph, entry_only=True))
                return True
            if line.startswith(":"):
                self._print(f"unknown command {line.split()[0]!r}")
                return True
            compiled = self._compile(line)
            result = SequentialExecutor().run(
                compiled.graph, registry=self.registry
            )
            self._print(repr(result.value))
        except DeliriumError as exc:
            self._print(f"error: {exc}")
        return True

    def run(self) -> int:
        self._print(
            "Delirium REPL — :def to define functions, :graph <expr> to "
            "inspect, :quit to leave."
        )
        while True:
            line = self._read_logical_line()
            if line is None:
                return 0
            if not self.handle(line):
                return 0


def main() -> int:  # pragma: no cover - thin wrapper
    return Repl().run()
