"""ASCII Gantt timelines from simulated-execution traces.

The paper's environment had "various tools for analyzing and improving
execution speed"; node timings show *how long*, a timeline shows *where
the processors sat idle*.  The retina's v1 bottleneck is unmistakable
here: three processors blank while one grinds through ``post_up``.

Usage::

    result = SimulatedExecutor(cray_2(4), trace=True).run(...)
    print(gantt(result.tracer, n_processors=4))
"""

from __future__ import annotations

from dataclasses import dataclass

from ..runtime.tracing import NodeTiming, Tracer


@dataclass(frozen=True)
class TimelineCell:
    """One rendered activity span."""

    label: str
    start: float
    end: float
    processor: int


def _glyph_for(label: str, legend: dict[str, str]) -> str:
    if label not in legend:
        used = set(legend.values())
        for ch in label:
            if ch.isalnum() and ch not in used:
                legend[label] = ch
                break
        else:
            pool = "abcdefghijklmnopqrstuvwxyz0123456789"
            legend[label] = next(
                (c for c in pool if c not in used), "?"
            )
    return legend[label]


def gantt(
    tracer: Tracer,
    n_processors: int,
    width: int = 72,
    ops_only: bool = True,
    min_fraction: float = 0.002,
) -> str:
    """Render one row per processor; columns are simulated time.

    Each operator gets a stable single-character glyph (legend printed
    below); idle time is ``.``; spans shorter than ``min_fraction`` of the
    makespan are dropped to keep the row readable.
    """
    records: list[NodeTiming] = (
        tracer.op_records() if ops_only else list(tracer.records)
    )
    if not records:
        return "(empty trace)"
    makespan = max(r.start + r.ticks for r in records)
    if makespan <= 0:
        return "(zero-length trace)"
    legend: dict[str, str] = {}
    rows = [["." for _ in range(width)] for _ in range(n_processors)]
    for r in sorted(records, key=lambda r: r.start):
        if r.ticks < min_fraction * makespan:
            continue
        glyph = _glyph_for(r.label, legend)
        c0 = int(r.start / makespan * width)
        c1 = max(int((r.start + r.ticks) / makespan * width), c0 + 1)
        if 0 <= r.processor < n_processors:
            for c in range(c0, min(c1, width)):
                rows[r.processor][c] = glyph
    lines = [
        f"P{p} |{''.join(row)}|" for p, row in enumerate(rows)
    ]
    lines.append(f"     0{' ' * (width - 12)}{makespan:>10.0f} ticks")
    lines.append(
        "legend: "
        + "  ".join(f"{g}={label}" for label, g in sorted(legend.items()))
    )
    return "\n".join(lines)


def utilization_per_processor(
    tracer: Tracer, n_processors: int
) -> list[float]:
    """Busy fraction of the makespan, per processor, from a trace."""
    records = list(tracer.records)
    if not records:
        return [0.0] * n_processors
    makespan = max(r.start + r.ticks for r in records)
    busy = [0.0] * n_processors
    for r in records:
        if 0 <= r.processor < n_processors:
            busy[r.processor] += r.ticks
    if makespan <= 0:
        return [0.0] * n_processors
    return [b / makespan for b in busy]
