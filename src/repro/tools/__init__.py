"""Environment tools: timing reports, timelines, and the delirium CLI."""

from .timeline import gantt, utilization_per_processor
from .timing_report import (
    LoadBalanceSummary,
    load_balance_summary,
    node_timing_report,
    pass_table,
)

__all__ = [
    "LoadBalanceSummary",
    "gantt",
    "load_balance_summary",
    "node_timing_report",
    "pass_table",
    "utilization_per_processor",
]

from .compare_runs import RunComparison, compare

__all__ += ["RunComparison", "compare"]
