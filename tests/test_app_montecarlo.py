"""The Monte-Carlo application: determinism of parallel random streams."""

import math

import pytest

from repro.apps.montecarlo import (
    OptionSpec,
    batch_rng,
    compile_option,
    compile_pi,
    option_sequential,
    pi_estimate,
    pi_sequential,
)
from repro.machine import SimulatedExecutor, butterfly, uniform
from repro.runtime import SequentialExecutor, ThreadedExecutor

SEED = 2026
BATCHES = 12
BATCH_SIZE = 1500


class TestModel:
    def test_batch_rng_is_counter_based(self):
        a = batch_rng(SEED, 3).random(4)
        b = batch_rng(SEED, 3).random(4)
        c = batch_rng(SEED, 4).random(4)
        assert (a == b).all()
        assert not (a == c).all()

    def test_pi_estimate_formula(self):
        assert pi_estimate(785, 1000) == pytest.approx(3.14)
        assert pi_estimate(0, 0) == 0.0

    def test_pi_converges(self):
        estimate = pi_sequential(SEED, 64, 4096)
        assert abs(estimate - math.pi) < 0.03

    def test_option_converges_to_black_scholes(self):
        spec = OptionSpec()
        estimate = option_sequential(spec, SEED, 128, 4096)
        assert estimate == pytest.approx(spec.closed_form(), rel=0.02)

    def test_closed_form_sanity(self):
        # Deep in the money, the call is worth ~ S - K e^{-rT}.
        spec = OptionSpec(spot=1000.0, strike=10.0)
        expected = 1000.0 - 10.0 * math.exp(-spec.rate * spec.maturity)
        assert spec.closed_form() == pytest.approx(expected, rel=1e-6)


class TestDeliriumMonteCarlo:
    @pytest.fixture(scope="class")
    def pi_program(self):
        return compile_pi(seed=SEED, batch_size=BATCH_SIZE)

    def test_matches_oracle_exactly(self, pi_program):
        value = SequentialExecutor().run(
            pi_program.graph, args=(BATCHES,), registry=pi_program.registry
        ).value
        assert value == pi_sequential(SEED, BATCHES, BATCH_SIZE)

    def test_option_matches_oracle_exactly(self):
        program = compile_option(seed=SEED, batch_size=BATCH_SIZE)
        value = SequentialExecutor().run(
            program.graph, args=(BATCHES,), registry=program.registry
        ).value
        assert value == option_sequential(
            OptionSpec(), SEED, BATCHES, BATCH_SIZE
        )

    def test_bit_identical_across_all_executors(self, pi_program):
        reference = SequentialExecutor().run(
            pi_program.graph, args=(BATCHES,), registry=pi_program.registry
        ).value
        others = [
            SequentialExecutor(seed=7),
            SequentialExecutor(use_priorities=False),
            ThreadedExecutor(4),
            SimulatedExecutor(uniform(5)),
            SimulatedExecutor(butterfly(3), affinity="data"),
        ]
        for executor in others:
            value = executor.run(
                pi_program.graph, args=(BATCHES,), registry=pi_program.registry
            ).value
            assert value == reference

    def test_batch_count_is_dynamic(self, pi_program):
        # Same program text, different widths — the section 9.2 point.
        for n in (1, 4, 9):
            value = SequentialExecutor().run(
                pi_program.graph, args=(n,), registry=pi_program.registry
            ).value
            assert value == pi_sequential(SEED, n, BATCH_SIZE)

    def test_scales_on_the_simulator(self, pi_program):
        t1 = SimulatedExecutor(uniform(1)).run(
            pi_program.graph, args=(BATCHES,), registry=pi_program.registry
        ).ticks
        t6 = SimulatedExecutor(uniform(6)).run(
            pi_program.graph, args=(BATCHES,), registry=pi_program.registry
        ).ticks
        assert t1 / t6 == pytest.approx(6.0, rel=0.1)
