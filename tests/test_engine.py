"""Engine semantics: firing rules, COW, closures, tail calls, errors."""

import numpy as np
import pytest

from repro import compile_source
from repro.errors import (
    OperatorError,
    RuntimeFailure,
    UnknownOperatorError,
)
from repro.runtime import (
    NULL,
    SequentialExecutor,
    default_registry,
)
from repro.runtime.engine import PurityViolationError

from tests.conftest import FIB_SRC, HIGHER_ORDER_SRC


def run(source, args=(), registry=None, **executor_kw):
    registry = registry or default_registry()
    compiled = compile_source(source, registry=registry)
    return SequentialExecutor(**executor_kw).run(
        compiled.graph, args=args, registry=registry
    )


class TestBasics:
    def test_literal_result(self):
        assert run("main() 42").value == 42

    def test_null_result(self):
        assert run("main() NULL").value is NULL

    def test_entry_args(self):
        assert run("main(a, b) add(a, b)", args=(2, 3)).value == 5

    def test_wrong_entry_arity(self):
        with pytest.raises(RuntimeFailure):
            run("main(a) a", args=(1, 2))

    def test_multivalue_result_unwrapped_to_tuple(self):
        assert run("main() <1, 2, 3>").value == (1, 2, 3)

    def test_tuple_decomposition(self):
        assert run(
            "main() let <a, b> = <1, 2> in add(a, b)"
        ).value == 3

    def test_operator_returning_tuple_decomposes(self):
        reg = default_registry()
        reg.register(name="pair")(lambda: (10, 20))
        assert run(
            "main() let <a, b> = pair() in sub(a, b)", registry=reg
        ).value == -10


class TestConditionals:
    def test_only_taken_arm_executes(self):
        calls = []
        reg = default_registry()

        @reg.register(name="boom")
        def boom():
            calls.append(1)
            return 1

        result = run("main(c) if c then 5 else boom()", args=(1,), registry=reg)
        assert result.value == 5
        assert calls == []

    def test_null_condition_is_false(self):
        assert run("main() if NULL then 1 else 2").value == 2

    def test_nonzero_is_true(self):
        assert run("main() if 7 then 1 else 2").value == 1


class TestFirstClassFunctions:
    def test_function_passed_as_argument(self):
        compiled = compile_source(HIGHER_ORDER_SRC)
        assert compiled.run(args=(5,)).value == 7

    def test_top_level_function_as_value(self):
        src = """
        main(n) apply_fn(step, n)
        apply_fn(f, x) f(x)
        step(x) add(x, 10)
        """
        assert run(src, args=(1,)).value == 11

    def test_operator_as_value(self):
        src = """
        main(n) apply_fn(incr, n)
        apply_fn(f, x) f(x)
        """
        assert run(src, args=(4,)).value == 5

    def test_closure_captures_environment(self):
        src = """
        main(n)
          let k = mul(n, 10)
              addk(x) add(x, k)
          in addk(addk(1))
        """
        assert run(src, args=(2,)).value == 41

    def test_function_returned_as_value(self):
        src = """
        main(n)
          let make_adder(k)
                let adder(x) add(x, k)
                in adder
          in (make_adder(n))(100)
        """
        assert run(src, args=(5,)).value == 105

    def test_calling_non_function_fails(self):
        with pytest.raises(RuntimeFailure):
            run("main(n) let f = 5 in f(n)", args=(1,))


class TestRecursionAndTailCalls:
    def test_fib(self):
        assert run(FIB_SRC, args=(10,)).value == 55

    def test_mutual_recursion(self):
        src = """
        main(n) even(n)
        even(n) if is_equal(n, 0) then 1 else odd(sub(n, 1))
        odd(n) if is_equal(n, 0) then 0 else even(sub(n, 1))
        """
        assert run(src, args=(10,)).value == 1
        assert run(src, args=(7,)).value == 0

    def test_deep_tail_recursion_constant_space(self):
        src = """
        main(n) count(0, n)
        count(i, n) if is_less(i, n) then count(incr(i), n) else i
        """
        result = run(src, args=(2000,))
        assert result.value == 2000
        assert result.stats.activation_stats["peak_live"] <= 3

    def test_tail_expansions_counted(self):
        src = """
        main(n) count(0, n)
        count(i, n) if is_less(i, n) then count(incr(i), n) else i
        """
        result = run(src, args=(50,))
        assert result.stats.tail_expansions > 0


class TestCopyOnWrite:
    @staticmethod
    def _registry():
        reg = default_registry()

        @reg.register(name="make_list")
        def make_list():
            return [0, 0, 0]

        @reg.register(name="set_at", modifies=(0,))
        def set_at(lst, i, v):
            lst[i] = v
            return lst

        @reg.register(name="get_at", pure=True)
        def get_at(lst, i):
            return lst[i]

        return reg

    def test_sole_reference_writes_in_place(self):
        result = run(
            "main() get_at(set_at(make_list(), 0, 9), 0)",
            registry=self._registry(),
        )
        assert result.value == 9
        assert result.stats.in_place_writes == 1
        assert result.stats.cow_copies == 0

    def test_shared_block_is_copied(self):
        src = """
        main()
          let base = make_list()
              x = set_at(base, 0, 1)
              y = set_at(base, 0, 2)
          in <get_at(x, 0), get_at(y, 0), get_at(base, 0)>
        """
        result = run(src, registry=self._registry())
        # No writer's effect is visible anywhere else: `base` stays zero.
        assert result.value == (1, 2, 0)
        # Two writes happened; each was either a COW copy or (if the
        # scheduler had already drained every other reader) an in-place
        # write on a sole reference.  At least one must have copied.
        assert result.stats.cow_copies >= 1
        assert result.stats.cow_copies + result.stats.in_place_writes == 2

    def test_numpy_cow(self):
        reg = default_registry()

        @reg.register(name="zeros")
        def zeros():
            return np.zeros(4)

        @reg.register(name="fill", modifies=(0,))
        def fill(a, v):
            a[:] = v
            return a

        @reg.register(name="total", pure=True)
        def total(a):
            return float(a.sum())

        src = """
        main()
          let base = zeros()
              a = fill(base, 1)
              b = fill(base, 2)
          in <total(a), total(b), total(base)>
        """
        assert run(src, registry=reg).value == (4.0, 8.0, 0.0)

    def test_view_result_is_copied_defensively(self):
        reg = default_registry()

        @reg.register(name="zeros")
        def zeros():
            return np.zeros(6)

        @reg.register(name="top_half", pure=True)
        def top_half(a):
            return a[:3]  # a view!

        @reg.register(name="fill", modifies=(0,))
        def fill(a, v):
            a[:] = v
            return a

        @reg.register(name="total", pure=True)
        def total(a):
            return float(a.sum())

        src = """
        main()
          let base = zeros()
              v = top_half(base)
              w = fill(v, 7)
          in <total(w), total(base)>
        """
        # Writing through the view must not reach base.
        assert run(src, registry=reg).value == (21.0, 0.0)

    def test_purity_checker_catches_undeclared_write(self):
        reg = default_registry()

        @reg.register(name="make_list")
        def make_list():
            return [0]

        @reg.register(name="sneaky", pure=True)
        def sneaky(lst):
            lst[0] = 666  # undeclared write!
            return 1

        @reg.register(name="get0", pure=True)
        def get0(lst):
            return lst[0]

        src = "main() let b = make_list() in add(sneaky(b), get0(b))"
        with pytest.raises(PurityViolationError):
            run(src, registry=reg, check_purity=True)

    def test_modifies_on_package_rejected(self):
        reg = default_registry()
        reg.register(name="bad", modifies=(0,))(lambda p: p)
        reg.register(name="mk")(lambda: ([1], [2]))
        with pytest.raises(RuntimeFailure):
            run("main() bad(mk())", registry=reg)


class TestErrors:
    def test_operator_exception_wrapped(self):
        reg = default_registry()

        @reg.register(name="kaboom")
        def kaboom():
            raise ValueError("inner")

        with pytest.raises(OperatorError) as excinfo:
            run("main() kaboom()", registry=reg)
        assert excinfo.value.operator == "kaboom"
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_unknown_operator_at_compile_time(self):
        from repro.errors import UnboundNameError

        with pytest.raises(UnboundNameError):
            compile_source("main() ghost()")

    def test_unknown_operator_at_runtime_when_lenient(self):
        compiled = compile_source("main() ghost()", strict=False)
        with pytest.raises(UnknownOperatorError):
            SequentialExecutor().run(compiled.graph)

    def test_runtime_operator_arity_error(self):
        compiled = compile_source(
            "main(f) f(1, 2)", strict=False
        )
        with pytest.raises(RuntimeFailure):
            # incr takes 1 argument; called with 2 through a variable
            from repro.runtime.values import OperatorValue

            SequentialExecutor().run(
                compiled.graph, args=(OperatorValue("incr"),)
            )

    def test_decompose_non_package(self):
        with pytest.raises(RuntimeFailure):
            run("main() let <a, b> = 5 in a")

    def test_decompose_wrong_width(self):
        with pytest.raises(RuntimeFailure):
            run("main() let <a, b, c> = <1, 2> in a")


class TestStatistics:
    def test_ops_counted(self):
        # args come from a parameter so the folder cannot precompute them
        result = run("main(n) add(incr(n), 2)", args=(1,))
        assert result.stats.ops_executed == 2

    def test_activation_reuse_in_loops(self):
        compiled = compile_source(
            "main(n) iterate { i = 0, incr(i) } while is_less(i, n), result i"
        )
        result = compiled.run(args=(100,))
        stats = result.stats.activation_stats
        assert stats["reused"] > stats["created"]
