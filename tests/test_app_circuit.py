"""The circuit-simulator application."""

import numpy as np
import pytest

from repro.apps.circuit import (
    AND,
    NOT,
    OR,
    XOR,
    Circuit,
    compile_circuit_sim,
    eval_gates,
    evaluate_sequential,
    random_circuit,
)
from repro.machine import SimulatedExecutor, butterfly, sequent
from repro.runtime import SequentialExecutor, ThreadedExecutor


def tiny_circuit() -> Circuit:
    """Hand-built: in0, in1 -> AND, XOR -> OR; outputs the OR and the AND."""
    return Circuit(
        gate_type=np.array([0, 0, AND, XOR, OR], dtype=np.int8),
        in0=np.array([-1, -1, 0, 0, 2], dtype=np.int32),
        in1=np.array([-1, -1, 1, 1, 3], dtype=np.int32),
        level=np.array([0, 0, 1, 1, 2], dtype=np.int32),
        outputs=np.array([4, 2], dtype=np.int32),
        input_values=np.array([1, 0], dtype=np.uint8),
    )


class TestNetlist:
    def test_hand_circuit_truth(self):
        # in0=1, in1=0: AND=0, XOR=1, OR(0,1)=1
        assert tuple(evaluate_sequential(tiny_circuit())) == (1, 0)

    @pytest.mark.parametrize(
        "kind,a,b,expected",
        [(AND, 1, 1, 1), (AND, 1, 0, 0), (OR, 0, 0, 0), (OR, 0, 1, 1),
         (XOR, 1, 1, 0), (XOR, 1, 0, 1), (NOT, 1, 0, 0), (NOT, 0, 0, 1)],
    )
    def test_gate_semantics(self, kind, a, b, expected):
        circuit = Circuit(
            gate_type=np.array([0, 0, kind], dtype=np.int8),
            in0=np.array([-1, -1, 0], dtype=np.int32),
            in1=np.array([-1, -1, 1 if kind != NOT else -1], dtype=np.int32),
            level=np.array([0, 0, 1], dtype=np.int32),
            outputs=np.array([2], dtype=np.int32),
            input_values=np.array([a, b], dtype=np.uint8),
        )
        assert evaluate_sequential(circuit)[0] == expected

    def test_random_circuit_is_levelized(self):
        c = random_circuit(n_inputs=8, n_gates=100, seed=2)
        for g in range(8, c.n_gates):
            assert c.level[g] > c.level[c.in0[g]]
            if c.in1[g] >= 0:
                assert c.level[g] > c.level[c.in1[g]]

    def test_random_circuit_deterministic(self):
        a = random_circuit(seed=9)
        b = random_circuit(seed=9)
        assert np.array_equal(a.gate_type, b.gate_type)
        assert np.array_equal(a.input_values, b.input_values)

    def test_eval_gates_is_pure(self):
        c = tiny_circuit()
        values = np.array([1, 0, 0, 0, 0], dtype=np.uint8)
        before = values.copy()
        eval_gates(c, np.array([2, 3]), values)
        assert np.array_equal(values, before)

    def test_describe(self):
        assert "gates" in random_circuit(seed=1).describe()


class TestDeliriumCircuit:
    @pytest.fixture(scope="class")
    def setup(self):
        circuit = random_circuit(n_inputs=16, n_gates=250, seed=4)
        compiled = compile_circuit_sim(circuit)
        expected = tuple(int(v) for v in evaluate_sequential(circuit))
        return circuit, compiled, expected

    def test_matches_oracle(self, setup):
        _, compiled, expected = setup
        result = SequentialExecutor().run(
            compiled.graph, registry=compiled.registry
        )
        assert result.value == expected

    def test_threaded_matches(self, setup):
        _, compiled, expected = setup
        result = ThreadedExecutor(4).run(
            compiled.graph, registry=compiled.registry
        )
        assert result.value == expected

    def test_simulated_machines_match(self, setup):
        _, compiled, expected = setup
        for machine in (sequent(3), butterfly(4)):
            result = SimulatedExecutor(machine).run(
                compiled.graph, registry=compiled.registry
            )
            assert result.value == expected

    def test_level_merge_runs_in_place(self, setup):
        # By merge time the value array has a single reference, so the
        # declared modification never copies: the paper's "merging is
        # free" pointer idiom.
        _, compiled, _ = setup
        result = SequentialExecutor().run(
            compiled.graph, registry=compiled.registry
        )
        assert result.stats.in_place_writes > 0

    def test_scales_with_level_width(self, setup):
        circuit, compiled, _ = setup
        t1 = SimulatedExecutor(sequent(1)).run(
            compiled.graph, registry=compiled.registry
        ).ticks
        t4 = SimulatedExecutor(sequent(4)).run(
            compiled.graph, registry=compiled.registry
        ).ticks
        assert t1 / t4 > 1.5  # level-parallel, limited by narrow levels
