"""The fault-injection subsystem: grammar, determinism, injector state.

ISSUE 5's chaos testing rests on injection being *deterministic*: fault
decisions come from a keyed hash of (seed, salt, kind, op, count), not an
RNG, so a failing chaos run can be replayed exactly.  These tests pin the
``--inject-faults`` grammar, the decision function (including the
incarnation salt that prevents a kill clause from deterministically
re-killing the worker that picks up the retried call), and the injector's
counter/cap bookkeeping.
"""

import pickle

import pytest

from repro.errors import DeliriumError
from repro.faults import (
    FaultClause,
    FaultInjector,
    FaultSpec,
    InjectedFault,
    parse_fault_spec,
)
from repro.faults.spec import ARENA_SCOPE, FaultSpecError


class TestGrammar:
    def test_single_clause(self):
        spec = parse_fault_spec("raise:op=scale,p=0.1")
        (clause,) = spec.clauses
        assert clause.kind == "raise"
        assert clause.op == "scale"
        assert clause.p == 0.1

    def test_multiple_clauses(self):
        spec = parse_fault_spec("kill:p=0.05,seed=7;delay:nth=2,seconds=0.5")
        assert [c.kind for c in spec.clauses] == ["kill", "delay"]
        assert spec.clauses[0].seed == 7
        assert spec.clauses[1].seconds == 0.5

    def test_all_parameters(self):
        spec = parse_fault_spec("raise:op=x,nth=3,times=2,seed=9")
        (clause,) = spec.clauses
        assert (clause.op, clause.nth, clause.times, clause.seed) == (
            "x", 3, 2, 9,
        )

    def test_whitespace_tolerated(self):
        spec = parse_fault_spec(" raise : op=x , nth=1 ; arena : p=0.5 ")
        assert [c.kind for c in spec.clauses] == ["raise", "arena"]

    def test_describe_round_trips(self):
        text = "kill:p=0.05,seed=7;raise:op=conv,nth=2;delay:nth=1,seconds=0.25"
        spec = parse_fault_spec(text)
        assert parse_fault_spec(spec.describe()) == spec

    def test_spec_pickles(self):
        spec = parse_fault_spec("kill:p=0.05;arena:nth=1")
        assert pickle.loads(pickle.dumps(spec)) == spec

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            ";;",
            "explode:p=0.5",            # unknown kind
            "raise",                    # no trigger
            "raise:p=1.5",              # p out of range
            "raise:nth=0",              # nth is 1-based
            "raise:nth=1,volume=11",    # unknown parameter
            "raise:nth",                # not KEY=VALUE
            "delay:nth=1",              # delay needs seconds
            "delay:nth=1,seconds=0",    # ... positive seconds
        ],
    )
    def test_rejected(self, bad):
        with pytest.raises(FaultSpecError):
            parse_fault_spec(bad)

    def test_spec_error_is_delirium_error(self):
        with pytest.raises(DeliriumError):
            parse_fault_spec("nope:p=1")

    def test_injected_fault_is_foreign(self):
        # Injected faults must travel the same wrapping/retry path as any
        # exception a real operator body could raise.
        assert not issubclass(InjectedFault, DeliriumError)
        exc = InjectedFault("injected fault in operator 'x'")
        assert pickle.loads(pickle.dumps(exc)).args == exc.args


class TestDecisionFunction:
    def test_deterministic_across_instances(self):
        clause = FaultClause(kind="raise", p=0.3, seed=42)
        a = [clause.matches("op", i) for i in range(1, 200)]
        b = [clause.matches("op", i) for i in range(1, 200)]
        assert a == b
        assert any(a) and not all(a)

    def test_seed_changes_placement(self):
        a = FaultClause(kind="raise", p=0.3, seed=1)
        b = FaultClause(kind="raise", p=0.3, seed=2)
        assert [a.matches("op", i) for i in range(1, 200)] != [
            b.matches("op", i) for i in range(1, 200)
        ]

    def test_rate_roughly_honoured(self):
        clause = FaultClause(kind="raise", p=0.25, seed=0)
        n = 2000
        fired = sum(clause.matches("op", i) for i in range(1, n + 1))
        assert 0.18 * n < fired < 0.32 * n

    def test_p_extremes(self):
        always = FaultClause(kind="raise", p=1.0)
        never = FaultClause(kind="raise", p=0.0)
        assert all(always.matches("op", i) for i in range(1, 50))
        assert not any(never.matches("op", i) for i in range(1, 50))

    def test_salt_changes_placement(self):
        # The poison-loop defence: a respawned worker (salt=1) must not
        # repeat the decision that killed its predecessor (salt=0).
        clause = FaultClause(kind="kill", p=0.3, seed=5)
        gen0 = [clause.matches("op", i, 0) for i in range(1, 200)]
        gen1 = [clause.matches("op", i, 1) for i in range(1, 200)]
        assert gen0 != gen1

    def test_nth_fires_only_in_first_incarnation(self):
        clause = FaultClause(kind="raise", nth=2)
        assert not clause.matches("op", 1, 0)
        assert clause.matches("op", 2, 0)
        assert not clause.matches("op", 2, 1)


class TestInjector:
    def test_nth_raises_once(self):
        inj = parse_fault_spec("raise:nth=2").build()
        inj.on_call("op")
        with pytest.raises(InjectedFault):
            inj.on_call("op")
        for _ in range(20):
            inj.on_call("op")  # nth implies times=1
        assert inj.injected == 1

    def test_op_scoping(self):
        inj = parse_fault_spec("raise:op=bad,nth=1").build()
        for _ in range(5):
            inj.on_call("good")
        with pytest.raises(InjectedFault):
            inj.on_call("bad")

    def test_counts_are_per_operator(self):
        inj = parse_fault_spec("raise:nth=3").build()
        inj.on_call("a")
        inj.on_call("a")
        inj.on_call("b")
        inj.on_call("b")
        with pytest.raises(InjectedFault):
            inj.on_call("a")  # a's third call, b still at two

    def test_times_caps_probabilistic_clause(self):
        inj = parse_fault_spec("raise:p=1.0,times=2").build()
        for _ in range(2):
            with pytest.raises(InjectedFault):
                inj.on_call("op")
        for _ in range(10):
            inj.on_call("op")
        assert inj.injected == 2

    def test_delay_sleeps(self):
        import time

        inj = parse_fault_spec("delay:nth=1,seconds=0.05").build()
        t0 = time.perf_counter()
        inj.on_call("op")
        assert time.perf_counter() - t0 >= 0.05

    def test_kill_inert_outside_workers(self):
        # A kill clause in the master / a sequential run must be a no-op,
        # so one spec string works across every executor.  (If this were
        # broken the test process would die here.)
        inj = parse_fault_spec("kill:p=1.0").build()
        for _ in range(3):
            inj.on_call("op")

    def test_arena_clause_only_affects_arena(self):
        inj = parse_fault_spec("arena:nth=1").build()
        inj.on_call("op")  # arena clauses never fire on operator calls
        assert inj.on_arena_acquire()
        assert not inj.on_arena_acquire()
        assert inj.injected == 1

    def test_arena_counts_under_arena_scope(self):
        inj = parse_fault_spec("arena:nth=2").build()
        assert not inj.on_arena_acquire()
        assert inj.on_arena_acquire()
        assert (0, ARENA_SCOPE) in inj._counts

    def test_build_salt(self):
        spec = parse_fault_spec("kill:p=0.5,seed=3")
        assert spec.build().salt == 0
        assert spec.build(4).salt == 4

    def test_same_spec_same_decisions(self):
        spec = parse_fault_spec("raise:p=0.4,seed=17")

        def trace(inj: FaultInjector) -> list[bool]:
            out = []
            for _ in range(100):
                try:
                    inj.on_call("op")
                    out.append(False)
                except InjectedFault:
                    out.append(True)
            return out

        assert trace(spec.build()) == trace(spec.build())
        assert trace(FaultSpec.parse(spec.describe()).build()) == trace(
            spec.build()
        )
