"""End-to-end integration: whole programs through every layer, plus the CLI."""

import subprocess
import sys

import pytest

from repro import (
    compile_source,
    run_source,
    validate_program,
)
from repro.machine import SimulatedExecutor, butterfly, cray_ymp, sequent
from repro.runtime import SequentialExecutor, ThreadedExecutor


class TestRunSource:
    def test_one_liner(self):
        assert run_source("main() add(2, 3)") == 5

    def test_with_defines(self):
        assert run_source("main() add(N, N)", defines={"N": 21}) == 42

    def test_with_args(self):
        assert run_source("main(a, b) mul(a, b)", args=(6, 7)) == 42

    def test_with_custom_executor(self):
        value = run_source(
            "main() incr(41)", executor=ThreadedExecutor(2)
        )
        assert value == 42


class TestWholeProgramsEverywhere:
    """One program, every executor, every machine: identical results."""

    SRC = """
    main(n)
      let total = sum_to(n)
          evens = count_evens(0, n, 0)
      in <total, evens>
    sum_to(n)
      iterate { i = 1, incr(i)  s = 0, add(s, i) }
      while is_less_equal(i, n), result s
    count_evens(i, n, acc)
      if is_greater(i, n)
      then acc
      else count_evens(add(i, 2), n, incr(acc))
    """

    @pytest.fixture(scope="class")
    def compiled(self):
        return compile_source(self.SRC)

    def test_expected_value(self, compiled):
        assert compiled.run(args=(10,)).value == (55, 6)

    @pytest.mark.parametrize(
        "executor",
        [
            SequentialExecutor(),
            SequentialExecutor(seed=13),
            SequentialExecutor(use_priorities=False),
            ThreadedExecutor(3),
        ],
        ids=["seq", "seeded", "fifo", "threaded"],
    )
    def test_real_executors(self, compiled, executor):
        assert executor.run(compiled.graph, args=(10,)).value == (55, 6)

    @pytest.mark.parametrize(
        "machine",
        [cray_ymp(), sequent(), butterfly(4)],
        ids=["cray-ymp", "sequent", "butterfly"],
    )
    def test_simulated_machines(self, compiled, machine):
        result = SimulatedExecutor(machine).run(compiled.graph, args=(10,))
        assert result.value == (55, 6)
        assert result.ticks > 0

    def test_graph_validates(self, compiled):
        validate_program(compiled.graph)


class TestCompiledProgramAPI:
    def test_pass_seconds_recorded(self):
        compiled = compile_source("main() 1")
        from repro.compiler import PASS_NAMES

        assert set(compiled.pass_seconds) == set(PASS_NAMES)
        assert all(v >= 0 for v in compiled.pass_seconds.values())

    def test_optimization_report_attached(self):
        compiled = compile_source("main() add(1, 2)")
        assert compiled.optimization is not None
        assert compiled.optimization.rounds >= 1

    def test_custom_entry_point(self):
        compiled = compile_source(
            "main() 1\nother(x) incr(x)", entry="other"
        )
        result = SequentialExecutor().run(compiled.graph, args=(4,))
        assert result.value == 5

    def test_missing_entry_rejected(self):
        from repro.errors import GraphError

        with pytest.raises(GraphError):
            compile_source("helper(x) x", entry="main")


class TestCLI:
    def _run(self, *args, source="main(n) add(incr(n), N)\n"):
        import tempfile, os

        with tempfile.NamedTemporaryFile(
            "w", suffix=".dlm", delete=False
        ) as fh:
            fh.write(source)
            path = fh.name
        try:
            # Hermetic compile cache: the same tiny source recurs across
            # tests, and a hit from a previous process would change output
            # (no per-pass times on cached compiles).
            with tempfile.TemporaryDirectory() as cache_dir:
                proc = subprocess.run(
                    [sys.executable, "-m", "repro.tools.cli", *[
                        a.replace("FILE", path) for a in args
                    ]],
                    capture_output=True,
                    text=True,
                    timeout=120,
                    env={**os.environ, "DELIRIUM_CACHE_DIR": cache_dir},
                )
            return proc
        finally:
            os.unlink(path)

    def test_run_subcommand(self):
        proc = self._run("run", "FILE", "--arg", "1", "-D", "N=40")
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == "42"

    def test_run_on_machine(self):
        proc = self._run(
            "run", "FILE", "--arg", "1", "-D", "N=1",
            "--machine", "cray-ymp", "-p", "2",
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == "3"
        assert "cray-ymp" in proc.stderr

    def test_compile_subcommand(self):
        proc = self._run("compile", "FILE", "-D", "N=1")
        assert proc.returncode == 0, proc.stderr
        assert "template main" in proc.stdout
        assert "Lexing" in proc.stdout

    def test_viz_subcommand(self):
        proc = self._run("viz", "FILE", "-D", "N=1")
        assert proc.returncode == 0, proc.stderr
        assert "=== main" in proc.stdout

    def test_viz_dot(self):
        proc = self._run("viz", "FILE", "--dot", "-D", "N=1")
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.startswith("digraph")

    def test_profile_subcommand(self):
        proc = self._run(
            "profile", "FILE", "--arg", "1", "-D", "N=1", "-p", "2"
        )
        assert proc.returncode == 0, proc.stderr
        assert "call of" in proc.stdout


class TestCLIEmitAndValidate:
    def _tmp_source(self, tmp_path, text="main(n) add(incr(n), 1)\n"):
        path = tmp_path / "prog.dlm"
        path.write_text(text)
        return str(path)

    def _cli(self, *args):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.tools.cli", *args],
            capture_output=True,
            text=True,
            timeout=120,
        )
        return proc

    def test_emit_then_run_dlc(self, tmp_path):
        src = self._tmp_source(tmp_path)
        dlc = str(tmp_path / "prog.dlc")
        proc = self._cli("compile", src, "--emit", dlc)
        assert proc.returncode == 0, proc.stderr
        assert "wrote" in proc.stdout
        proc = self._cli("run", dlc, "--arg", "5")
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == "7"

    def test_run_dlc_on_machine(self, tmp_path):
        src = self._tmp_source(tmp_path)
        dlc = str(tmp_path / "prog.dlc")
        assert self._cli("compile", src, "--emit", dlc).returncode == 0
        proc = self._cli("run", dlc, "--arg", "1", "--machine", "sequent")
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == "3"

    def test_validate_source(self, tmp_path):
        proc = self._cli("validate", self._tmp_source(tmp_path))
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.startswith("OK:")

    def test_validate_dlc(self, tmp_path):
        src = self._tmp_source(tmp_path)
        dlc = str(tmp_path / "prog.dlc")
        assert self._cli("compile", src, "--emit", dlc).returncode == 0
        proc = self._cli("validate", dlc)
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.startswith("OK:")


class TestThreadedTracing:
    def test_threaded_executor_records_op_timings(self):
        compiled = compile_source("main(n) add(incr(n), decr(n))")
        result = ThreadedExecutor(2, trace=True).run(compiled.graph, args=(5,))
        assert result.value == 10
        assert result.tracer is not None
        labels = sorted(r.label for r in result.tracer.op_records())
        assert labels == ["add", "decr", "incr"]
        assert all(r.ticks >= 0 for r in result.tracer.records)


class TestAppDrivers:
    """The `python -m repro.apps.<name>` entry points."""

    def _module(self, name, *args, timeout=300):
        return subprocess.run(
            [sys.executable, "-m", f"repro.apps.{name}", *args],
            capture_output=True,
            text=True,
            timeout=timeout,
        )

    def test_queens_driver(self):
        proc = self._module("queens", "5")
        assert proc.returncode == 0, proc.stderr
        assert "10 solution(s)" in proc.stdout

    def test_circuit_driver(self):
        proc = self._module("circuit", "120")
        assert proc.returncode == 0, proc.stderr
        assert "outputs:" in proc.stdout

    def test_raytracer_driver(self, tmp_path):
        out = str(tmp_path / "img.ppm")
        proc = self._module("raytracer", out)
        assert proc.returncode == 0, proc.stderr
        assert (tmp_path / "img.ppm").exists()

    def test_retina_driver(self):
        proc = self._module("retina", "2")
        assert proc.returncode == 0, proc.stderr
        assert "speedup" in proc.stdout
